"""Profiling helpers (profile-first, per the hpc-parallel guides).

Thin wrappers around :mod:`cProfile` that return structured rows instead of
dumping text, so examples and notebooks can show "where the time goes" for
a solver call without external tooling.  When a trace span is active
(:mod:`repro.obs.trace`), :func:`profile_call` attaches its hot-spot rows
to it, so a drained trace carries not just *where the request spent its
time* across stages but *which functions* dominated inside the profiled
stage.
"""

from __future__ import annotations

import cProfile
import dataclasses
import pstats
from dataclasses import dataclass
from io import StringIO
from typing import Any, Callable

from repro.obs.trace import current_span


@dataclass(frozen=True)
class HotSpot:
    """One row of a profile: a function and its cumulative cost."""

    function: str
    calls: int
    total_seconds: float      # time in the function itself
    cumulative_seconds: float # including callees


def profile_call(
    fn: Callable[[], Any], top: int = 10
) -> tuple[Any, list[HotSpot]]:
    """Run ``fn`` under cProfile; return ``(result, hottest functions)``.

    Rows are sorted by cumulative time, library-internal frames first-class
    (no filtering — seeing numpy kernels is the point).  If called inside
    an active ``span()``, the returned rows are also attached to that span
    under the ``hotspots`` tag (as plain dicts, NDJSON-ready).
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler, stream=StringIO())
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    rows: list[HotSpot] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        short = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        rows.append(HotSpot(short, int(nc), float(tt), float(ct)))
    rows.sort(key=lambda r: -r.cumulative_seconds)
    rows = rows[:top]
    active = current_span()
    if active is not None:
        active.tags["hotspots"] = [dataclasses.asdict(r) for r in rows]
    return result, rows


def format_hotspots(rows: list[HotSpot]) -> str:
    """Fixed-width rendering of :func:`profile_call` output."""
    out = [f"{'cum(s)':>8s} {'tot(s)':>8s} {'calls':>8s}  function"]
    for r in rows:
        out.append(
            f"{r.cumulative_seconds:8.4f} {r.total_seconds:8.4f} "
            f"{r.calls:8d}  {r.function}"
        )
    return "\n".join(out)
