"""The metric-name catalogue: every registry metric, typed and documented.

One dict is the single source of truth for the observability surface:
:data:`CATALOG` maps each metric name to its type and help string.  The
default process-wide registry (:data:`repro.obs.metrics.REGISTRY`)
pre-registers every catalogued metric at import time, so an exposition
always lists the full surface (zero-valued until exercised) and a scrape
target's schema never depends on which code paths have run.

Two gates keep the catalogue honest:

- ``tools/metrics_lint.py --scan`` fails when a ``repro_*`` metric-name
  literal appears in ``src/repro`` but not here (an undocumented metric);
- ``make metrics-smoke`` runs a workload and fails when the rendered
  exposition is missing any catalogued name (a documented-but-dead metric).

``docs/observability.md`` renders this catalogue as the metric reference.
"""

from __future__ import annotations

#: Metric types the registry understands.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: name -> (type, help).  Label dimensions are noted in the help text;
#: Prometheus exposition derives its ``# HELP`` / ``# TYPE`` lines here.
CATALOG: dict[str, tuple[str, str]] = {
    # ---- kernels ------------------------------------------------------
    "repro_apsp_runs_total": (
        COUNTER,
        "Full APSP kernel runs in this process (the one-APSP-per-graph-"
        "version invariant's counter).",
    ),
    "repro_full_apsp_refresh_total": (
        COUNTER,
        "Incremental delta repairs abandoned for a full APSP recompute "
        "(threshold fallback, trimmed mutation window, or replay desync).",
    ),
    # ---- blocked distance oracle ---------------------------------------
    "repro_oracle_block_hits_total": (
        COUNTER,
        "Row-block requests answered from the lazy distance oracle's "
        "resident LRU (no frontier expansion spent).",
    ),
    "repro_oracle_block_misses_total": (
        COUNTER,
        "Row-block requests that had to materialize the block by "
        "multi-source frontier expansion over the CSR adjacency.",
    ),
    "repro_oracle_block_evictions_total": (
        COUNTER,
        "Row blocks evicted from a lazy distance oracle to hold the "
        "configured byte budget.",
    ),
    "repro_oracle_peak_bytes": (
        GAUGE,
        "High-water mark of resident row-block bytes in the most recently "
        "active lazy distance oracle — the perf-gated oracle_peak_bytes "
        "signal.",
    ),
    "repro_oracle_promotions_total": (
        COUNTER,
        "Row-block materializations whose BFS level overflowed the block "
        "dtype and promoted to the next wider integer type.",
    ),
    # ---- result caches (label: tier = single | sharded) ---------------
    "repro_cache_hits_total": (
        COUNTER,
        "Result-cache lookups answered from a warm entry, by cache tier.",
    ),
    "repro_cache_misses_total": (
        COUNTER,
        "Result-cache lookups that found nothing, by cache tier.",
    ),
    "repro_cache_puts_total": (
        COUNTER,
        "Entries inserted (or refreshed) into a result cache, by tier.",
    ),
    "repro_cache_evictions_total": (
        COUNTER,
        "LRU evictions from a result cache, by tier.",
    ),
    "repro_shard_lock_contentions_total": (
        GAUGE,
        "Shard-lock acquisitions that found the lock held, summed over "
        "every shard of the most recently built sharded cache.",
    ),
    "repro_shard_contention_rate": (
        GAUGE,
        "Contended shard-lock acquisitions per acquisition (in [0, 1]) of "
        "the most recently built sharded cache — the perf-gated "
        "shard_lock_wait signal.",
    ),
    # ---- concurrent server --------------------------------------------
    "repro_server_submitted_total": (
        COUNTER,
        "Requests submitted to a ConcurrentLabelingService.",
    ),
    "repro_server_completed_total": (
        COUNTER,
        "Accepted requests whose public future resolved (result or error).",
    ),
    "repro_server_hits_total": (
        COUNTER,
        "Server submissions answered from the warm cache (submit fast "
        "path or worker re-probe).",
    ),
    "repro_server_coalesced_total": (
        COUNTER,
        "Server submissions that attached to an identical in-flight solve.",
    ),
    "repro_server_solved_total": (
        COUNTER,
        "Server submissions that ran an engine solve.",
    ),
    "repro_server_rejected_total": (
        COUNTER,
        "Server submissions rejected by backpressure (queue at high water).",
    ),
    "repro_server_cancelled_total": (
        COUNTER,
        "Queued server submissions cancelled by a non-draining shutdown.",
    ),
    "repro_server_errors_total": (
        COUNTER,
        "Server solves that raised; the error propagates to every waiter.",
    ),
    "repro_queue_depth": (
        GAUGE,
        "Requests currently in the submission queue of the most recently "
        "built ConcurrentLabelingService.",
    ),
    "repro_queue_high_water": (
        GAUGE,
        "Highest submission-queue depth observed at submit time.",
    ),
    "repro_worker_busy_seconds": (
        GAUGE,
        "Cumulative seconds each server worker spent processing jobs "
        "(label: worker).  busy/(busy+idle) is the worker's utilization — "
        "the direct measurement of the GIL ceiling on thread scaling.",
    ),
    "repro_worker_idle_seconds": (
        GAUGE,
        "Cumulative seconds each server worker spent waiting on the "
        "queue (label: worker).",
    ),
    # ---- shared-memory worker pool ------------------------------------
    "repro_shm_bytes_published_total": (
        COUNTER,
        "Bytes copied into shared-memory segments by ShmArena.publish "
        "(distance matrices + CSR adjacency, once per canonical graph).",
    ),
    "repro_shm_segments_live": (
        GAUGE,
        "Shared-memory segments currently owned (published, not yet "
        "unlinked) by the most recently built ShmArena.",
    ),
    "repro_pool_worker_restarts_total": (
        COUNTER,
        "Pool worker processes that died and were respawned; every "
        "in-flight job on the dead worker failed with WorkerCrashedError.",
    ),
    "repro_pool_dispatch_total": (
        COUNTER,
        "Jobs dispatched to persistent pool workers, by worker index "
        "(label: worker).  The canonical-key router decides the shard.",
    ),
    "repro_pool_route_imbalance": (
        GAUGE,
        "Max-over-mean dispatch count across the most recently built "
        "pool's workers (1.0 = perfectly balanced routing; the price of "
        "key-affinity routing shows up here, not in lost cache warmth).",
    ),
    # ---- QoS router + approx tier --------------------------------------
    "repro_router_requests_total": (
        COUNTER,
        "Requests routed by the QoS router, by the tier it picked "
        "(label: tier = exact | approx).",
    ),
    "repro_router_degraded_total": (
        COUNTER,
        "Auto-tier requests the QoS router downgraded to the approx tier "
        "(queue pressure, instance size, or a tight deadline).",
    ),
    "repro_router_expired_total": (
        COUNTER,
        "Requests dropped because their deadline expired before a solve "
        "started (intentional shedding — counted, never errored).",
    ),
    "repro_approx_solves_total": (
        COUNTER,
        "One-pass simplify/select approximate solves run by the degraded "
        "tier.",
    ),
    "repro_approx_gap": (
        GAUGE,
        "Certified optimality gap (span - lower_bound) of the most recent "
        "approximate solve.",
    ),
    "repro_approx_ratio": (
        GAUGE,
        "Certified approximation ratio (span / lower_bound) of the most "
        "recent approximate solve — the perf-gated approx_ratio signal's "
        "live mirror.",
    ),
    # ---- request latency ----------------------------------------------
    "repro_request_seconds": (
        HISTOGRAM,
        "End-to-end request latency: submit() entry to public-future "
        "resolution, including cache fast-path answers.",
    ),
    "repro_request_queue_seconds": (
        HISTOGRAM,
        "Queue wait: job enqueue to worker pickup.",
    ),
    "repro_solve_seconds": (
        HISTOGRAM,
        "Engine solve wall time for cold requests (inline or offloaded).",
    ),
    "repro_tier_request_seconds": (
        HISTOGRAM,
        "Worker processing time for cold requests, by the quality tier "
        "that answered (label: tier = exact | approx).",
    ),
    # ---- network front end --------------------------------------------
    "repro_http_requests_total": (
        COUNTER,
        "HTTP requests served by the network front end, by endpoint and "
        "status (labels: endpoint, status).",
    ),
    "repro_http_request_seconds": (
        HISTOGRAM,
        "Wire-level request latency: first byte of the request line to "
        "response flushed, including queueing inside the labeling service.",
    ),
    "repro_http_open_connections": (
        GAUGE,
        "Currently open client connections on the network front end.",
    ),
}


def catalog_entry(name: str) -> tuple[str, str]:
    """The ``(type, help)`` catalogue row for ``name``.

    Raises :class:`~repro.errors.ReproError` for uncatalogued names — a
    caller holding one has either a typo or an undocumented metric.
    """
    try:
        return CATALOG[name]
    except KeyError:
        from repro.errors import ReproError

        raise ReproError(f"uncatalogued metric {name!r}") from None
