"""`MetricsRegistry`: thread-safe counters, gauges and latency histograms.

One registry is the process-wide source of numeric truth for every signal
the stack emits.  Three instrument kinds cover the surface:

- **Counter** — monotone totals (``repro_apsp_runs_total``);
- **Gauge** — point-in-time values, either set directly or *sampled* from a
  live object through a weakly-bound callback (queue depth, contention
  rate), so exposing a gauge never pins the object alive;
- **Histogram** — fixed-bucket latency distributions with cumulative
  Prometheus buckets and interpolated p50/p95/p99 summaries.

Instruments are *families*: ``registry.counter(name)`` returns the family,
``family.labels(tier="sharded")`` a labelled child; calling ``inc`` /
``set`` / ``observe`` on the family operates on its unlabelled child.
Names are validated and, for the default :data:`REGISTRY`, must agree with
the catalogue (:mod:`repro.obs.catalog`) on type — the catalogue is also
pre-registered there, so an exposition always lists the full surface.

Two renderings, one state: :meth:`MetricsRegistry.render_prom` emits the
Prometheus 0.0.4 text format (``# HELP`` / ``# TYPE`` / samples), and
:meth:`MetricsRegistry.to_json` a lossless JSON dump that
:meth:`MetricsRegistry.from_json` reconstructs (the ``repro-label metrics
--from FILE`` path).

>>> r = MetricsRegistry()
>>> r.counter("demo_total", help="demo").inc(3)
>>> r.value("demo_total")
3.0
"""

from __future__ import annotations

import json
import re
import threading
import weakref
from pathlib import Path
from typing import Callable

from repro.errors import ReproError
from repro.obs.catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM

#: Default latency buckets (seconds).  Spans four orders of magnitude:
#: sub-millisecond cache hits up to ten-second cold exact solves.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Summary quantiles every histogram reports.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Format marker for JSON dumps.
_DUMP_VERSION = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _fmt(value: float) -> str:
    """Render a sample value the Prometheus way (integers without '.0')."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    """Escape a label value per the 0.0.4 text format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """Escape a HELP string per the 0.0.4 text format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    """``{k="v",...}`` (empty string for no labels and no extra)."""
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Counter:
    """A monotone total.  ``inc`` is the only mutation."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        """A zeroed counter."""
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ReproError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class _Gauge:
    """A point-in-time value: settable, or sampled through a weak callback."""

    __slots__ = ("_lock", "_value", "_fn", "_owner")

    def __init__(self) -> None:
        """A zeroed, unbound gauge."""
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable | None = None
        self._owner: weakref.ref | None = None

    def set(self, value: float) -> None:
        """Set the gauge (detaches any sampling callback)."""
        with self._lock:
            self._value = float(value)
            self._fn = None
            self._owner = None

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the stored value."""
        with self._lock:
            self._value += amount

    def set_function(self, fn: Callable, owner: object | None = None) -> None:
        """Sample the gauge from ``fn`` at read time.

        With ``owner`` given, only a weak reference to it is kept and
        ``fn(owner)`` produces the value; once the owner is collected the
        gauge falls back to the last sampled value.  Without ``owner``,
        ``fn()`` is called directly (and referenced strongly).
        """
        with self._lock:
            self._fn = fn
            self._owner = weakref.ref(owner) if owner is not None else None

    @property
    def value(self) -> float:
        """The stored value, refreshed through the callback when bound."""
        with self._lock:
            fn, owner_ref = self._fn, self._owner
        if fn is not None:
            if owner_ref is not None:
                owner = owner_ref()
                sample = None if owner is None else fn(owner)
            else:
                sample = fn()
            if sample is not None:
                with self._lock:
                    self._value = float(sample)
        with self._lock:
            return self._value


class _Histogram:
    """Fixed cumulative buckets plus sum/count, with quantile estimates."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        """An empty histogram over strictly increasing ``buckets``."""
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ReproError(
                f"histogram buckets must be strictly increasing, got {buckets}"
            )
        self._lock = threading.Lock()
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(buckets) + 1)  # final slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1

    def state(self) -> tuple[list[int], float, int]:
        """A consistent ``(per-bucket counts, sum, count)`` snapshot."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def _restore(self, counts: list[int], total: float, count: int) -> None:
        """Overwrite internal state (JSON reload path)."""
        with self._lock:
            self._counts = list(counts)
            self._sum = float(total)
            self._count = int(count)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation within buckets.

        Samples beyond the last finite bound are clamped to it (the +Inf
        bucket has no width to interpolate over); an empty histogram
        reports 0.0.
        """
        counts, _total, count = self.state()
        if count == 0:
            return 0.0
        target = q * count
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = counts[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                return lower + fraction * (bound - lower)
            cumulative += in_bucket
            lower = bound
        return self.buckets[-1]

    def summary(self) -> dict:
        """Count, sum and the standard quantiles as one JSON-ready dict."""
        _counts, total, count = self.state()
        out = {"count": count, "sum": round(total, 6)}
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = round(self.percentile(q), 6)
        return out

    @property
    def count(self) -> int:
        """Total samples observed."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum


#: Child-instrument constructors by metric kind.
_KINDS = {COUNTER: _Counter, GAUGE: _Gauge, HISTOGRAM: _Histogram}

_LabelKey = tuple[tuple[str, str], ...]


class MetricFamily:
    """One named metric with zero or more labelled children.

    Operating on the family itself (``inc``/``set``/``observe``/...)
    addresses the unlabelled child, so label-free metrics need no
    ``labels()`` call.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """A family with no children yet."""
        if kind == HISTOGRAM:
            _Histogram(buckets)  # validate eagerly: fail at registration
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[_LabelKey, object] = {}

    def _make_child(self):
        """Construct one child instrument of this family's kind."""
        if self.kind == HISTOGRAM:
            return _Histogram(self.buckets)
        return _KINDS[self.kind]()

    def labels(self, **labelset: str):
        """The child for ``labelset`` (created on first use)."""
        for k in labelset:
            if not _LABEL_RE.match(k):
                raise ReproError(f"invalid label name {k!r} on {self.name}")
        key: _LabelKey = tuple(sorted((k, str(v)) for k, v in labelset.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> list[tuple[_LabelKey, object]]:
        """``(label key, child)`` pairs, sorted by label key."""
        with self._lock:
            return sorted(self._children.items())

    # convenience pass-throughs to the unlabelled child ------------------
    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabelled child (gauges)."""
        self.labels().set(value)

    def set_function(self, fn: Callable, owner: object | None = None) -> None:
        """Bind a sampling callback on the unlabelled child (gauges)."""
        self.labels().set_function(fn, owner=owner)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled child (histograms)."""
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """The unlabelled child's value (counters/gauges)."""
        return self.labels().value


class MetricsRegistry:
    """A named collection of metric families with text/JSON exposition.

    ``preregister`` instantiates a catalogue of ``name -> (type, help)``
    rows up front — the process-wide :data:`REGISTRY` does this with
    :data:`repro.obs.catalog.CATALOG` so every catalogued metric appears
    in every exposition, exercised or not.
    """

    def __init__(
        self, preregister: dict[str, tuple[str, str]] | None = None
    ) -> None:
        """An empty registry, optionally pre-seeded from a catalogue."""
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        if preregister:
            for name, (kind, help_text) in preregister.items():
                self._family(name, kind, help_text)

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str | None,
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        """Fetch-or-create the family, enforcing name and type consistency."""
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise ReproError(f"unknown metric kind {kind!r}")
        catalogued = CATALOG.get(name)
        if help is None:
            help = catalogued[1] if catalogued else name
        if catalogued and catalogued[0] != kind:
            raise ReproError(
                f"metric {name!r} is catalogued as {catalogued[0]}, "
                f"requested as {kind}"
            )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help, buckets=buckets or DEFAULT_BUCKETS
                )
                self._families[name] = family
            elif family.kind != kind:
                raise ReproError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested as {kind}"
                )
            return family

    def counter(self, name: str, help: str | None = None) -> MetricFamily:
        """The counter family ``name`` (created on first call)."""
        return self._family(name, COUNTER, help)

    def gauge(self, name: str, help: str | None = None) -> MetricFamily:
        """The gauge family ``name`` (created on first call)."""
        return self._family(name, GAUGE, help)

    def histogram(
        self,
        name: str,
        help: str | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        """The histogram family ``name`` (created on first call)."""
        return self._family(name, HISTOGRAM, help, buckets=buckets)

    # ------------------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        """Every family, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def value(self, name: str, **labelset: str) -> float:
        """Current value of one counter/gauge child (0.0 if never touched)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            raise ReproError(f"unknown metric {name!r}")
        return family.labels(**labelset).value

    def histogram_summary(self, name: str, **labelset: str) -> dict:
        """Count/sum/p50/p95/p99 of one histogram child."""
        with self._lock:
            family = self._families.get(name)
        if family is None or family.kind != HISTOGRAM:
            raise ReproError(f"unknown histogram {name!r}")
        return family.labels(**labelset).summary()

    # ------------------------------------------------------------------
    def render_prom(self) -> str:
        """The Prometheus 0.0.4 text exposition of every family."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children():
                if family.kind == HISTOGRAM:
                    counts, total, count = child.state()
                    cumulative = 0
                    for bound, in_bucket in zip(family.buckets, counts):
                        cumulative += in_bucket
                        le = _render_labels(labels, f'le="{_fmt(bound)}"')
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                        )
                    le = _render_labels(labels, 'le="+Inf"')
                    lines.append(f"{family.name}_bucket{le} {count}")
                    suffix = _render_labels(labels)
                    lines.append(f"{family.name}_sum{suffix} {_fmt(total)}")
                    lines.append(f"{family.name}_count{suffix} {count}")
                else:
                    suffix = _render_labels(labels)
                    lines.append(
                        f"{family.name}{suffix} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """A lossless JSON dump (see :meth:`from_json`)."""
        metrics: dict[str, dict] = {}
        for family in self.families():
            values = []
            for labels, child in family.children():
                entry: dict = {"labels": dict(labels)}
                if family.kind == HISTOGRAM:
                    counts, total, count = child.state()
                    entry.update(
                        buckets=list(family.buckets),
                        counts=counts,
                        sum=round(total, 9),
                        count=count,
                        summary=child.summary(),
                    )
                else:
                    entry["value"] = child.value
                values.append(entry)
            metrics[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return {"version": _DUMP_VERSION, "metrics": metrics}

    @classmethod
    def from_json(cls, data: dict) -> "MetricsRegistry":
        """Reconstruct a registry from a :meth:`to_json` dump."""
        if data.get("version") != _DUMP_VERSION:
            raise ReproError(
                f"unsupported metrics dump version {data.get('version')!r}"
            )
        registry = cls()
        try:
            for name, payload in data["metrics"].items():
                kind, help_text = payload["type"], payload.get("help", name)
                for entry in payload.get("values", []):
                    labelset = entry.get("labels", {})
                    if kind == HISTOGRAM:
                        family = registry.histogram(
                            name, help_text,
                            buckets=tuple(entry["buckets"]),
                        )
                        family.labels(**labelset)._restore(
                            entry["counts"], entry["sum"], entry["count"]
                        )
                    elif kind == COUNTER:
                        registry.counter(name, help_text).labels(
                            **labelset
                        ).inc(entry["value"])
                    elif kind == GAUGE:
                        registry.gauge(name, help_text).labels(
                            **labelset
                        ).set(entry["value"])
                    else:
                        raise ReproError(f"unknown metric kind {kind!r}")
                if not payload.get("values"):
                    registry._family(name, kind, help_text)
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed metrics dump: {exc!r}") from exc
        return registry

    def save(self, path: str | Path) -> Path:
        """Write the JSON dump to ``path``; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json()), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "MetricsRegistry":
        """Reconstruct a registry from a file written by :meth:`save`."""
        source = Path(path)
        try:
            data = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"unreadable metrics dump {source}: {exc}"
            ) from exc
        return cls.from_json(data)


#: The process-wide default registry, pre-seeded with the full catalogue.
REGISTRY = MetricsRegistry(preregister=CATALOG)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY
