"""Lightweight tracing: ``span()`` context managers, structured records.

A *span* is one named, timed region with free-form tags and a parent —
``with span("solve", engine="lk"):`` times the block and records a
:class:`Span` into the process-wide :class:`Tracer`.  The active span is
thread-local; two propagation primitives move it across execution
boundaries:

- **threads** — capture :func:`current_context` on the submitting thread,
  re-establish it with :func:`activate` on the worker, and spans created
  there parent correctly (this is what
  :class:`~repro.service.server.ConcurrentLabelingService` does per job);
- **processes** — a :class:`SpanContext` is a picklable pair of ids, so it
  ships to a pool worker inside the job payload; spans recorded in the
  child are drained, returned as JSON rows, and re-ingested into the
  parent's tracer (see ``_traced_solve_job`` in the server module).

Records accumulate in a bounded deque (old spans fall off, the serving
path can run forever) and drain as dicts or NDJSON — the ``--trace FILE``
CLI flag is ``dump_ndjson`` at exit.

>>> t = Tracer()
>>> with t.span("outer") as outer:
...     with t.span("inner") as inner:
...         pass
>>> inner.parent_id == outer.span_id
True
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Default bound on retained span records per tracer.
DEFAULT_CAPACITY = 8192

#: Process-local monotone id source; combined with the pid so ids minted
#: in offload workers never collide with the parent's.
_IDS = itertools.count(1)


def _new_id(prefix: str = "") -> str:
    """A process-unique id (``pid`` hex dot counter hex)."""
    return f"{prefix}{os.getpid():x}.{next(_IDS):x}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of an active span: enough to parent under it."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One recorded span: name, identity, timing, tags.

    ``start`` is wall-clock epoch seconds (for cross-process alignment);
    ``duration`` comes from ``perf_counter`` deltas.  Tags are free-form
    JSON-serializable values; :func:`repro.profiling.profile_call` attaches
    its hot-spot rows here.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    duration: float | None = None
    tags: dict = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        """This span's propagation context."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_json(self) -> dict:
        """One NDJSON row (the trace schema in ``docs/observability.md``)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6)
            if self.duration is not None
            else None,
            "tags": self.tags,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Span":
        """Parse one row (the cross-process re-ingestion path)."""
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            duration=data.get("duration"),
            tags=dict(data.get("tags", {})),
        )


class Tracer:
    """Thread-aware span recorder with a bounded record buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        """An empty tracer retaining at most ``capacity`` records."""
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: list[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        """This thread's active-context stack (spans and remote contexts)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        """The innermost active *local* span on this thread, if any."""
        for item in reversed(self._stack()):
            if isinstance(item, Span):
                return item
        return None

    def current_context(self) -> SpanContext | None:
        """The innermost active context (local span or activated remote)."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return top.context if isinstance(top, Span) else top

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **tags) -> Iterator[Span]:
        """Open a span: time the block, record it on exit.

        The span parents under the innermost active context — a local
        enclosing ``span()`` or an :func:`activate`-d remote context — and
        starts a fresh trace id when there is neither.
        """
        parent = self.current_context()
        record = Span(
            name=name,
            trace_id=parent.trace_id if parent else _new_id("t"),
            span_id=_new_id(),
            parent_id=parent.span_id if parent else None,
            start=time.time(),
            tags=dict(tags),
        )
        stack = self._stack()
        stack.append(record)
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - t0
            stack.pop()
            self.record(record)

    @contextmanager
    def activate(self, ctx: SpanContext | None) -> Iterator[None]:
        """Re-establish a captured context on this thread for the block.

        Spans opened inside parent under ``ctx`` even though the span it
        names lives on another thread (or in another process).  ``None``
        is accepted and is a no-op, so call sites can pass an optional
        context through unconditionally.
        """
        if ctx is None:
            yield
            return
        stack = self._stack()
        stack.append(ctx)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    def record(self, span: Span) -> None:
        """Append one finished span, evicting the oldest past capacity."""
        with self._lock:
            self._records.append(span)
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]

    def ingest(self, rows: list[dict]) -> None:
        """Re-record spans drained in another process (JSON rows)."""
        for row in rows:
            self.record(Span.from_json(row))

    def drain(self) -> list[Span]:
        """Remove and return every recorded span, oldest first."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def __len__(self) -> int:
        """Recorded (undrained) span count."""
        with self._lock:
            return len(self._records)

    def dump_ndjson(self, path: str | Path) -> Path:
        """Drain all records to ``path`` as NDJSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            for record in self.drain():
                fh.write(json.dumps(record.to_json()) + "\n")
        return target


#: The process-wide default tracer.
TRACER = Tracer()


def span(name: str, **tags):
    """Open a span on the default tracer (module-level convenience)."""
    return TRACER.span(name, **tags)


def current_span() -> Span | None:
    """The default tracer's innermost active local span."""
    return TRACER.current_span()


def current_context() -> SpanContext | None:
    """The default tracer's innermost active context."""
    return TRACER.current_context()


def activate(ctx: SpanContext | None):
    """Re-establish a captured context on the default tracer."""
    return TRACER.activate(ctx)
