"""Observability layer: metrics registry, trace spans, exposition.

A leaf layer (imports nothing above :mod:`repro.errors`) that every other
layer reports into:

- :mod:`repro.obs.catalog` — the metric-name catalogue, the single source
  of truth for what the process exposes;
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (thread-safe
  counters/gauges/histograms) with Prometheus 0.0.4 text exposition and a
  lossless JSON dump; the process-wide :data:`REGISTRY` pre-registers the
  catalogue;
- :mod:`repro.obs.trace` — ``span()`` context managers producing
  structured records with thread and process propagation, drainable as
  NDJSON (the ``--trace FILE`` CLI flag).

See ``docs/observability.md`` for the metric catalogue, histogram
buckets, trace schema and a scrape example.
"""

from repro.obs.catalog import CATALOG
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    TRACER,
    Span,
    SpanContext,
    Tracer,
    activate,
    current_context,
    current_span,
    span,
)

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "TRACER",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "current_context",
    "current_span",
    "span",
]
