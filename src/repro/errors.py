"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex, malformed edge, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation that requires connectivity received a disconnected graph."""


class ReductionNotApplicableError(ReproError):
    """The Theorem-2 reduction preconditions do not hold.

    Raised when ``diam(G) > len(p)`` or ``p_max > 2 * p_min`` (or p is
    malformed).  The message always explains which precondition failed.
    """


class InfeasibleInstanceError(ReproError):
    """A solver was handed an instance with no feasible solution."""


class SolverError(ReproError):
    """An engine failed to produce a valid solution."""


class NotMetricError(ReproError):
    """A TSP instance violated the triangle inequality where one was required."""


class ServiceClosedError(ReproError):
    """A request was submitted to a serving front-end after shutdown began."""


class WorkerCrashedError(ReproError):
    """A pool worker process died while (or before) running a solve.

    Raised into every future that was in flight on the dead worker; the
    pool respawns the worker and counts the death in
    ``repro_pool_worker_restarts_total``, so callers may simply resubmit.
    """


class ServiceOverloadedError(ReproError):
    """A non-blocking submission found the serving queue at its high-water mark.

    Raised only when backpressure is configured to reject (``block=False``);
    blocking submissions wait for queue space instead.
    """


class DeadlineExpiredError(ReproError):
    """A request's latency budget ran out before a solve started.

    The QoS router drops expired work instead of solving it — the answer
    could no longer be used — and counts the drop in
    ``repro_router_expired_total``.  Intentional shedding, not a server
    fault: the wire maps it to HTTP 504 and the load harness counts it as
    ``dropped``, never as an error.
    """


class RequestValidationError(ReproError):
    """A wire payload failed schema validation before reaching a solver.

    Raised by :meth:`repro.service.protocol.SolveRequest.from_json` (and the
    response counterpart) on any malformed input, so the network layer maps
    every bad payload to a clean HTTP 400 instead of a stack trace.
    """


#: The single error contract shared by the CLI and the network server:
#: every :class:`ReproError` subclass maps to a stable machine-readable
#: ``code`` and the HTTP status the server answers with.  Lookup walks the
#: exception's MRO (:func:`error_code`), so new subclasses inherit their
#: parent's row until given one of their own.  The CLI prints the code in
#: its ``error: [code] message`` exit-2 line; the server puts the same code
#: in its JSON error payload — one vocabulary, two transports.
ERROR_TABLE: dict[type, tuple[str, int]] = {
    ReproError: ("internal", 500),
    GraphError: ("bad_graph", 400),
    DisconnectedGraphError: ("disconnected_graph", 400),
    ReductionNotApplicableError: ("not_applicable", 422),
    InfeasibleInstanceError: ("infeasible_instance", 422),
    SolverError: ("solver_error", 500),
    NotMetricError: ("not_metric", 500),
    ServiceClosedError: ("service_closed", 503),
    WorkerCrashedError: ("worker_crashed", 503),
    ServiceOverloadedError: ("overloaded", 429),
    DeadlineExpiredError: ("deadline_expired", 504),
    RequestValidationError: ("invalid_request", 400),
}


def _table_row(exc: ReproError | type) -> tuple[str, int]:
    """The ``(code, status)`` row for an error, resolved through the MRO."""
    cls = exc if isinstance(exc, type) else type(exc)
    for base in cls.__mro__:
        if base in ERROR_TABLE:
            return ERROR_TABLE[base]
    return ERROR_TABLE[ReproError]


def error_code(exc: ReproError | type) -> str:
    """The stable machine-readable code for an error (class or instance).

    >>> error_code(ServiceOverloadedError("queue full"))
    'overloaded'
    """
    return _table_row(exc)[0]


def http_status(exc: ReproError | type) -> int:
    """The HTTP status the network server answers this error with.

    >>> http_status(RequestValidationError)
    400
    """
    return _table_row(exc)[1]


def error_payload(exc: ReproError) -> dict:
    """The JSON error body the server sends: ``{"error", "code", "status"}``."""
    code, status = _table_row(exc)
    return {"error": str(exc), "code": code, "status": status}
