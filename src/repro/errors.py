"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex, malformed edge, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation that requires connectivity received a disconnected graph."""


class ReductionNotApplicableError(ReproError):
    """The Theorem-2 reduction preconditions do not hold.

    Raised when ``diam(G) > len(p)`` or ``p_max > 2 * p_min`` (or p is
    malformed).  The message always explains which precondition failed.
    """


class InfeasibleInstanceError(ReproError):
    """A solver was handed an instance with no feasible solution."""


class SolverError(ReproError):
    """An engine failed to produce a valid solution."""


class NotMetricError(ReproError):
    """A TSP instance violated the triangle inequality where one was required."""


class ServiceClosedError(ReproError):
    """A request was submitted to a serving front-end after shutdown began."""


class WorkerCrashedError(ReproError):
    """A pool worker process died while (or before) running a solve.

    Raised into every future that was in flight on the dead worker; the
    pool respawns the worker and counts the death in
    ``repro_pool_worker_restarts_total``, so callers may simply resubmit.
    """


class ServiceOverloadedError(ReproError):
    """A non-blocking submission found the serving queue at its high-water mark.

    Raised only when backpressure is configured to reject (``block=False``);
    blocking submissions wait for queue space instead.
    """
