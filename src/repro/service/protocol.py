"""The service protocol: one typed request/response pair, in-process and wire.

:class:`SolveRequest` and :class:`SolveResponse` are the *single* schema the
whole serving surface speaks.  In process, :meth:`LabelingService.submit
<repro.service.api.LabelingService.submit>` and
:meth:`ConcurrentLabelingService.submit
<repro.service.server.ConcurrentLabelingService.submit>` accept a
``SolveRequest`` and answer with a ``SolveResponse``; on the wire, the
:mod:`repro.net` HTTP server speaks exactly ``SolveRequest.to_json()`` /
``SolveResponse.to_json()`` as its JSON bodies.  Both directions are
lossless (``from_json(to_json(x))`` reconstructs an equal object), so a
request serialized by one client, replayed from a log, or round-tripped
through the NDJSON batch endpoint always means the same instance.

The only field that does not cross the wire is ``SolveRequest.analysis`` —
a pre-computed distance oracle is a same-process optimization; a remote
peer could neither serialize nor trust one.

Malformed wire payloads raise :class:`~repro.errors.RequestValidationError`,
which the error table in :mod:`repro.errors` maps to HTTP 400.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass

from repro.errors import ReproError, RequestValidationError
from repro.graphs.analysis import GraphAnalysis
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec

#: The quality tiers a request may ask for (``auto`` defers to the router).
TIERS = frozenset({"exact", "approx", "auto"})


@dataclass(frozen=True)
class SolveRequest:
    """One labeling request — the unit both service flavours accept."""

    graph: Graph
    spec: LpSpec
    engine: str = "auto"
    tag: str | None = None       # caller's correlation id (file name, ...)
    #: Requested quality tier: ``"exact"`` forces the full engine pipeline,
    #: ``"approx"`` forces the one-pass degraded solver, ``"auto"`` lets
    #: the serving side's :class:`~repro.service.server.QosRouter` decide
    #: from current pressure.  Plain (non-routed) services treat ``auto``
    #: as ``exact``.
    tier: str = "auto"
    #: Client latency budget in milliseconds; the serving side drops the
    #: request (HTTP 504, counted not errored) once the budget is spent
    #: before a solve starts.  ``None`` means no deadline.
    deadline_ms: int | None = None
    #: Optional pre-computed oracle for ``graph`` (e.g. a session's
    #: delta-repaired one); forwarded into canonicalization, where a stale
    #: or foreign analysis is rejected loudly.  Never serialized and never
    #: shipped to pool workers — only key derivation on this side reads it.
    analysis: GraphAnalysis | None = None

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The wire form: plain JSON-ready dict (``analysis`` excluded).

        >>> SolveRequest(Graph(2, [(0, 1)]), LpSpec((2,))).to_json()
        {'n': 2, 'edges': [[0, 1]], 'p': [2], 'engine': 'auto', 'tag': None, 'tier': 'auto', 'deadline_ms': None}
        """
        return {
            "n": self.graph.n,
            "edges": [[u, v] for u, v in sorted(self.graph.edges())],
            "p": list(self.spec.p),
            "engine": self.engine,
            "tag": self.tag,
            "tier": self.tier,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SolveRequest":
        """Parse (and validate) one wire payload back into a request.

        Raises :class:`RequestValidationError` — never ``KeyError`` or
        ``TypeError`` — on any malformed input, so the server can map every
        bad payload to a clean HTTP 400.
        """
        if not isinstance(payload, dict):
            raise RequestValidationError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "n", "edges", "p", "engine", "tag", "tier", "deadline_ms",
        }
        if unknown:
            raise RequestValidationError(
                f"unknown request fields: {sorted(unknown)}"
            )
        for field_name in ("n", "edges", "p"):
            if field_name not in payload:
                raise RequestValidationError(
                    f"request is missing required field {field_name!r}"
                )
        n = payload["n"]
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise RequestValidationError(f"'n' must be a non-negative int, got {n!r}")
        edges = payload["edges"]
        if not isinstance(edges, list) or not all(
            isinstance(e, (list, tuple))
            and len(e) == 2
            and all(isinstance(x, int) and not isinstance(x, bool) for x in e)
            for e in edges
        ):
            raise RequestValidationError("'edges' must be a list of [u, v] int pairs")
        p = payload["p"]
        if (
            not isinstance(p, list)
            or not p
            or not all(
                isinstance(x, int) and not isinstance(x, bool) and x >= 1
                for x in p
            )
        ):
            raise RequestValidationError("'p' must be a non-empty list of ints >= 1")
        engine = payload.get("engine", "auto")
        if not isinstance(engine, str):
            raise RequestValidationError(f"'engine' must be a string, got {engine!r}")
        tag = payload.get("tag")
        if tag is not None and not isinstance(tag, str):
            raise RequestValidationError(f"'tag' must be a string or null, got {tag!r}")
        tier = payload.get("tier", "auto")
        if tier not in TIERS:
            raise RequestValidationError(
                f"'tier' must be one of {sorted(TIERS)}, got {tier!r}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, int)
            or isinstance(deadline_ms, bool)
            or deadline_ms < 1
        ):
            raise RequestValidationError(
                f"'deadline_ms' must be a positive int or null, got {deadline_ms!r}"
            )
        try:
            graph = Graph(n, [(u, v) for u, v in edges])
            spec = LpSpec(tuple(p))
        except ReproError as exc:
            raise RequestValidationError(str(exc)) from exc
        return cls(
            graph=graph,
            spec=spec,
            engine=engine,
            tag=tag,
            tier=tier,
            deadline_ms=deadline_ms,
        )

    @classmethod
    def from_json_line(cls, line: str | bytes) -> "SolveRequest":
        """Parse one NDJSON line (the ``/batch`` stream unit)."""
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise RequestValidationError(f"invalid JSON: {exc}") from exc
        return cls.from_json(payload)


@dataclass(frozen=True)
class SolveResponse:
    """The service's answer to one :class:`SolveRequest`.

    Unlike :class:`repro.reduction.solver.SolveResult` this carries no
    reduced instance or tour — cache hits never materialize them — but it
    keeps the fields mutate-and-resolve loops and reports consume, and it
    serializes losslessly for the wire.
    """

    labeling: Labeling
    span: int
    engine: str                  # resolved engine that produced the labeling
    exact: bool
    cached: bool                 # True when served from the cache
    key: str                     # canonical cache key of the request
    seconds: float               # solve wall time (0.0 for cache hits)
    tag: str | None = None
    #: Quality tier that actually answered (``"exact"`` or ``"approx"``) —
    #: the router's decision, not necessarily the tier requested.
    tier: str = "exact"
    #: Certified optimality gap (``span - lower_bound``) for approx-tier
    #: answers; ``None`` on the exact tier.
    gap: int | None = None

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The wire form: labels expanded to a plain list."""
        return {
            "labels": list(self.labeling.labels),
            "span": self.span,
            "engine": self.engine,
            "exact": self.exact,
            "cached": self.cached,
            "key": self.key,
            "seconds": self.seconds,
            "tag": self.tag,
            "tier": self.tier,
            "gap": self.gap,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SolveResponse":
        """Reconstruct a response from its wire form (lossless inverse)."""
        if not isinstance(payload, dict):
            raise RequestValidationError(
                f"response must be a JSON object, got {type(payload).__name__}"
            )
        try:
            labels = payload["labels"]
            if not isinstance(labels, list):
                raise RequestValidationError("'labels' must be a list of ints")
            gap = payload.get("gap")
            return cls(
                labeling=Labeling.from_sequence(labels),
                span=int(payload["span"]),
                engine=str(payload["engine"]),
                exact=bool(payload["exact"]),
                cached=bool(payload["cached"]),
                key=str(payload["key"]),
                seconds=float(payload["seconds"]),
                tag=payload.get("tag"),
                tier=str(payload.get("tier", "exact")),
                gap=None if gap is None else int(gap),
            )
        except RequestValidationError:
            raise
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise RequestValidationError(
                f"malformed SolveResponse payload: {exc}"
            ) from exc


def as_request(
    request,
    spec: LpSpec | None = None,
    *,
    engine: str = "auto",
    tag: str | None = None,
    analysis: GraphAnalysis | None = None,
) -> SolveRequest:
    """Normalize a ``submit``-style call into one :class:`SolveRequest`.

    The unified protocol form passes a :class:`SolveRequest` as the sole
    positional argument; the legacy form — ``submit(graph, spec, engine=...,
    tag=..., analysis=...)`` — still works through this shim but emits a
    :class:`DeprecationWarning`.  ``stacklevel=3`` points the warning at the
    caller of ``submit``, not at the shim or ``submit`` itself.
    """
    if isinstance(request, SolveRequest):
        if spec is not None:
            raise ReproError(
                "submit(SolveRequest, ...) takes no separate spec — the "
                "request already carries one"
            )
        return request
    if spec is None:
        raise ReproError(
            "submit() needs a SolveRequest, or the legacy (graph, spec) pair"
        )
    warnings.warn(
        "submit(graph, spec, ...) is deprecated; pass a SolveRequest "
        "(from repro.service.protocol) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return SolveRequest(
        graph=request, spec=spec, engine=engine, tag=tag, analysis=analysis
    )
