"""`LabelingService` — the request-level front door of the batch subsystem.

One service instance owns one cache and one batch solver; everything that
solves repeatedly (`LabelingSession` loops, the CLI ``batch`` subcommand,
sweep scripts) should route through a shared service so isomorphic work is
paid for once.  The cache is *sharded* by default
(:class:`~repro.service.shard.ShardedResultCache`): concurrent callers —
the :class:`~repro.service.server.ConcurrentLabelingService` worker pool,
or any threads sharing one service — contend per shard, not on one global
lock.  ``cache_shards=1`` restores the single-lock
:class:`~repro.service.cache.ResultCache`.

Calls are synchronous (submit-and-wait on the caller's thread); for a
queued, multi-worker front end with backpressure and in-flight dedup, wrap
the service in :class:`repro.service.server.ConcurrentLabelingService`.
The module also hosts :func:`solve_record`, the single JSON serialization
used by both the ``solve`` and ``batch`` CLI paths.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec
from repro.service.batch import BatchReport, BatchSolver, ServiceResult
from repro.service.cache import CacheStats, ResultCache
from repro.service.protocol import SolveRequest, SolveResponse, as_request
from repro.service.shard import DEFAULT_SHARDS, ShardedResultCache


class LabelingService:
    """Facade over the canonical cache and the batch solver.

    >>> from repro.graphs.generators import cycle_graph
    >>> from repro.graphs.operations import relabel
    >>> from repro.labeling.spec import L21
    >>> from repro.service.protocol import SolveRequest
    >>> svc = LabelingService()
    >>> svc.submit(SolveRequest(cycle_graph(5), L21, engine="held_karp")).span
    4
    >>> svc.submit(SolveRequest(relabel(cycle_graph(5), [4, 2, 0, 3, 1]), L21,
    ...            engine="held_karp")).cached
    True
    """

    def __init__(
        self,
        cache_capacity: int = 4096,
        cache_path: str | Path | None = None,
        workers: int | None = None,
        small_n: int | None = None,
        cache_shards: int = DEFAULT_SHARDS,
    ) -> None:
        """Build the cache (sharded unless ``cache_shards <= 1``) and solver."""
        self.cache = (
            ShardedResultCache(
                capacity=cache_capacity, shards=cache_shards, path=cache_path
            )
            if cache_shards > 1
            else ResultCache(capacity=cache_capacity, path=cache_path)
        )
        kwargs = {} if small_n is None else {"small_n": small_n}
        self.solver = BatchSolver(cache=self.cache, workers=workers, **kwargs)

    # ------------------------------------------------------------------
    def submit(
        self,
        request: SolveRequest | Graph,
        spec: LpSpec | None = None,
        engine: str = "auto",
        tag: str | None = None,
        analysis=None,
    ) -> SolveResponse:
        """Solve (or recall) one :class:`SolveRequest`.

        The request optionally carries a pre-computed
        :class:`~repro.graphs.analysis.GraphAnalysis` for its graph (a
        session's delta-repaired oracle), so the canonical cache key is
        derived without recomputing distances.

        The legacy ``submit(graph, spec, engine=..., tag=..., analysis=...)``
        signature still works (a :class:`DeprecationWarning` points at the
        call site); new code should build the request object.
        """
        request = as_request(
            request, spec, engine=engine, tag=tag, analysis=analysis
        )
        results, _report = self.solver.solve_batch([request])
        return results[0]

    def submit_many(
        self, requests: list[SolveRequest]
    ) -> tuple[list[ServiceResult], BatchReport]:
        """Solve a request stream; results come back in request order."""
        return self.solver.solve_batch(requests)

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """The shared cache's lifetime counters."""
        return self.cache.stats

    def save_cache(self, path: str | Path | None = None) -> Path:
        """Persist the cache (see :meth:`ResultCache.save`)."""
        return self.cache.save(path)


def solve_record(
    result,
    graph: Graph | None = None,
    spec: LpSpec | None = None,
    include_labels: bool = False,
    tag: str | None = None,
) -> dict:
    """One solve as a JSON-ready dict — shared by ``solve`` and ``batch``.

    Accepts either a :class:`repro.reduction.solver.SolveResult` or a
    :class:`repro.service.batch.ServiceResult`; the optional ``graph`` and
    ``spec`` add provenance fields.
    """
    seconds = getattr(result, "seconds", None)
    if seconds is None:
        seconds = result.reduce_seconds + result.solve_seconds
    record: dict = {
        "span": result.span,
        "engine": result.engine,
        "exact": result.exact,
        "cached": getattr(result, "cached", False),
        "seconds": round(seconds, 6),
    }
    if graph is not None:
        record["n"] = graph.n
        record["m"] = graph.m
    if spec is not None:
        record["p"] = list(spec.p)
    tag = tag if tag is not None else getattr(result, "tag", None)
    if tag is not None:
        record["tag"] = tag
    if include_labels:
        record["labels"] = list(result.labeling.labels)
    return record
