"""Thread-safe LRU result cache with stats and optional JSON persistence.

The cache stores solved labelings in *canonical coordinates* (see
:mod:`repro.service.canonical`), keyed by the canonical hash of the request.
Entries are tiny — a label tuple plus scalars — so capacities in the
thousands are cheap; eviction is least-recently-used.  Persistence is a
plain JSON file so a service restart (or a second CLI invocation pointed at
the same ``--cache`` file) starts warm.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.obs.metrics import REGISTRY

#: Registry counter families shared by every cache tier; instances resolve
#: per-tier children once at construction (see ``ResultCache.__init__``).
_M_HITS = REGISTRY.counter("repro_cache_hits_total")
_M_MISSES = REGISTRY.counter("repro_cache_misses_total")
_M_PUTS = REGISTRY.counter("repro_cache_puts_total")
_M_EVICTIONS = REGISTRY.counter("repro_cache_evictions_total")


@dataclass(frozen=True)
class CachedSolve:
    """One memoized solve, in canonical vertex coordinates."""

    labels: tuple[int, ...]      # canonical-coordinate labeling
    span: int
    engine: str                  # resolved engine that produced the labels
    exact: bool
    #: Certified optimality gap for approx-tier entries; ``None`` marks an
    #: exact-tier entry (the tier is recoverable from this field alone).
    gap: int | None = None

    def to_json(self) -> dict:
        """JSON form (labels as a list)."""
        return {
            "labels": list(self.labels),
            "span": self.span,
            "engine": self.engine,
            "exact": self.exact,
            "gap": self.gap,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CachedSolve":
        """Parse one persisted entry, coercing value types.

        ``gap`` is optional so cache files persisted before the approx
        tier existed still load.
        """
        gap = data.get("gap")
        return cls(
            labels=tuple(int(x) for x in data["labels"]),
            span=int(data["span"]),
            engine=str(data["engine"]),
            exact=bool(data["exact"]),
            gap=None if gap is None else int(gap),
        )


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (monotone, never reset by eviction)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict:
        """JSON counters — the shape the perf trajectory records verbatim."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


#: Format marker for persisted cache files.
_PERSIST_VERSION = 1


class ResultCache:
    """LRU cache of :class:`CachedSolve` entries keyed by canonical hash.

    All operations are guarded by one lock; the critical sections are
    dictionary moves, so contention is negligible next to any solve.

    >>> c = ResultCache(capacity=2)
    >>> c.put("a", CachedSolve((0, 2), 2, "lk", False))
    >>> c.get("a").span
    2
    >>> c.get("b") is None
    True
    >>> c.stats.hits, c.stats.misses
    (1, 1)
    """

    def __init__(
        self,
        capacity: int = 4096,
        path: str | Path | None = None,
        metrics_tier: str = "single",
    ) -> None:
        """Create the cache; an existing ``path`` file warm-starts it.

        ``metrics_tier`` labels this cache's registry counters
        (``repro_cache_*_total{tier=...}``): ``"single"`` for the plain
        one-lock cache, ``"sharded"`` for shards of a
        :class:`~repro.service.shard.ShardedResultCache`.
        """
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CachedSolve] = OrderedDict()
        self.stats = CacheStats()
        self._m_hits = _M_HITS.labels(tier=metrics_tier)
        self._m_misses = _M_MISSES.labels(tier=metrics_tier)
        self._m_puts = _M_PUTS.labels(tier=metrics_tier)
        self._m_evictions = _M_EVICTIONS.labels(tier=metrics_tier)
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    def get(self, key: str) -> CachedSolve | None:
        """Look up a key, counting a hit or miss and refreshing recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._m_hits.inc()
            return entry

    def peek(self, key: str) -> CachedSolve | None:
        """Look up a key without touching stats or recency."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: CachedSolve) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self.stats.puts += 1
            self._m_puts.inc()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._m_evictions.inc()

    def clear(self) -> None:
        """Drop every entry (lifetime stats are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is cached (no stats or recency side effects)."""
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Persist entries as JSON (atomic rename); returns the path used."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ReproError("no persistence path configured for this cache")
        with self._lock:
            payload = {
                "version": _PERSIST_VERSION,
                "entries": {
                    k: v.to_json() for k, v in self._entries.items()
                },
            }
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target

    def load(self, path: str | Path) -> int:
        """Merge entries from a JSON file; returns how many were loaded.

        Unknown versions are ignored (a key-derivation bump makes old
        entries unreachable anyway, so silently starting cold is correct).
        """
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"unreadable cache file {source}: {exc}") from exc
        if payload.get("version") != _PERSIST_VERSION:
            return 0
        entries = payload.get("entries", {})
        try:
            decoded = {str(k): CachedSolve.from_json(d) for k, d in entries.items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed cache file {source}: {exc!r}") from exc
        with self._lock:
            for k, entry in decoded.items():
                self._entries[k] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._m_evictions.inc()
        return len(entries)
