"""Request-level batch labeling service with a canonical-graph result cache.

Layer map (bottom up):

* :mod:`repro.service.canonical` — relabeling-invariant canonical forms and
  stable cache keys for ``(Graph, LpSpec)`` requests;
* :mod:`repro.service.cache` — thread-safe LRU of solved labelings with
  hit/miss/eviction stats and optional JSON persistence;
* :mod:`repro.service.shard` — the same cache contract split over N
  independently locked shards (the default for services), with
  lock-contention stats the perf baseline gates;
* :mod:`repro.service.batch` — deduplicating batch solver that shards cache
  misses across the :mod:`repro.parallel` process pool;
* :mod:`repro.service.api` — the :class:`LabelingService` facade the session
  layer and the CLI route through;
* :mod:`repro.service.server` — the :class:`ConcurrentLabelingService`
  front end: bounded submission queue, worker pool, in-flight dedup,
  backpressure and graceful shutdown.
"""

from repro.service.api import LabelingService, solve_record
from repro.service.batch import (
    BatchReport,
    BatchSolver,
    ServiceResult,
    SolveRequest,
)
from repro.service.cache import CachedSolve, CacheStats, ResultCache
from repro.service.canonical import CanonicalForm, canonical_form, canonical_order
from repro.service.server import ConcurrentLabelingService, ServerStats
from repro.service.shard import ShardedResultCache

__all__ = [
    "LabelingService",
    "solve_record",
    "BatchReport",
    "BatchSolver",
    "ServiceResult",
    "SolveRequest",
    "CachedSolve",
    "CacheStats",
    "ResultCache",
    "ShardedResultCache",
    "ConcurrentLabelingService",
    "ServerStats",
    "CanonicalForm",
    "canonical_form",
    "canonical_order",
]
