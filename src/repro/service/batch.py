"""Batch solving: dedup against the cache, shard misses across processes.

A :class:`BatchSolver` takes a stream of :class:`SolveRequest`\\ s and answers
each one, doing the minimum amount of solving:

1. every request is canonicalized (:mod:`repro.service.canonical`) and looked
   up in the shared result cache (a sharded
   :class:`~repro.service.shard.ShardedResultCache` by default, or the
   single-lock :class:`~repro.service.cache.ResultCache` — the solver only
   needs ``get``/``put``);
2. cache misses are deduplicated — isomorphic requests collapse to one job —
   and the unique jobs are solved *in canonical coordinates* on the
   :mod:`repro.parallel` process pool (small instances are chunked to
   amortize pickling, large ones go one per worker);
3. solved entries enter the cache, and every request is answered by pulling
   the canonical labeling back through its own vertex order.

Because jobs are solved in canonical coordinates, the labels that enter the
cache serve *any* isomorphic request, now or in a later batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.approx import APPROX_ENGINE, approx_labeling
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec
from repro.parallel.pool import parallel_map, runs_serially
from repro.reduction.solver import solve_labeling
from repro.service.cache import CachedSolve, ResultCache
from repro.service.canonical import (
    CanonicalForm,
    canonical_form,
    canonical_instance,
)
from repro.service.protocol import SolveRequest, SolveResponse

#: Historical name for :class:`~repro.service.protocol.SolveResponse` —
#: the dataclass moved to :mod:`repro.service.protocol` when it became the
#: wire schema too.  Every existing ``ServiceResult`` import keeps working.
ServiceResult = SolveResponse

#: Instances with at most this many vertices are cheap enough that pool
#: pickling dominates; they are shipped in chunks.  Larger instances are
#: scheduled one per worker so a slow solve cannot starve a chunk-mate.
SMALL_INSTANCE_N = 40

#: Chunk size for small-instance jobs.
SMALL_CHUNK = 8


@dataclass(frozen=True)
class BatchReport:
    """Aggregate accounting for one :meth:`BatchSolver.solve_batch` call."""

    total: int                   # requests in the batch
    unique: int                  # distinct canonical keys in the batch
    cache_hits: int              # served from cache warmed by earlier batches
    deduped: int                 # duplicates collapsed within this batch
    solved: int                  # jobs actually sent to an engine
    wall_seconds: float
    engine_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without solving."""
        if self.total == 0:
            return 0.0
        return (self.cache_hits + self.deduped) / self.total

    @property
    def throughput(self) -> float:
        """Requests answered per second of wall time."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.total / self.wall_seconds

    def to_json(self) -> dict:
        """JSON counters (rates rounded) for reports and CLI summaries."""
        return {
            "total": self.total,
            "unique": self.unique,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "solved": self.solved,
            "wall_seconds": round(self.wall_seconds, 6),
            "hit_rate": round(self.hit_rate, 4),
            "throughput": round(self.throughput, 2),
            "engine_seconds": {
                e: round(s, 6) for e, s in sorted(self.engine_seconds.items())
            },
        }


def _solve_job(
    job: tuple[str, int, tuple[tuple[int, int], ...], tuple[int, ...], str]
) -> tuple[str, tuple[int, ...], int, str, bool, float]:
    """Pool worker: solve one canonical instance from plain picklable data.

    Returns ``(key, labels, span, engine, exact, seconds)`` with labels in
    canonical coordinates (the job's graph *is* the canonical graph).
    """
    key, n, edges, p, engine = job
    t0 = time.perf_counter()
    result = solve_labeling(Graph(n, edges), LpSpec(p), engine=engine)
    seconds = time.perf_counter() - t0
    return (
        key,
        result.labeling.labels,
        result.span,
        result.engine,
        result.exact,
        seconds,
    )


class BatchSolver:
    """Deduplicating, cache-backed, process-parallel request solver.

    Parameters
    ----------
    cache:
        Shared result cache (:class:`ResultCache` or
        :class:`~repro.service.shard.ShardedResultCache`); ``None``
        disables memoization entirely (every request is solved — the
        baseline the benchmarks compare against).
    workers:
        Process-pool width for cache misses (``None`` = library default).
    small_n / chunk:
        Sharding policy: instances with ``n <= small_n`` are chunked
        ``chunk`` per pool task, larger ones are scheduled individually.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        workers: int | None = None,
        small_n: int = SMALL_INSTANCE_N,
        chunk: int = SMALL_CHUNK,
    ) -> None:
        """Bind the cache, pool width and small-instance chunking policy."""
        self.cache = cache
        self.workers = workers
        self.small_n = small_n
        self.chunk = chunk

    # ------------------------------------------------------------------
    def _solve_inline(
        self,
        job: tuple[str, int, tuple[tuple[int, int], ...], tuple[int, ...], str],
        form: CanonicalForm,
        request: SolveRequest,
    ) -> tuple[str, tuple[int, ...], int, str, bool, float]:
        """Serial-path worker: like :func:`_solve_job`, but zero extra APSP.

        Builds the canonical graph through :func:`canonical_instance`, whose
        pre-seeded distance oracle lets validation, reduction and verify all
        reuse the matrix the request's canonical form already computed.
        """
        key, _n, _edges, p, engine = job
        canonical = canonical_instance(form, request.graph)
        t0 = time.perf_counter()
        result = solve_labeling(canonical, LpSpec(p), engine=engine)
        seconds = time.perf_counter() - t0
        return (
            key,
            result.labeling.labels,
            result.span,
            result.engine,
            result.exact,
            seconds,
        )

    # ------------------------------------------------------------------
    def _solve_approx_inline(
        self, form: CanonicalForm, request: SolveRequest
    ) -> tuple[CachedSolve, float]:
        """Degraded-tier solve in canonical coordinates, with certificate.

        Always inline — the one-pass simplify/select solver is cheap enough
        that a process hop would dominate it.  Like :meth:`_solve_inline`,
        the canonical graph's distance oracle is pre-seeded from the
        request's, so no extra APSP runs.
        """
        canonical = canonical_instance(form, request.graph)
        res = approx_labeling(canonical, request.spec)
        entry = CachedSolve(
            labels=res.labeling.labels,
            span=res.span,
            engine=APPROX_ENGINE,
            exact=False,
            gap=res.gap,
        )
        return entry, res.seconds

    # ------------------------------------------------------------------
    def solve_batch(
        self, requests: list[SolveRequest]
    ) -> tuple[list[ServiceResult], BatchReport]:
        """Answer every request; returns results in request order + report."""
        t0 = time.perf_counter()
        forms = [
            canonical_form(r.graph, r.spec, analysis=r.analysis)
            for r in requests
        ]
        keys = [
            _composed_key(form, req) for form, req in zip(forms, requests)
        ]

        # Pass 1: split requests into cache hits, job owners and duplicates.
        results: list[ServiceResult | None] = [None] * len(requests)
        owners: dict[str, int] = {}       # key -> request index that solves it
        duplicates: list[int] = []
        cache_hits = 0
        for i, (req, form, key) in enumerate(zip(requests, forms, keys)):
            if key in owners:
                duplicates.append(i)
                continue
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is not None:
                cache_hits += 1
                results[i] = _answer(req, form, key, entry, cached=True)
            else:
                owners[key] = i

        # Pass 2: solve each owned job once, in canonical coordinates.  Jobs
        # that would run serially anyway (one job, or a one-worker pool) are
        # solved inline with the canonical graph's distance oracle seeded
        # from the request's — the APSP paid for during key derivation is
        # the only one the whole submit→solve→verify path ever runs.
        jobs = []
        approx_owned: list[tuple[str, int]] = []
        for key, i in owners.items():
            if _resolved_tier(requests[i]) == "approx":
                approx_owned.append((key, i))
                continue
            form = forms[i]
            jobs.append(
                (key, form.n, form.edges, requests[i].spec.p, requests[i].engine)
            )
        small = [j for j in jobs if j[1] <= self.small_n]
        large = [j for j in jobs if j[1] > self.small_n]
        outcomes = []
        for job_list, chunksize in ((small, self.chunk), (large, 1)):
            if not job_list:
                continue
            if runs_serially(self.workers, len(job_list)):
                for job in job_list:
                    i = owners[job[0]]
                    outcomes.append(
                        self._solve_inline(job, forms[i], requests[i])
                    )
            else:
                outcomes += parallel_map(
                    _solve_job, job_list, workers=self.workers, chunksize=chunksize
                )

        engine_seconds: dict[str, float] = {}
        for key, i in approx_owned:
            entry, seconds = self._solve_approx_inline(forms[i], requests[i])
            if self.cache is not None:
                self.cache.put(key, entry)
            results[i] = _answer(
                requests[i], forms[i], key, entry, cached=False, seconds=seconds
            )
            engine_seconds[APPROX_ENGINE] = (
                engine_seconds.get(APPROX_ENGINE, 0.0) + seconds
            )
        for key, labels, span, engine, exact, seconds in outcomes:
            entry = CachedSolve(
                labels=labels, span=span, engine=engine, exact=exact
            )
            if self.cache is not None:
                self.cache.put(key, entry)
            i = owners[key]
            results[i] = _answer(
                requests[i], forms[i], key, entry, cached=False, seconds=seconds
            )
            engine_seconds[engine] = engine_seconds.get(engine, 0.0) + seconds

        # Pass 3: duplicates resolve through the now-warm cache (counted as
        # hits there, which is what they are from the service's viewpoint).
        for i in duplicates:
            entry = (
                self.cache.get(keys[i])
                if self.cache is not None
                else None
            )
            if entry is None:
                # cache disabled (or entry evicted mid-batch): reuse the
                # owner's in-batch answer, translated to this request's order
                owner = results[owners[keys[i]]]
                assert owner is not None
                entry = CachedSolve(
                    labels=forms[owners[keys[i]]].to_canonical_labels(
                        owner.labeling.labels
                    ),
                    span=owner.span,
                    engine=owner.engine,
                    exact=owner.exact,
                    gap=owner.gap,
                )
            results[i] = _answer(requests[i], forms[i], keys[i], entry, cached=True)

        wall = time.perf_counter() - t0
        report = BatchReport(
            total=len(requests),
            unique=len(set(keys)),
            cache_hits=cache_hits,
            deduped=len(duplicates),
            solved=len(jobs) + len(approx_owned),
            wall_seconds=wall,
            engine_seconds=engine_seconds,
        )
        final = [r for r in results if r is not None]
        assert len(final) == len(requests), "every request must be answered"
        return final, report


def _resolved_tier(req: SolveRequest, tier: str | None = None) -> str:
    """The quality tier a non-routed path answers with.

    ``tier`` (the router's decision) wins when given; otherwise an explicit
    ``"approx"`` request is honoured and ``"auto"`` degrades to ``"exact"``
    — only a :class:`~repro.service.server.QosRouter` ever downgrades an
    ``auto`` request, never a plain service.
    """
    if tier is not None:
        return tier
    return "approx" if req.tier == "approx" else "exact"


def _composed_key(
    form: CanonicalForm, req: SolveRequest, tier: str | None = None
) -> str:
    """Cache key: canonical (graph, spec) hash plus the requested engine.

    The engine is part of the key because heuristic engines answer with
    different spans; a request for ``held_karp`` must never be served a
    cached ``two_opt`` labeling.  ``auto`` is deterministic in the canonical
    graph, so it composes consistently.  Approx-tier answers live under
    their own suffix for the same reason — an exact request must never be
    served a degraded labeling, nor the reverse (no engine is named
    ``approx``, so the suffix cannot collide).
    """
    if _resolved_tier(req, tier) == "approx":
        return f"{form.key}:approx"
    return f"{form.key}:{req.engine}"


def _answer(
    req: SolveRequest,
    form: CanonicalForm,
    key: str,
    entry: CachedSolve,
    cached: bool,
    seconds: float = 0.0,
) -> ServiceResult:
    """Translate a canonical-coordinate entry into the request's own order."""
    labeling = Labeling(form.from_canonical_labels(entry.labels))
    return ServiceResult(
        labeling=labeling,
        span=entry.span,
        engine=entry.engine,
        exact=entry.exact,
        cached=cached,
        key=key,
        seconds=seconds,
        tag=req.tag,
        tier="approx" if entry.gap is not None else "exact",
        gap=entry.gap,
    )
