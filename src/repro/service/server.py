"""Concurrent serving front-end: bounded queue, worker pool, in-flight dedup.

:class:`~repro.service.api.LabelingService` is a call-and-wait facade — one
request in, one answer out, the caller's thread does the work.  This module
adds the serving layer the ROADMAP's traffic target needs:

- **Bounded submission queue** — :meth:`ConcurrentLabelingService.submit`
  enqueues work and returns a :class:`~concurrent.futures.Future`
  immediately.  Past the high-water mark the submission *blocks* (default)
  or fails fast with :class:`~repro.errors.ServiceOverloadedError`
  (``block=False``), so a burst degrades into latency or explicit rejection
  instead of unbounded memory growth.
- **Worker pool** — ``workers`` threads drain the queue.  Cold solves are
  CPU-bound Python, so when the host has more than one core the workers
  offload them to a shared process pool (one process per worker) and the
  pool width is the real parallelism; on a single-core host they solve
  inline and the threads still provide queuing, coalescing and
  backpressure.
- **Dedup in flight** — concurrent requests with the same canonical key
  coalesce onto one internal solve; every caller still receives its *own*
  future whose result is translated through its own vertex order (two
  isomorphic requests share the solve, never the coordinates).
- **Sharded cache fast path** — submissions probe the
  :class:`~repro.service.shard.ShardedResultCache` before queueing, so a
  warm request costs one shard lock and never touches the queue.
- **Graceful drain/shutdown** — :meth:`shutdown` stops intake, then either
  drains the queue (``wait=True``) or cancels everything still queued
  (``wait=False``); in-progress solves always run to completion so no
  future is left forever pending.

>>> from repro.graphs.generators import cycle_graph
>>> from repro.labeling.spec import L21
>>> with ConcurrentLabelingService(workers=2) as server:
...     span = server.submit(cycle_graph(5), L21, engine="held_karp").result().span
>>> span
4
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.graphs.analysis import GraphAnalysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec
from repro.service.api import LabelingService
from repro.service.batch import (
    SolveRequest,
    _answer,
    _composed_key,
    _solve_job,
)
from repro.service.cache import CachedSolve
from repro.service.canonical import CanonicalForm, canonical_form

#: Default submission-queue high-water mark.
DEFAULT_QUEUE_SIZE = 64

#: Sentinel that tells a worker thread to exit.
_STOP = object()


@dataclass
class ServerStats:
    """Lifetime counters for one :class:`ConcurrentLabelingService`.

    ``hits`` counts submissions answered from the warm cache (either at the
    submit-side fast path or by a worker), ``coalesced`` counts submissions
    that attached to an identical in-flight solve, ``solved`` counts actual
    engine runs, ``errors`` failed solves.  Once the service has drained,
    every accepted request resolved exactly once — ``completed ==
    submitted - rejected - cancelled`` — and, absent errors,
    ``hits + coalesced + solved == completed``.
    """

    submitted: int = 0
    completed: int = 0
    hits: int = 0
    coalesced: int = 0
    solved: int = 0
    rejected: int = 0
    cancelled: int = 0
    errors: int = 0
    #: Highest queue depth observed at submission time.
    high_water: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accepted submissions answered **without** a solve.

        Counts both cache hits and in-flight coalescing — from the
        client's viewpoint the two are the same thing (no engine ran for
        this request) — so the rate is a deterministic function of the
        request stream, not of scheduling luck.
        """
        accepted = self.submitted - self.rejected
        return (self.hits + self.coalesced) / accepted if accepted else 0.0

    def to_json(self) -> dict:
        """JSON counters, the shape the perf trajectory records."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "solved": self.solved,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "high_water": self.high_water,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Job:
    """One queued unit of work: solve ``request`` and publish under ``key``."""

    key: str
    request: SolveRequest
    form: CanonicalForm
    #: Internal future resolving to ``(CachedSolve, cached, seconds)``;
    #: every public future for this key chains off it.
    internal: Future = field(default_factory=Future)


class ConcurrentLabelingService:
    """Thread-pool serving front-end over the sharded caching service.

    Parameters
    ----------
    service:
        The underlying :class:`LabelingService` (owns the cache and the
        solve policy).  Built with a sharded cache when omitted.
    workers:
        Worker-thread count.  Also the process-pool width when cold solves
        are offloaded (see ``offload``).
    queue_size:
        Submission-queue high-water mark (backpressure threshold).
    block:
        Default backpressure behaviour for :meth:`submit`: ``True`` blocks
        until queue space frees, ``False`` raises
        :class:`ServiceOverloadedError`.  Overridable per call.
    offload:
        ``True`` ships cold solves to a process pool (real parallelism for
        CPU-bound engines), ``False`` solves inline on the worker thread.
        ``None`` (default) auto-detects: offload only when ``workers > 1``
        *and* the host has more than one CPU — on a single core the pool
        would add pickling overhead and parallelize nothing.
    """

    def __init__(
        self,
        service: LabelingService | None = None,
        workers: int = 4,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        block: bool = True,
        offload: bool | None = None,
        cache_capacity: int = 4096,
        cache_shards: int | None = None,
    ) -> None:
        """Build the queue, cache-backed service, and start the workers."""
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ReproError(f"queue_size must be >= 1, got {queue_size}")
        if service is None:
            kwargs = {} if cache_shards is None else {"cache_shards": cache_shards}
            service = LabelingService(cache_capacity=cache_capacity, **kwargs)
        self.service = service
        self.workers = workers
        self.block = block
        self.stats = ServerStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()
        #: Signalled whenever an owner submission finishes its queue.put;
        #: shutdown waits on it so a put racing the close cannot land a job
        #: after the final cancellation sweep (see :meth:`shutdown`).
        self._settled = threading.Condition(self._lock)
        self._submitting = 0
        self._closed = False
        if offload is None:
            offload = workers > 1 and (os.cpu_count() or 1) > 1
        self._pool = (
            ProcessPoolExecutor(max_workers=workers) if offload else None
        )
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"labeling-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    @property
    def cache(self):
        """The underlying (sharded) result cache."""
        return self.service.cache

    def queue_depth(self) -> int:
        """Requests currently queued (approximate, unlocked read)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Graph,
        spec: LpSpec,
        engine: str = "auto",
        tag: str | None = None,
        analysis: GraphAnalysis | None = None,
        block: bool | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one request; returns a future of its ``ServiceResult``.

        The canonical key is derived on the calling thread (``analysis``
        forwards a pre-computed oracle exactly like
        :meth:`LabelingService.submit`); everything after that happens on
        the worker pool.  Identical in-flight requests coalesce onto one
        solve, but each caller's future resolves in its *own* vertex
        order.

        Backpressure: with ``block`` (default: the constructor setting) a
        full queue blocks up to ``timeout`` seconds, then rejects;
        ``block=False`` rejects immediately with
        :class:`ServiceOverloadedError`.
        """
        request = SolveRequest(
            graph=graph, spec=spec, engine=engine, tag=tag, analysis=analysis
        )
        form = canonical_form(graph, spec, analysis=analysis)
        key = _composed_key(form, request)
        block = self.block if block is None else block

        # Fast path: a warm cache answers without touching the queue.  The
        # probe happens outside the service lock on purpose — it costs one
        # shard lock, which is the scalable part of the design.
        entry = self.cache.get(key)
        if entry is not None:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError(
                        "service is shut down; no new submissions"
                    )
                self.stats.submitted += 1
                self.stats.hits += 1
                self.stats.completed += 1
            done: Future = Future()
            done.set_result(_answer(request, form, key, entry, cached=True))
            return done

        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "service is shut down; no new submissions"
                )
            self.stats.submitted += 1
            depth = self._queue.qsize()
            if depth > self.stats.high_water:
                self.stats.high_water = depth
            internal = self._inflight.get(key)
            owner = internal is None
            if owner:
                job = _Job(key=key, request=request, form=form)
                internal = job.internal
                self._inflight[key] = internal
                self._submitting += 1
            else:
                self.stats.coalesced += 1

        if owner:
            try:
                self._queue.put(job, block=block, timeout=timeout)
            except queue.Full:
                overloaded = ServiceOverloadedError(
                    f"submission queue at high-water mark "
                    f"({self._queue.maxsize}); request rejected"
                )
                with self._lock:
                    self._inflight.pop(key, None)
                    self.stats.rejected += 1
                # followers that coalesced in the meantime must observe the
                # rejection, not an indistinguishable cancellation; the
                # owner itself gets the synchronous raise (and no future)
                internal.set_exception(overloaded)
                raise overloaded from None
            finally:
                with self._settled:
                    self._submitting -= 1
                    self._settled.notify_all()
        public: Future = Future()
        internal.add_done_callback(
            lambda f: self._deliver(
                f, public, request, form, key, follower=not owner
            )
        )
        return public

    def solve(
        self,
        graph: Graph,
        spec: LpSpec,
        engine: str = "auto",
        tag: str | None = None,
        analysis: GraphAnalysis | None = None,
    ):
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(
            graph, spec, engine=engine, tag=tag, analysis=analysis
        ).result()

    # ------------------------------------------------------------------
    def _deliver(
        self,
        internal: Future,
        public: Future,
        request: SolveRequest,
        form: CanonicalForm,
        key: str,
        follower: bool = False,
    ) -> None:
        """Translate the internal outcome into one caller's public future.

        A ``follower`` (a request that coalesced onto another's in-flight
        solve) reports ``cached=True`` with zero seconds — the same
        accounting :class:`~repro.service.batch.BatchSolver` uses for
        in-batch duplicates: no engine ran *for this request*.
        """
        try:
            entry, cached, seconds = internal.result()
            if follower:
                cached, seconds = True, 0.0
        except CancelledError:
            public.cancel()
            return
        except BaseException as exc:
            if not public.set_running_or_notify_cancel():
                return
            public.set_exception(exc)
            with self._lock:
                self.stats.completed += 1
            return
        if not public.set_running_or_notify_cancel():
            return  # caller cancelled while we solved; nothing to deliver
        public.set_result(
            _answer(request, form, key, entry, cached=cached, seconds=seconds)
        )
        with self._lock:
            self.stats.completed += 1

    def _worker(self) -> None:
        """Worker loop: drain jobs until the stop sentinel arrives."""
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._process(item)
            finally:
                self._queue.task_done()

    def _process(self, job: _Job) -> None:
        """Answer one queued job: re-probe the cache, else solve and publish."""
        # Re-probe: the entry may have been cached between this job's
        # submission and now (an identical earlier job finished).  Without
        # this check the submit-probe/finish race could double-solve.
        entry = self.cache.peek(job.key)
        if entry is not None:
            self._finish(job, entry, cached=True, seconds=0.0)
            return
        plain = (
            job.key,
            job.form.n,
            job.form.edges,
            job.request.spec.p,
            job.request.engine,
        )
        try:
            if self._pool is not None:
                _key, labels, span, engine, exact, seconds = self._pool.submit(
                    _solve_job, plain
                ).result()
            else:
                _key, labels, span, engine, exact, seconds = (
                    self.service.solver._solve_inline(
                        plain, job.form, job.request
                    )
                )
        except BaseException as exc:  # engine failures must reach the waiters
            with self._lock:
                self._inflight.pop(job.key, None)
                self.stats.errors += 1
            job.internal.set_exception(exc)
            return
        entry = CachedSolve(labels=labels, span=span, engine=engine, exact=exact)
        self.cache.put(job.key, entry)
        self._finish(job, entry, cached=False, seconds=seconds)

    def _finish(
        self, job: _Job, entry: CachedSolve, cached: bool, seconds: float
    ) -> None:
        """Publish a solved/cached entry and retire the in-flight record."""
        with self._lock:
            self._inflight.pop(job.key, None)
            if cached:
                self.stats.hits += 1
            else:
                self.stats.solved += 1
        job.internal.set_result((entry, cached, seconds))

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every queued submission has been answered.

        Intake stays open — this is a checkpoint, not a shutdown.
        """
        self._queue.join()

    def _cancel_queued(self) -> None:
        """Drain the queue, cancelling every job still in it."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            try:
                if item is _STOP:
                    continue
                with self._lock:
                    self._inflight.pop(item.key, None)
                    self.stats.cancelled += 1
                item.internal.cancel()
            finally:
                self._queue.task_done()

    def shutdown(self, wait: bool = True) -> None:
        """Stop intake and retire the workers.

        ``wait=True`` drains the queue first (every accepted future
        resolves); ``wait=False`` cancels everything still queued — their
        futures (and any coalesced onto them) end :class:`CancelledError`
        — while the solve currently running on each worker completes.
        Idempotent.
        """
        with self._lock:
            if self._closed and not self._threads:
                return
            self._closed = True
        if not wait:
            self._cancel_queued()
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join()
        self._threads = []
        # A submission that passed the closed check just before it flipped
        # may still be inside queue.put; alternate cancelling what landed
        # (which also frees queue space a blocked put may be waiting for)
        # with waiting for the stragglers to settle — without this, a
        # racing submit's future could hang forever.
        while True:
            self._cancel_queued()
            with self._settled:
                if not self._submitting:
                    break
                self._settled.wait(timeout=0.05)
        self._cancel_queued()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ConcurrentLabelingService":
        """Context manager: the running service itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Graceful shutdown (drain, then stop the workers)."""
        self.shutdown(wait=True)
