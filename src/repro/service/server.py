"""Concurrent serving front-end: bounded queue, worker pool, in-flight dedup.

:class:`~repro.service.api.LabelingService` is a call-and-wait facade — one
request in, one answer out, the caller's thread does the work.  This module
adds the serving layer the ROADMAP's traffic target needs:

- **Bounded submission queue** — :meth:`ConcurrentLabelingService.submit`
  enqueues work and returns a :class:`~concurrent.futures.Future`
  immediately.  Past the high-water mark the submission *blocks* (default)
  or fails fast with :class:`~repro.errors.ServiceOverloadedError`
  (``block=False``), so a burst degrades into latency or explicit rejection
  instead of unbounded memory growth.
- **Worker pool** — ``workers`` threads drain the queue.  Cold solves are
  CPU-bound Python, so when the host has more than one effective core the
  workers offload them to a persistent :class:`ShmWorkerPool` (one
  long-lived process per worker) and the pool width is the real
  parallelism; on a single-core host they solve inline and the threads
  still provide queuing, coalescing and backpressure.  Each canonical
  graph's distance matrix and CSR adjacency are published **once** into a
  :class:`ShmArena` shared-memory segment; after that every request
  crosses the process boundary as a ``(canonical key, p, engine)`` tuple
  and the worker solves on zero-copy numpy views — no per-request graph
  pickling, no per-request pool spin-up.
- **Dedup in flight** — concurrent requests with the same canonical key
  coalesce onto one internal solve; every caller still receives its *own*
  future whose result is translated through its own vertex order (two
  isomorphic requests share the solve, never the coordinates).
- **Sharded cache fast path** — submissions probe the
  :class:`~repro.service.shard.ShardedResultCache` before queueing, so a
  warm request costs one shard lock and never touches the queue.
- **Graceful drain/shutdown** — :meth:`shutdown` stops intake, then either
  drains the queue (``wait=True``) or cancels everything still queued
  (``wait=False``); in-progress solves always run to completion so no
  future is left forever pending.

>>> from repro.graphs.generators import cycle_graph
>>> from repro.labeling.spec import L21
>>> from repro.service.protocol import SolveRequest
>>> with ConcurrentLabelingService(workers=2) as server:
...     req = SolveRequest(cycle_graph(5), L21, engine="held_karp")
...     span = server.submit(req).result().span
>>> span
4
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExpiredError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.graphs.analysis import GraphAnalysis, export_buffers, get_analysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER, SpanContext
from repro.parallel.pool import effective_cpu_count
from repro.parallel.shm_pool import ShmArena, ShmDescriptor, ShmWorkerPool
from repro.service.api import LabelingService
from repro.service.batch import _answer, _composed_key
from repro.service.protocol import SolveRequest, as_request
from repro.service.cache import CachedSolve
from repro.service.canonical import (
    CanonicalForm,
    canonical_form,
    canonical_instance,
)

#: Default submission-queue high-water mark.
DEFAULT_QUEUE_SIZE = 64

#: Sentinel that tells a worker thread to exit.
_STOP = object()

#: Registry counter families mirroring every :class:`ServerStats` field;
#: the stats object increments both under its single lock, so the server's
#: own counters and the metrics exposition can never disagree.
_STAT_COUNTERS = {
    name: REGISTRY.counter(f"repro_server_{name}_total")
    for name in (
        "submitted", "completed", "hits", "coalesced",
        "solved", "rejected", "cancelled", "errors",
    )
}
for _family in _STAT_COUNTERS.values():
    _family.labels()  # materialize: the exposition shows 0, not nothing
del _family
_HIGH_WATER_GAUGE = REGISTRY.gauge("repro_queue_high_water")
_HIGH_WATER_GAUGE.labels()

#: Per-tier router/latency families, children materialized at import so the
#: exposition shows zeroed series for both tiers before any traffic.
_ROUTER_TIER_COUNTERS = {
    tier: REGISTRY.counter("repro_router_requests_total").labels(tier=tier)
    for tier in ("exact", "approx")
}
_ROUTER_DEGRADED = REGISTRY.counter("repro_router_degraded_total")
_ROUTER_DEGRADED.labels()
_ROUTER_EXPIRED = REGISTRY.counter("repro_router_expired_total")
_ROUTER_EXPIRED.labels()
_TIER_SECONDS = {
    tier: REGISTRY.histogram("repro_tier_request_seconds").labels(tier=tier)
    for tier in ("exact", "approx")
}


@dataclass
class QosRouter:
    """Per-request quality-of-service tier selection under pressure.

    The router turns two-valued backpressure (block / 429) into a graceful
    ladder: ``exact`` while the queue is shallow, ``approx`` as pressure
    rises (or the instance is too large, or the deadline too tight, for an
    exact solve to make sense), and the queue's existing high-water
    rejection stays the 429 of last resort.  Explicit ``tier="exact"`` /
    ``tier="approx"`` requests are always honoured — only ``auto`` is
    routed.

    Deadline-expired work is dropped *before* a solve starts
    (:meth:`note_expired`); the drop is counted, never recorded as a server
    error.
    """

    #: The serving queue's high-water mark (the 429 threshold).
    queue_size: int
    #: Fraction of ``queue_size`` past which ``auto`` degrades to approx.
    approx_pressure: float = 0.5
    #: ``auto`` instances above this vertex count always go approx — an
    #: exact engine run on them would monopolize a worker.
    large_n: int = 256
    #: ``auto`` requests with less remaining budget than this go approx.
    min_exact_deadline_ms: int = 250
    exact: int = 0
    approx: int = 0
    #: ``auto`` requests downgraded to approx (subset of ``approx``).
    degraded: int = 0
    #: Requests dropped because their deadline expired before solving.
    expired: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def approx_depth(self) -> int:
        """Queue depth at which ``auto`` requests start degrading."""
        return max(1, int(self.approx_pressure * self.queue_size))

    def route(self, request: SolveRequest, queue_depth: int) -> str:
        """Pick the answering tier for one request (and count the decision)."""
        if request.tier in ("exact", "approx"):
            tier, downgraded = request.tier, False
        else:
            downgraded = (
                queue_depth >= self.approx_depth
                or request.graph.n > self.large_n
                or (
                    request.deadline_ms is not None
                    and request.deadline_ms < self.min_exact_deadline_ms
                )
            )
            tier = "approx" if downgraded else "exact"
        with self._lock:
            setattr(self, tier, getattr(self, tier) + 1)
            if downgraded:
                self.degraded += 1
        _ROUTER_TIER_COUNTERS[tier].inc()
        if downgraded:
            _ROUTER_DEGRADED.inc()
        return tier

    def note_expired(self) -> None:
        """Count one deadline-expired drop."""
        with self._lock:
            self.expired += 1
        _ROUTER_EXPIRED.inc()

    def to_json(self) -> dict:
        """Routing counters + thresholds, the shape ``/stats`` exposes."""
        with self._lock:
            return {
                "exact": self.exact,
                "approx": self.approx,
                "degraded": self.degraded,
                "expired": self.expired,
                "approx_depth": self.approx_depth,
                "large_n": self.large_n,
                "min_exact_deadline_ms": self.min_exact_deadline_ms,
            }


@dataclass
class ServerStats:
    """Lifetime counters for one :class:`ConcurrentLabelingService`.

    ``hits`` counts submissions answered from the warm cache (either at the
    submit-side fast path or by a worker), ``coalesced`` counts submissions
    that attached to an identical in-flight solve, ``solved`` counts actual
    engine runs, ``errors`` failed solves.  Once the service has drained,
    every accepted request resolved exactly once — ``completed ==
    submitted - rejected - cancelled`` — and, absent errors,
    ``hits + coalesced + solved == completed``.

    All mutation goes through :meth:`add` / :meth:`observe_depth`, which
    take the stats' single internal lock; :meth:`snapshot` reads every
    field under that same lock, so derived values (``hit_rate``,
    :meth:`to_json`) are computed from one consistent view — never from a
    torn read interleaved with a concurrent update.
    """

    submitted: int = 0
    completed: int = 0
    hits: int = 0
    coalesced: int = 0
    solved: int = 0
    rejected: int = 0
    cancelled: int = 0
    errors: int = 0
    #: Highest queue depth observed at submission time.
    high_water: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    #: The counter fields :meth:`add` accepts (everything but high_water).
    _FIELDS = (
        "submitted", "completed", "hits", "coalesced",
        "solved", "rejected", "cancelled", "errors",
    )

    def add(self, **deltas: int) -> None:
        """Atomically bump counter fields (and their registry mirrors).

        ``stats.add(hits=1, completed=1)`` is one critical section, so a
        concurrent :meth:`snapshot` sees either both increments or
        neither.
        """
        unknown = [k for k in deltas if k not in self._FIELDS]
        if unknown:
            raise ReproError(f"unknown ServerStats fields: {unknown}")
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)
        for name, delta in deltas.items():
            _STAT_COUNTERS[name].inc(delta)

    def observe_depth(self, depth: int) -> None:
        """Fold one observed queue depth into the high-water mark."""
        with self._lock:
            if depth > self.high_water:
                self.high_water = depth
                _HIGH_WATER_GAUGE.set(self.high_water)

    def snapshot(self) -> dict:
        """Every field read atomically under the single stats lock.

        The returned dict includes the derived ``hit_rate``, computed from
        the same consistent view of the fields.
        """
        with self._lock:
            snap = {name: getattr(self, name) for name in self._FIELDS}
            snap["high_water"] = self.high_water
        accepted = snap["submitted"] - snap["rejected"]
        snap["hit_rate"] = (
            (snap["hits"] + snap["coalesced"]) / accepted if accepted else 0.0
        )
        return snap

    @property
    def hit_rate(self) -> float:
        """Fraction of accepted submissions answered **without** a solve.

        Counts both cache hits and in-flight coalescing — from the
        client's viewpoint the two are the same thing (no engine ran for
        this request) — so the rate is a deterministic function of the
        request stream, not of scheduling luck.  Computed from one atomic
        :meth:`snapshot`.
        """
        return self.snapshot()["hit_rate"]

    def to_json(self) -> dict:
        """JSON counters, the shape the perf trajectory records.

        Serialized from one atomic :meth:`snapshot`, so the emitted
        numbers are mutually consistent even under concurrent updates.
        """
        snap = self.snapshot()
        snap["hit_rate"] = round(snap["hit_rate"], 4)
        return snap


@dataclass
class _Job:
    """One queued unit of work: solve ``request`` and publish under ``key``."""

    key: str
    request: SolveRequest
    form: CanonicalForm
    #: Internal future resolving to ``(CachedSolve, cached, seconds)``;
    #: every public future for this key chains off it.
    internal: Future = field(default_factory=Future)
    #: Trace context captured on the submitting thread; the worker (and
    #: any offload process) parents its spans under it.
    ctx: SpanContext | None = None
    #: ``perf_counter`` timestamp taken just before ``queue.put`` — the
    #: queue-wait histogram measures from here to worker pickup.
    enqueued: float = 0.0
    #: Tier the router picked for this job (``"exact"`` or ``"approx"``).
    tier: str = "exact"
    #: Absolute ``perf_counter`` deadline; the worker drops the job unsolved
    #: once it passes (``None`` = no deadline).
    deadline: float | None = None


class ConcurrentLabelingService:
    """Thread-pool serving front-end over the sharded caching service.

    Parameters
    ----------
    service:
        The underlying :class:`LabelingService` (owns the cache and the
        solve policy).  Built with a sharded cache when omitted.
    workers:
        Worker-thread count.  Also the persistent worker-pool width when
        cold solves are offloaded (see ``offload``).
    queue_size:
        Submission-queue high-water mark (backpressure threshold).
    block:
        Default backpressure behaviour for :meth:`submit`: ``True`` blocks
        until queue space frees, ``False`` raises
        :class:`ServiceOverloadedError`.  Overridable per call.
    offload:
        ``True`` ships cold solves to a persistent
        :class:`~repro.parallel.shm_pool.ShmWorkerPool` (real parallelism
        for CPU-bound engines, shared-memory graph buffers), ``False``
        solves inline on the worker thread.  ``None`` (default)
        auto-detects: offload only when ``workers > 1`` *and* the process
        may run on more than one CPU (:func:`effective_cpu_count`, which
        respects container/affinity masks) — on a single core the pool
        would add process-hop overhead and parallelize nothing.
    start_method:
        Multiprocessing start method for the pool workers (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    """

    def __init__(
        self,
        service: LabelingService | None = None,
        workers: int = 4,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        block: bool = True,
        offload: bool | None = None,
        cache_capacity: int = 4096,
        cache_shards: int | None = None,
        start_method: str | None = None,
        router: QosRouter | None = None,
    ) -> None:
        """Build the queue, cache-backed service, and start the workers."""
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ReproError(f"queue_size must be >= 1, got {queue_size}")
        if service is None:
            kwargs = {} if cache_shards is None else {"cache_shards": cache_shards}
            service = LabelingService(cache_capacity=cache_capacity, **kwargs)
        self.service = service
        #: Tier selection policy; pass a pre-configured :class:`QosRouter`
        #: to tune the degradation thresholds.
        self.router = router if router is not None else QosRouter(queue_size)
        self.workers = workers
        self.block = block
        self.stats = ServerStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()
        #: Signalled whenever an owner submission finishes its queue.put;
        #: shutdown waits on it so a put racing the close cannot land a job
        #: after the final cancellation sweep (see :meth:`shutdown`).
        self._settled = threading.Condition(self._lock)
        self._submitting = 0
        self._closed = False
        if offload is None:
            offload = workers > 1 and effective_cpu_count() > 1
        # The pool forks/spawns *before* the worker threads start, so the
        # child processes never inherit a half-started thread's state.
        if offload:
            self._arena: ShmArena | None = ShmArena()
            self._pool: ShmWorkerPool | None = ShmWorkerPool(
                workers, start_method=start_method
            )
        else:
            self._arena = None
            self._pool = None
        # Registry surface: latency histograms are shared process-wide;
        # the queue-depth gauge samples this instance weakly (most recent
        # server owns it); per-worker busy/idle gauges measure the GIL
        # ceiling directly (utilization = busy / (busy + idle)).
        self._m_request = REGISTRY.histogram("repro_request_seconds")
        self._m_queue_wait = REGISTRY.histogram("repro_request_queue_seconds")
        self._m_solve = REGISTRY.histogram("repro_solve_seconds")
        for family in (self._m_request, self._m_queue_wait, self._m_solve):
            family.labels()  # materialize: expose zeroed buckets immediately
        REGISTRY.gauge("repro_queue_depth").set_function(
            lambda server: server.queue_depth(), owner=self
        )
        self._worker_times = [[0.0, 0.0] for _ in range(workers)]  # busy, idle
        self._m_worker_busy = [
            REGISTRY.gauge("repro_worker_busy_seconds").labels(worker=str(i))
            for i in range(workers)
        ]
        self._m_worker_idle = [
            REGISTRY.gauge("repro_worker_idle_seconds").labels(worker=str(i))
            for i in range(workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(i,),
                name=f"labeling-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    @property
    def cache(self):
        """The underlying (sharded) result cache."""
        return self.service.cache

    def queue_depth(self) -> int:
        """Requests currently queued (approximate, unlocked read)."""
        return self._queue.qsize()

    def worker_utilization(self) -> list[dict]:
        """Per-worker busy/idle accounting, in worker order.

        ``utilization = busy / (busy + idle)`` is the direct measurement
        of thread-scaling headroom: workers near 1.0 that still deliver no
        throughput gain are serialized on the GIL, not starved of work.
        Reading is unlocked (each slot is written only by its own worker).
        """
        out = []
        for busy, idle in self._worker_times:
            total = busy + idle
            out.append(
                {
                    "busy_seconds": round(busy, 6),
                    "idle_seconds": round(idle, 6),
                    "utilization": round(busy / total, 4) if total else 0.0,
                }
            )
        return out

    # ------------------------------------------------------------------
    def submit(
        self,
        request: SolveRequest | Graph,
        spec: LpSpec | None = None,
        engine: str = "auto",
        tag: str | None = None,
        analysis: GraphAnalysis | None = None,
        block: bool | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one request; returns a future of its ``SolveResponse``.

        Takes one :class:`SolveRequest` (the legacy ``submit(graph, spec,
        ...)`` signature still works behind a :class:`DeprecationWarning`).
        The canonical key is derived on the calling thread (the request's
        ``analysis`` forwards a pre-computed oracle exactly like
        :meth:`LabelingService.submit`); everything after that happens on
        the worker pool.  Identical in-flight requests coalesce onto one
        solve, but each caller's future resolves in its *own* vertex
        order.

        Backpressure: with ``block`` (default: the constructor setting) a
        full queue blocks up to ``timeout`` seconds, then rejects;
        ``block=False`` rejects immediately with
        :class:`ServiceOverloadedError`.
        """
        t_submit = time.perf_counter()
        request = as_request(
            request, spec, engine=engine, tag=tag, analysis=analysis
        )
        tier = self.router.route(request, self._queue.qsize())
        deadline = (
            t_submit + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        form = canonical_form(
            request.graph, request.spec, analysis=request.analysis
        )
        key = _composed_key(form, request, tier=tier)
        block = self.block if block is None else block

        # Fast path: a warm cache answers without touching the queue.  The
        # probe happens outside the service lock on purpose — it costs one
        # shard lock, which is the scalable part of the design.
        entry = self.cache.get(key)
        if entry is not None:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError(
                        "service is shut down; no new submissions"
                    )
                self.stats.add(submitted=1, hits=1, completed=1)
            done: Future = Future()
            done.set_result(_answer(request, form, key, entry, cached=True))
            self._m_request.observe(time.perf_counter() - t_submit)
            return done

        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "service is shut down; no new submissions"
                )
            self.stats.add(submitted=1)
            self.stats.observe_depth(self._queue.qsize())
            internal = self._inflight.get(key)
            owner = internal is None
            if owner:
                job = _Job(
                    key=key,
                    request=request,
                    form=form,
                    ctx=TRACER.current_context(),
                    tier=tier,
                    deadline=deadline,
                )
                internal = job.internal
                self._inflight[key] = internal
                self._submitting += 1
            else:
                self.stats.add(coalesced=1)

        if owner:
            try:
                job.enqueued = time.perf_counter()
                self._queue.put(job, block=block, timeout=timeout)
            except queue.Full:
                overloaded = ServiceOverloadedError(
                    f"submission queue at high-water mark "
                    f"({self._queue.maxsize}); request rejected"
                )
                with self._lock:
                    self._inflight.pop(key, None)
                    self.stats.add(rejected=1)
                # followers that coalesced in the meantime must observe the
                # rejection, not an indistinguishable cancellation; the
                # owner itself gets the synchronous raise (and no future)
                internal.set_exception(overloaded)
                raise overloaded from None
            finally:
                with self._settled:
                    self._submitting -= 1
                    self._settled.notify_all()
        public: Future = Future()
        internal.add_done_callback(
            lambda f: self._deliver(
                f, public, request, form, key,
                follower=not owner, t_submit=t_submit,
            )
        )
        return public

    def solve(
        self,
        request: SolveRequest | Graph,
        spec: LpSpec | None = None,
        engine: str = "auto",
        tag: str | None = None,
        analysis: GraphAnalysis | None = None,
    ):
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(
            request, spec, engine=engine, tag=tag, analysis=analysis
        ).result()

    # ------------------------------------------------------------------
    def _deliver(
        self,
        internal: Future,
        public: Future,
        request: SolveRequest,
        form: CanonicalForm,
        key: str,
        follower: bool = False,
        t_submit: float | None = None,
    ) -> None:
        """Translate the internal outcome into one caller's public future.

        A ``follower`` (a request that coalesced onto another's in-flight
        solve) reports ``cached=True`` with zero seconds — the same
        accounting :class:`~repro.service.batch.BatchSolver` uses for
        in-batch duplicates: no engine ran *for this request*.  Every
        resolution (including errors) lands one end-to-end sample in the
        ``repro_request_seconds`` histogram.
        """
        if t_submit is not None:
            self._m_request.observe(time.perf_counter() - t_submit)
        try:
            entry, cached, seconds = internal.result()
            if follower:
                cached, seconds = True, 0.0
        except CancelledError:
            public.cancel()
            return
        except BaseException as exc:
            if not public.set_running_or_notify_cancel():
                return
            public.set_exception(exc)
            self.stats.add(completed=1)
            return
        if not public.set_running_or_notify_cancel():
            return  # caller cancelled while we solved; nothing to deliver
        public.set_result(
            _answer(request, form, key, entry, cached=cached, seconds=seconds)
        )
        self.stats.add(completed=1)

    def _worker(self, index: int) -> None:
        """Worker loop: drain jobs until the stop sentinel arrives.

        Accounts its own busy/idle split into ``self._worker_times[index]``
        (idle = blocked on the queue, busy = processing a job) and mirrors
        the totals into the per-worker registry gauges — the direct
        measurement behind the ``workers_speedup_4`` scaling question.
        """
        times = self._worker_times[index]
        busy_gauge = self._m_worker_busy[index]
        idle_gauge = self._m_worker_idle[index]
        while True:
            t0 = time.perf_counter()
            item = self._queue.get()
            t1 = time.perf_counter()
            times[1] += t1 - t0
            idle_gauge.set(times[1])
            try:
                if item is _STOP:
                    return
                with TRACER.activate(item.ctx):
                    if item.ctx is not None:
                        with TRACER.span("server.process", key=item.key):
                            self._process(item)
                    else:
                        self._process(item)
            finally:
                times[0] += time.perf_counter() - t1
                busy_gauge.set(times[0])
                self._queue.task_done()

    def _process(self, job: _Job) -> None:
        """Answer one queued job: re-probe the cache, else solve and publish.

        Deadline-expired jobs are dropped *before* any solve: the answer
        could no longer be used, so spending a worker on it would only
        deepen the overload.  The drop is counted by the router (and in
        ``repro_router_expired_total``), not in the error stats — shedding
        is the design working, not a fault.
        """
        if job.enqueued:
            self._m_queue_wait.observe(time.perf_counter() - job.enqueued)
        if job.deadline is not None and time.perf_counter() > job.deadline:
            with self._lock:
                self._inflight.pop(job.key, None)
            self.router.note_expired()
            job.internal.set_exception(
                DeadlineExpiredError(
                    f"deadline of {job.request.deadline_ms} ms expired "
                    f"before solving started; request dropped"
                )
            )
            return
        # Re-probe: the entry may have been cached between this job's
        # submission and now (an identical earlier job finished).  Without
        # this check the submit-probe/finish race could double-solve.
        entry = self.cache.peek(job.key)
        if entry is not None:
            self._finish(job, entry, cached=True, seconds=0.0)
            return
        plain = (
            job.key,
            job.form.n,
            job.form.edges,
            job.request.spec.p,
            job.request.engine,
        )
        try:
            if job.tier == "approx":
                # the one-pass degraded solver never offloads — a process
                # hop would cost more than the solve itself
                entry, seconds = self.service.solver._solve_approx_inline(
                    job.form, job.request
                )
                labels, span = entry.labels, entry.span
                engine, exact = entry.engine, entry.exact
                gap = entry.gap
            elif self._pool is not None:
                ctx = TRACER.current_context()
                ctx_row = (
                    {"trace_id": ctx.trace_id, "span_id": ctx.span_id}
                    if ctx is not None
                    else None
                )
                descriptor = self._lease_segment(job)
                try:
                    _key, labels, span, engine, exact, seconds = (
                        self._pool.submit(
                            descriptor,
                            (job.key, job.request.spec.p, job.request.engine),
                            ctx_row,
                        ).result()
                    )
                finally:
                    self._arena.release(job.form.key)
                gap = None
            else:
                _key, labels, span, engine, exact, seconds = (
                    self.service.solver._solve_inline(
                        plain, job.form, job.request
                    )
                )
                gap = None
        except BaseException as exc:  # engine failures must reach the waiters
            with self._lock:
                self._inflight.pop(job.key, None)
            self.stats.add(errors=1)
            job.internal.set_exception(exc)
            return
        self._m_solve.observe(seconds)
        _TIER_SECONDS[job.tier].observe(seconds)
        entry = CachedSolve(
            labels=labels, span=span, engine=engine, exact=exact, gap=gap
        )
        self.cache.put(job.key, entry)
        self._finish(job, entry, cached=False, seconds=seconds)

    def _lease_segment(self, job: _Job) -> ShmDescriptor:
        """The job's canonical buffers in shared memory, leased for one solve.

        The first requester of a canonical key pays one permuted-matrix
        copy (:func:`canonical_instance` reuses the APSP already computed
        at submit time) and one publish; every later request for the same
        key — from any worker thread, for the lifetime of the arena entry
        — crosses the process boundary as the descriptor alone.
        """
        descriptor = self._arena.lease(job.form.key)
        if descriptor is None:
            canonical = canonical_instance(job.form, job.request.graph)
            descriptor = self._arena.publish(
                job.form.key, export_buffers(get_analysis(canonical))
            )
        return descriptor

    def _finish(
        self, job: _Job, entry: CachedSolve, cached: bool, seconds: float
    ) -> None:
        """Publish a solved/cached entry and retire the in-flight record."""
        with self._lock:
            self._inflight.pop(job.key, None)
        if cached:
            self.stats.add(hits=1)
        else:
            self.stats.add(solved=1)
        job.internal.set_result((entry, cached, seconds))

    # ------------------------------------------------------------------
    def prewarm(self, timeout: float | None = 30.0) -> None:
        """Block until every pool worker has finished starting up.

        A no-op for inline services.  Benchmarks call this before the
        timed region so the first measured request pays solve cost, not
        process start-up; production callers may skip it — the pool
        buffers submissions until workers come up.
        """
        if self._pool is not None:
            self._pool.wait_ready(timeout=timeout)

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every queued submission has been answered.

        Intake stays open — this is a checkpoint, not a shutdown.
        """
        self._queue.join()

    def _cancel_queued(self) -> None:
        """Drain the queue, cancelling every job still in it."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            try:
                if item is _STOP:
                    continue
                with self._lock:
                    self._inflight.pop(item.key, None)
                self.stats.add(cancelled=1)
                item.internal.cancel()
            finally:
                self._queue.task_done()

    def shutdown(self, wait: bool = True) -> None:
        """Stop intake and retire the workers.

        ``wait=True`` drains the queue first (every accepted future
        resolves); ``wait=False`` cancels everything still queued — their
        futures (and any coalesced onto them) end :class:`CancelledError`
        — while the solve currently running on each worker completes.
        Idempotent.
        """
        with self._lock:
            if self._closed and not self._threads:
                return
            self._closed = True
        if not wait:
            self._cancel_queued()
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join()
        self._threads = []
        # A submission that passed the closed check just before it flipped
        # may still be inside queue.put; alternate cancelling what landed
        # (which also frees queue space a blocked put may be waiting for)
        # with waiting for the stragglers to settle — without this, a
        # racing submit's future could hang forever.
        while True:
            self._cancel_queued()
            with self._settled:
                if not self._submitting:
                    break
                self._settled.wait(timeout=0.05)
        self._cancel_queued()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()  # unlinks every published segment
            self._arena = None

    def __enter__(self) -> "ConcurrentLabelingService":
        """Context manager: the running service itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Graceful shutdown (drain, then stop the workers)."""
        self.shutdown(wait=True)
