"""Sharded result cache: N independently locked LRU shards.

Under concurrent serving the single :class:`~repro.service.cache.ResultCache`
lock becomes the contention point — every worker's lookup and every client's
fast-path probe serialize on one mutex even though they touch different
keys.  :class:`ShardedResultCache` splits the key space over ``shards``
independent :class:`~repro.service.cache.ResultCache` instances (stable
CRC32 of the key picks the shard), so two operations contend only when they
land on the same shard: with shards ≫ worker threads the probability is
small and the expected wait is a fraction of the single-lock design's.

Each shard's lock additionally *counts contended acquisitions* (an acquire
that found the lock held), so the serving layer can report a
``shard_lock_wait`` rate — the perf baseline gates it: sharding the cache
must never become a regression in disguise.

The aggregate keeps the single cache's interface (``get``/``peek``/``put``/
``stats``/``save``/``load``), and persistence uses the *same JSON format*,
so a file written by a plain ``ResultCache`` warms a sharded one and vice
versa.

>>> from repro.service.cache import CachedSolve
>>> c = ShardedResultCache(capacity=64, shards=4)
>>> c.put("a", CachedSolve((0, 2), 2, "lk", False))
>>> c.get("a").span
2
>>> c.get("missing") is None
True
>>> (c.stats.hits, c.stats.misses)
(1, 1)
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zlib
from pathlib import Path

from repro.errors import ReproError
from repro.obs.metrics import REGISTRY
from repro.service.cache import (
    _PERSIST_VERSION,
    CachedSolve,
    CacheStats,
    ResultCache,
)

#: Default shard count.  Sixteen shards keep the expected contention rate
#: under 1/16 per colliding pair while the per-shard overhead (a lock and an
#: OrderedDict) stays trivial.
DEFAULT_SHARDS = 16


class _ContentionLock:
    """A mutex that counts total and contended acquisitions.

    Drop-in for ``threading.Lock`` as a context manager.  Both counters
    are incremented *while holding the lock*, so ``contended <=
    acquisitions`` exactly and any rate derived from them stays in
    ``[0, 1]``; reading them without the lock is a benign stale read (they
    are statistics).
    """

    __slots__ = ("_lock", "acquisitions", "contended")

    def __init__(self) -> None:
        """A fresh unlocked mutex with zeroed counters."""
        self._lock = threading.Lock()
        self.acquisitions = 0
        self.contended = 0

    def __enter__(self) -> "_ContentionLock":
        """Acquire, counting the acquisition as contended if it waited."""
        if not self._lock.acquire(blocking=False):
            self._lock.acquire()
            self.contended += 1
        self.acquisitions += 1
        return self

    def __exit__(self, *exc) -> None:
        """Release the mutex."""
        self._lock.release()

    def locked(self) -> bool:
        """Whether the underlying mutex is currently held."""
        return self._lock.locked()


class _CacheShard(ResultCache):
    """One shard: a plain :class:`ResultCache` behind a counting lock."""

    def __init__(self, capacity: int) -> None:
        """A path-less ResultCache guarded by a counting lock."""
        super().__init__(capacity=capacity, path=None, metrics_tier="sharded")
        self._lock = _ContentionLock()  # replaces the plain mutex

    @property
    def lock_contentions(self) -> int:
        """How many acquisitions of this shard's lock found it held."""
        return self._lock.contended


class ShardedResultCache:
    """LRU result cache split over independently locked shards.

    Parameters
    ----------
    capacity:
        Total entry budget, divided evenly across shards (each shard
        evicts independently, so the instantaneous total can sit slightly
        under ``capacity`` when the key distribution is skewed).
    shards:
        Number of independent locks/LRU maps.  ``1`` degenerates to the
        single-lock design (useful for A/B measurements).
    path:
        Optional JSON persistence path, same format and semantics as
        :class:`~repro.service.cache.ResultCache` (load on construction
        when the file exists, explicit :meth:`save`).
    """

    def __init__(
        self,
        capacity: int = 4096,
        shards: int = DEFAULT_SHARDS,
        path: str | Path | None = None,
    ) -> None:
        """Split ``capacity`` across ``shards`` independent LRU caches."""
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        shards = min(shards, capacity)  # a shard needs room for >= 1 entry
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        per_shard = -(-capacity // shards)  # ceil division
        self._shards = tuple(_CacheShard(per_shard) for _ in range(shards))
        # Contention gauges sample this instance through a weak reference —
        # the most recently built sharded cache owns the gauge, and a
        # collected cache leaves the last sampled value behind instead of
        # being pinned alive by the registry.
        REGISTRY.gauge("repro_shard_contention_rate").set_function(
            lambda cache: cache.contention_rate, owner=self
        )
        REGISTRY.gauge("repro_shard_lock_contentions_total").set_function(
            lambda cache: cache.lock_contentions, owner=self
        )
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """The number of independent shards."""
        return len(self._shards)

    def _shard_for(self, key: str) -> _CacheShard:
        """Stable key→shard routing (CRC32, process-independent)."""
        return self._shards[zlib.crc32(key.encode("utf-8")) % len(self._shards)]

    # ------------------------------------------------------------------
    def get(self, key: str) -> CachedSolve | None:
        """Shard-local lookup, counting a hit or miss and refreshing recency."""
        return self._shard_for(key).get(key)

    def peek(self, key: str) -> CachedSolve | None:
        """Shard-local lookup without touching stats or recency."""
        return self._shard_for(key).peek(key)

    def put(self, key: str, value: CachedSolve) -> None:
        """Shard-local insert; eviction pressure never crosses shards."""
        self._shard_for(key).put(key, value)

    def clear(self) -> None:
        """Empty every shard (stats are lifetime counters and survive)."""
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        """Live entries summed across shards."""
        return sum(len(s) for s in self._shards)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is cached (single-shard check, no side effects)."""
        return key in self._shard_for(key)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregate counters summed over every shard's lifetime stats."""
        total = CacheStats()
        for shard in self._shards:
            total.hits += shard.stats.hits
            total.misses += shard.stats.misses
            total.evictions += shard.stats.evictions
            total.puts += shard.stats.puts
        return total

    def shard_stats(self) -> list[CacheStats]:
        """Per-shard lifetime counters, in shard order."""
        return [s.stats for s in self._shards]

    @property
    def lock_contentions(self) -> int:
        """Total contended shard-lock acquisitions across all shards."""
        return sum(s.lock_contentions for s in self._shards)

    @property
    def contention_rate(self) -> float:
        """Contended acquisitions per lock acquisition (the gated metric).

        Numerator and denominator come from the same per-shard lock
        counters (every operation — ``get``/``peek``/``put``/``len``/
        persistence — counts), so the rate is exact, stays in ``[0, 1]``
        by construction, and is comparable across runs of different
        lengths.  The perf baseline gates this as ``shard_lock_wait``: it
        may never rise.
        """
        acquisitions = sum(s._lock.acquisitions for s in self._shards)
        return self.lock_contentions / acquisitions if acquisitions else 0.0

    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Persist all shards as one JSON file (atomic rename).

        The payload is byte-compatible with
        :meth:`repro.service.cache.ResultCache.save`, so sharded and
        single-lock caches can warm-start from each other's files.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ReproError("no persistence path configured for this cache")
        entries: dict[str, dict] = {}
        for shard in self._shards:
            with shard._lock:
                entries.update(
                    (k, v.to_json()) for k, v in shard._entries.items()
                )
        payload = {"version": _PERSIST_VERSION, "entries": entries}
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target

    def load(self, path: str | Path) -> int:
        """Merge entries from a JSON file, routing each to its shard.

        Accepts files written by either cache flavour; returns how many
        entries the file held (unknown versions load zero, exactly like
        :meth:`ResultCache.load`).
        """
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"unreadable cache file {source}: {exc}") from exc
        if payload.get("version") != _PERSIST_VERSION:
            return 0
        entries = payload.get("entries", {})
        try:
            decoded = {
                str(k): CachedSolve.from_json(d) for k, d in entries.items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed cache file {source}: {exc!r}") from exc
        for k, entry in decoded.items():
            shard = self._shard_for(k)
            with shard._lock:
                shard._entries[k] = entry
                while len(shard._entries) > shard.capacity:
                    shard._entries.popitem(last=False)
                    shard.stats.evictions += 1
                    shard._m_evictions.inc()
        return len(entries)
