"""Canonical forms for (graph, spec) cache keys.

The batch service must recognise that two requests are "the same problem"
even when their vertex numberings differ: L(p)-labeling is invariant under
relabeling, so isomorphic graphs with the same spec have the same span and
interchangeable labelings.  This module computes a canonical vertex order by
degree/distance colour refinement plus individualization, and derives a
stable hash from the *canonically reordered edge set*.

Soundness is structural, not heuristic: the key material is the full edge
set under the computed order, so two (graph, spec) pairs share a key **only
if the computed orders witness an isomorphism between them** (up to a
SHA-256 collision).  A weak tie-break can therefore only cause a missed
cache hit — it can never make the cache return a labeling for a different
graph.  Completeness (isomorphic inputs mapping to the same key) rests on
the refinement: distances are a much stronger invariant than adjacency
alone, and on the small-diameter instances this library targets the
refinement almost always discretizes after few individualization steps.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import (
    GraphAnalysis,
    attach_distances,
    ensure_current,
    get_analysis,
)
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec

#: Bump when the key derivation changes, so persisted caches self-invalidate.
KEY_VERSION = 1

#: Above this cell size, pivot candidates are not individually scored.  Cells
#: this large only survive distance refinement on genuinely symmetric
#: families (cliques, cycle rims, bipartition sides), where every member is
#: automorphic and any pivot yields the same certificate.
_SCORE_CAP = 16


@dataclass(frozen=True)
class CanonicalForm:
    """A graph's canonical certificate plus the order that produced it.

    ``position[v]`` is the canonical index of original vertex ``v``; two
    isomorphic graphs that canonicalize identically map onto the same
    canonical graph, so ``position`` converts labelings between them.
    """

    key: str                     # stable hex digest of (n, p, canonical edges)
    n: int
    position: tuple[int, ...]    # original vertex id -> canonical index
    edges: tuple[tuple[int, int], ...]   # edge set in canonical coordinates

    def to_canonical_labels(self, labels: tuple[int, ...]) -> tuple[int, ...]:
        """Re-index a labeling of the original graph by canonical position."""
        out = [0] * self.n
        for v, lab in enumerate(labels):
            out[self.position[v]] = lab
        return tuple(out)

    def from_canonical_labels(self, labels: tuple[int, ...]) -> tuple[int, ...]:
        """Pull a canonical-coordinate labeling back to original vertex ids."""
        return tuple(labels[self.position[v]] for v in range(self.n))


def canonical_form(
    graph: Graph, spec: LpSpec, analysis: GraphAnalysis | None = None
) -> CanonicalForm:
    """Canonical certificate for a ``(graph, spec)`` request.

    ``analysis`` forwards an existing oracle; by default the refinement
    reads the graph's memoized one, so key computation and a subsequent
    solve of the same graph share a single APSP.

    >>> from repro.graphs.generators import cycle_graph
    >>> from repro.graphs.operations import relabel
    >>> from repro.labeling.spec import L21
    >>> a = canonical_form(cycle_graph(5), L21)
    >>> b = canonical_form(relabel(cycle_graph(5), [3, 0, 4, 1, 2]), L21)
    >>> a.key == b.key
    True
    """
    order = canonical_order(graph, analysis=analysis)
    position = [0] * graph.n
    for idx, v in enumerate(order):
        position[v] = idx
    edges = tuple(sorted(
        (min(position[u], position[v]), max(position[u], position[v]))
        for u, v in graph.edges()
    ))
    material = "|".join(
        [
            f"v{KEY_VERSION}",
            f"n={graph.n}",
            f"p={','.join(map(str, spec.p))}",
            ";".join(f"{u},{v}" for u, v in edges),
        ]
    )
    key = hashlib.sha256(material.encode("ascii")).hexdigest()
    return CanonicalForm(
        key=key, n=graph.n, position=tuple(position), edges=edges
    )


def canonical_order(
    graph: Graph, analysis: GraphAnalysis | None = None
) -> tuple[int, ...]:
    """A relabeling-invariant vertex order (canonical index -> vertex id).

    Colour refinement over the distance matrix (shared through the analysis
    oracle), then repeated individualization of a canonically chosen vertex
    until the colouring is discrete.  Ties inside a colour class are broken
    by the refined colour histogram each candidate would induce — a
    relabeling-invariant score — so automorphic candidates (the common case
    for symmetric families) all yield the same final order up to
    automorphism.
    """
    n = graph.n
    if n == 0:
        return ()
    if n == 1:
        return (0,)
    dist = ensure_current(graph, analysis).distances

    colors = _refine(dist, _initial_colors(graph, dist))
    while int(colors.max()) < n - 1:   # not yet discrete
        cell = _target_cell(colors)
        colors = _choose_pivot(dist, colors, cell)
    # discrete colouring: colour IS the canonical position
    order = [0] * n
    for v, c in enumerate(colors.tolist()):
        order[c] = v
    return tuple(order)


def canonical_instance(form: CanonicalForm, graph: Graph) -> Graph:
    """Materialize the canonical graph with its distance oracle pre-seeded.

    The canonical graph is the request graph relabeled by ``form.position``,
    so its distance matrix is exactly the request's matrix permuted:
    ``dist_c[position[u], position[v]] = dist[u, v]``.  Seeding the new
    graph's :class:`~repro.graphs.analysis.GraphAnalysis` with that
    permutation means a cache-miss solve in canonical coordinates computes
    **zero** additional APSP — the key derivation already paid for the one
    this graph version gets.
    """
    canonical = Graph(form.n, form.edges)
    dist = get_analysis(graph).distances
    position = np.asarray(form.position, dtype=np.intp)
    permuted = np.empty_like(dist)
    permuted[np.ix_(position, position)] = dist
    attach_distances(canonical, permuted)
    return canonical


# ---------------------------------------------------------------------------
# refinement machinery
# ---------------------------------------------------------------------------
def _initial_colors(graph: Graph, dist: np.ndarray) -> np.ndarray:
    """Seed colours from (degree, sorted distance profile) — both invariant."""
    profile = np.sort(dist, axis=1)
    sigs = [
        (graph.degree(v), profile[v].tobytes()) for v in range(graph.n)
    ]
    return _index_colors(sigs)


def _refine(dist: np.ndarray, colors: np.ndarray) -> np.ndarray:
    """Distance-profile colour refinement (1-WL over the distance matrix).

    A vertex's new colour is its old colour plus the multiset of
    ``(distance, colour)`` pairs over all vertices; iterate to a fixed
    point.  Never coarser, so at most ``n`` rounds.  Each round is a
    vectorized encode-and-sort: ``dist * (n+1) + colour`` packs the pair
    into one integer (colours are ``< n``; unreachable pairs pack to
    negative codes that cannot collide with reachable ones).
    """
    n = len(colors)
    while True:
        packed = dist * np.int64(n + 1) + colors[None, :]
        profile = np.sort(packed, axis=1)
        sigs = [
            (int(colors[v]), profile[v].tobytes()) for v in range(n)
        ]
        new = _index_colors(sigs)
        if np.array_equal(new, colors):
            return colors
        colors = new


def _index_colors(signatures: list) -> np.ndarray:
    """Replace arbitrary signatures by their rank in sorted order."""
    rank = {s: i for i, s in enumerate(sorted(set(signatures)))}
    return np.fromiter(
        (rank[s] for s in signatures), dtype=np.int64, count=len(signatures)
    )


def _target_cell(colors: np.ndarray) -> list[int]:
    """The canonically chosen non-singleton colour class to split next.

    Smallest cell first (fewest candidates to score), lowest colour id as
    the tie-break; both criteria are functions of the invariant colouring.
    """
    cells: dict[int, list[int]] = {}
    for v, c in enumerate(colors.tolist()):
        cells.setdefault(c, []).append(v)
    candidates = [(len(vs), c) for c, vs in cells.items() if len(vs) > 1]
    _, best = min(candidates)
    return cells[best]


def _individualize(colors: np.ndarray, pivot: int) -> np.ndarray:
    """Give ``pivot`` a fresh colour below its class, keeping ranks canonical."""
    sigs = [
        (int(c), 0 if v == pivot else 1) for v, c in enumerate(colors.tolist())
    ]
    return _index_colors(sigs)


def _choose_pivot(
    dist: np.ndarray, colors: np.ndarray, cell: list[int]
) -> np.ndarray:
    """Individualize the cell member whose refinement is canonically least.

    Returns the refined colouring for the chosen pivot (the scoring pass
    already computed it, so the caller never refines twice).  The score —
    the sorted colour histogram after individualize+refine — is invariant
    under relabeling, so isomorphic graphs agree on which *structural*
    vertex gets pivoted.  Vertices tying on the score are either automorphic
    images of each other (any choice produces the same certificate) or
    indistinguishable to the refinement (vanishingly rare on this library's
    families); we take the lowest id among them.  Cells above ``_SCORE_CAP``
    skip the scoring pass entirely — see the constant's note.
    """
    if len(cell) > _SCORE_CAP:
        return _refine(dist, _individualize(colors, cell[0]))
    best_refined = None
    best_score = None
    for v in cell:
        refined = _refine(dist, _individualize(colors, v))
        uniq, counts = np.unique(refined, return_counts=True)
        score = tuple(zip(uniq.tolist(), counts.tolist()))
        if best_score is None or score < best_score:
            best_score, best_refined = score, refined
    return best_refined
