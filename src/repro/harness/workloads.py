"""Named, seeded workload generators for the benchmark experiments.

Every workload is a deterministic function of ``(name, size, seed)``, so any
number reported in EXPERIMENTS.md can be regenerated bit-for-bit.  The
families mirror the paper's setting: small-diameter graphs of varied density
and structure, plus the radio-network geometric family from the motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs import generators as gen
from repro.graphs.cotree import random_connected_cograph


@dataclass(frozen=True)
class Workload:
    """One benchmark instance with provenance."""

    family: str
    n: int
    seed: int
    graph: Graph

    @property
    def label(self) -> str:
        """Human-readable provenance tag for tables and reports."""
        return f"{self.family}(n={self.n}, seed={self.seed})"


def _diam2(n: int, seed: int) -> Graph:
    """Random diameter-<=2 graph (the paper's core regime)."""
    return gen.random_graph_with_diameter_at_most(n, 2, seed=seed)


def _diam3(n: int, seed: int) -> Graph:
    """Random diameter-<=3 graph (sparser topologies)."""
    return gen.random_graph_with_diameter_at_most(n, 3, seed=seed)


def _dense(n: int, seed: int) -> Graph:
    """Dense diameter-2 variant (Generator-seeded edge draw)."""
    return gen.random_graph_with_diameter_at_most(n, 2, seed=np.random.default_rng(seed))


def _geometric(n: int, seed: int) -> Graph:
    # radius tuned to keep the diameter small at moderate n
    """Random geometric radio-network graph at a diameter-friendly radius."""
    g, _pos = gen.random_geometric_graph(n, radius=0.55, seed=seed)
    return g

def _split(n: int, seed: int) -> Graph:
    """Random split graph: clique half plus independent half."""
    clique = max(2, n // 2)
    return gen.random_split_graph(clique, n - clique, p=0.7, seed=seed)


def _cograph(n: int, seed: int) -> Graph:
    """Random connected cograph (structured special-case solvers)."""
    return random_connected_cograph(n, seed=seed)


def _sparse(n: int, seed: int) -> Graph:
    """Connected sparse graph (~2.5n edges): path backbone plus chords.

    The scaling family for the blocked distance oracle: at n in the
    hundreds-to-thousands its diameter grows like log n — far beyond the
    Theorem-2 regime — so these graphs exercise row-block materialization,
    LRU residency and streamed consumers rather than the reduction.
    Built edge-by-edge in O(n) (no dense draws), so generation stays
    negligible next to the measured work even at n = 2048.
    """
    if n < 2:
        return Graph(n)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    g = Graph(n, ((int(perm[i]), int(perm[i + 1])) for i in range(n - 1)))
    target = g.m + (3 * n) // 2
    draws = rng.integers(0, n, size=(4 * n, 2))
    for u, v in draws:
        if g.m >= target:
            break
        u, v = int(u), int(v)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def _wheel(n: int, seed: int) -> Graph:
    """Wheel graph on ``n`` vertices (hub + rim)."""
    return gen.wheel_graph(max(n - 1, 3))


def _complete_bipartite(n: int, seed: int) -> Graph:
    """Complete bipartite graph with near-even sides."""
    a = max(1, n // 2)
    return gen.complete_bipartite_graph(a, n - a)


#: family name -> generator(n, seed)
WORKLOADS: dict[str, Callable[[int, int], Graph]] = {
    "diam2": _diam2,
    "diam3": _diam3,
    "geometric": _geometric,
    "split": _split,
    "cograph": _cograph,
    "wheel": _wheel,
    "complete_bipartite": _complete_bipartite,
    "sparse": _sparse,
}


def make_workload(family: str, n: int, seed: int = 0) -> Workload:
    """Instantiate one named workload."""
    try:
        factory = WORKLOADS[family]
    except KeyError:
        raise ReproError(
            f"unknown workload family {family!r}; known: {', '.join(WORKLOADS)}"
        ) from None
    return Workload(family=family, n=n, seed=seed, graph=factory(n, seed))


def sweep(
    family: str, sizes: list[int], seeds: list[int]
) -> list[Workload]:
    """The cross product of sizes and seeds for one family."""
    return [make_workload(family, n, s) for n in sizes for s in seeds]


@dataclass(frozen=True)
class MatrixLeg:
    """One named cell of the benchmark matrix: a family × size × seed grid.

    Legs are the unit the perf suite sweeps and CI schedules — a quick run
    takes one leg, a full run takes them all.
    """

    name: str
    family: str
    sizes: tuple[int, ...]
    seeds: tuple[int, ...] = (0,)
    #: Constraint vector solvable on this family (Theorem 2 needs
    #: ``diam(G) <= len(spec)``, so deeper families carry longer specs).
    spec: tuple[int, ...] = (2, 1)
    #: Whether the Theorem-2 reduction applies to this family (the large
    #: sparse legs have diameter >> len(spec), so the reduction scenario
    #: skips them and the oracle-scaling scenario measures them instead).
    reduction: bool = True

    def workloads(self) -> list[Workload]:
        """Instantiate the leg's full size x seed grid."""
        return sweep(self.family, list(self.sizes), list(self.seeds))


#: The named workload matrix: density × family × size.  ``diam2`` graphs at
#: diameter 2 are near-dense, ``diam3`` admits sparser topologies,
#: ``geometric`` is the radio-network motivation, ``split``/``cograph``
#: exercise the structured special-case solvers.  Sizes stay in the range
#: the E-suite already times so a full sweep remains minutes, not hours.
MATRIX: dict[str, MatrixLeg] = {
    leg.name: leg
    for leg in (
        MatrixLeg("diam2-small", "diam2", (16, 24), (0, 1)),
        MatrixLeg("diam2-dense", "diam2", (48, 64), (0,)),
        MatrixLeg("diam3-sparse", "diam3", (24, 40), (0, 1), spec=(2, 2, 1)),
        MatrixLeg("geometric-radio", "geometric", (24, 40), (0, 1), spec=(2, 2, 1)),
        MatrixLeg("split-dense", "split", (24, 40), (0, 1), spec=(2, 2, 1)),
        MatrixLeg("cograph-structured", "cograph", (24, 40), (0, 1)),
        # the scaling legs: 10-50x larger graphs through the blocked oracle
        MatrixLeg("large-512", "sparse", (512,), (0,), reduction=False),
        MatrixLeg("large-2048", "sparse", (2048,), (0,), reduction=False),
    )
}


def matrix_sweep(leg: str | MatrixLeg) -> list[Workload]:
    """Instantiate every workload of one named matrix leg."""
    if isinstance(leg, str):
        try:
            leg = MATRIX[leg]
        except KeyError:
            raise ReproError(
                f"unknown matrix leg {leg!r}; known: {', '.join(MATRIX)}"
            ) from None
    return leg.workloads()


# ---------------------------------------------------------------------------
# DYNAMIC legs: edge-churn streams over the MATRIX families
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnLeg:
    """One named dynamic-update stream: seeded edge churn over a family graph.

    The unit the ``DYNAMIC`` perf scenario (and
    ``bench_e13_dynamic_updates.py``) sweeps: a base graph from an existing
    workload family plus a deterministic stream of single-edge
    inserts/deletes, the regime :mod:`repro.dynamic` repairs incrementally.
    """

    name: str
    family: str
    n: int
    steps: int
    seed: int = 0
    #: Probability a step deletes a present edge (the rest insert one).
    remove_fraction: float = 0.35
    #: Constraint vector solvable on this family (for session-level runs).
    spec: tuple[int, ...] = (2, 1)


#: The named dynamic legs.  Sizes mirror the MATRIX timing range; the
#: quick perf run takes the small leg, the full run the dense one.
DYNAMIC: dict[str, ChurnLeg] = {
    leg.name: leg
    for leg in (
        ChurnLeg("churn-diam2-small", "diam2", 24, 40),
        ChurnLeg("churn-diam2-dense", "diam2", 48, 64),
        ChurnLeg("churn-geometric", "geometric", 32, 48, spec=(2, 2, 1)),
        # large-graph churn: the delta engine repairing an int16 matrix
        ChurnLeg("churn-sparse-large", "sparse", 512, 64),
    )
}


def churn_stream(
    leg: str | ChurnLeg,
) -> tuple[Graph, list[tuple[str, int, int]]]:
    """The leg's base graph plus its deterministic mutation stream.

    Returns ``(base, ops)`` where each op is ``("add_edge", u, v)`` or
    ``("remove_edge", u, v)``, valid when applied in order starting from a
    fresh copy of ``base``.  Pure function of the leg (seeded), so any
    measured number can be regenerated bit-for-bit.
    """
    if isinstance(leg, str):
        try:
            leg = DYNAMIC[leg]
        except KeyError:
            raise ReproError(
                f"unknown dynamic leg {leg!r}; known: {', '.join(DYNAMIC)}"
            ) from None
    base = make_workload(leg.family, leg.n, leg.seed).graph
    rng = np.random.default_rng(leg.seed + 0x5EED)
    replica = base.copy()
    floor = max(replica.n - 1, replica.m // 2)  # keep some density
    ops: list[tuple[str, int, int]] = []
    while len(ops) < leg.steps:
        n = replica.n
        if rng.random() < leg.remove_fraction and replica.m > floor:
            edges = list(replica.edges())
            u, v = edges[int(rng.integers(len(edges)))]
            replica.remove_edge(u, v)
            ops.append(("remove_edge", u, v))
        elif n >= 256:
            # large graphs are sparse: rejection-sample an absent pair in
            # O(1) expected instead of materializing the O(n^2) absent
            # list.  Gated on n so the small legs' streams (and their
            # committed baseline numbers) stay bit-identical.
            for _ in range(64):
                u = int(rng.integers(n))
                v = int(rng.integers(n))
                if u > v:
                    u, v = v, u
                if u != v and not replica.has_edge(u, v):
                    replica.add_edge(u, v)
                    ops.append(("add_edge", u, v))
                    break
        else:
            absent = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if not replica.has_edge(u, v)
            ]
            if not absent:
                continue  # complete graph: next draw will delete
            u, v = absent[int(rng.integers(len(absent)))]
            replica.add_edge(u, v)
            ops.append(("add_edge", u, v))
    return base, ops


# ---------------------------------------------------------------------------
# SERVICE legs: mixed hot/cold request streams for the serving front end
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceLeg:
    """One named serving stream: a mixed hot/cold request mix.

    The unit the ``SERVICE`` perf scenario (and
    ``bench_e14_concurrent_service.py``) serves through the
    :class:`~repro.service.server.ConcurrentLabelingService`: *hot*
    requests are relabeled copies of a small pool of base topologies (the
    repeats a cache and in-flight dedup exist for), *cold* requests are
    distinct graphs seen exactly once (the part only parallel solving can
    speed up).  The interleaving is a seeded shuffle, so every stream is a
    pure function of the leg.
    """

    name: str
    family: str
    n: int
    requests: int
    #: Fraction of requests drawn (relabeled) from the hot pool.
    hot_fraction: float = 0.75
    #: Number of distinct hot topologies.
    hot_pool: int = 2
    seed: int = 0
    #: Constraint vector solvable on this family.
    spec: tuple[int, ...] = (2, 1)
    engine: str = "lk"

    @property
    def unique(self) -> int:
        """Distinct problems in the stream (hot pool + cold singletons)."""
        return self.hot_pool + (self.requests - round(self.requests * self.hot_fraction))


#: The named serving legs.  The quick perf run serves the small leg, the
#: full run the dense one; the cold-heavy leg is the scaling benchmark's
#: worst case (nothing to dedup, every request an engine run).
SERVICE: dict[str, ServiceLeg] = {
    leg.name: leg
    for leg in (
        ServiceLeg("mixed-small", "diam2", 20, 12),
        ServiceLeg("mixed-dense", "diam2", 24, 24),
        # 16 cold requests: enough work per pool worker that a 4-process
        # pool's speedup measurement is dominated by solve time, not by
        # publish/dispatch overhead on the first request per key.
        ServiceLeg("cold-scaling", "diam2", 24, 16, hot_fraction=0.0, hot_pool=0),
    )
}


def service_stream(leg: str | ServiceLeg) -> list:
    """Instantiate one SERVICE leg as an ordered list of ``SolveRequest``\\ s.

    Hot requests arrive under fresh vertex permutations (only the
    canonical form can recognise them); cold requests use seeds disjoint
    from the hot pool's.  Deterministic: same leg, same stream.
    """
    from repro.service.batch import SolveRequest
    from repro.graphs.operations import relabel
    from repro.labeling.spec import LpSpec

    if isinstance(leg, str):
        try:
            leg = SERVICE[leg]
        except KeyError:
            raise ReproError(
                f"unknown service leg {leg!r}; known: {', '.join(SERVICE)}"
            ) from None
    rng = np.random.default_rng(leg.seed + 0xCAFE)
    spec = LpSpec(leg.spec)
    hot_count = round(leg.requests * leg.hot_fraction)
    hot_bases = [
        make_workload(leg.family, leg.n, 101 + s).graph
        for s in range(leg.hot_pool)
    ]
    requests = [
        SolveRequest(
            relabel(hot_bases[i % leg.hot_pool],
                    rng.permutation(leg.n).tolist()),
            spec,
            engine=leg.engine,
            tag=f"hot[{i}]",
        )
        for i in range(hot_count)
    ]
    requests += [
        SolveRequest(
            make_workload(leg.family, leg.n, 1000 + i).graph,
            spec,
            engine=leg.engine,
            tag=f"cold[{i}]",
        )
        for i in range(leg.requests - hot_count)
    ]
    return [requests[int(i)] for i in rng.permutation(len(requests))]


def apply_churn_op(graph: Graph, op: tuple[str, int, int]) -> None:
    """Apply one churn-stream op to ``graph``."""
    kind, u, v = op
    if kind == "add_edge":
        graph.add_edge(u, v)
    elif kind == "remove_edge":
        graph.remove_edge(u, v)
    else:
        raise ReproError(f"unknown churn op {kind!r}")


def churn_maintain(graph: Graph, ops, each=None) -> None:
    """Maintain the distance matrix through ``ops`` with a delta engine.

    The one incremental-measurement protocol shared by the perf suite, the
    E13 benchmark and the ``dynamic`` CLI: a fresh copy of ``graph`` (so
    the engine's seed APSP is part of the measured cost), then
    apply-and-repair per op.  ``each(graph, dist)`` observes every
    repaired matrix (the live engine-owned array) — verification hooks
    must run it in a separate un-timed pass.
    """
    from repro.dynamic import DeltaEngine

    g = graph.copy()
    engine = DeltaEngine(g)
    for op in ops:
        apply_churn_op(g, op)
        dist = engine.refresh(g)
        if each is not None:
            each(g, dist)


def churn_recompute(graph: Graph, ops) -> None:
    """The pre-dynamic cost model: one full APSP per mutation."""
    from repro.graphs.traversal import all_pairs_distances

    g = graph.copy()
    all_pairs_distances(g)
    for op in ops:
        apply_churn_op(g, op)
        all_pairs_distances(g)
