"""Named, seeded workload generators for the benchmark experiments.

Every workload is a deterministic function of ``(name, size, seed)``, so any
number reported in EXPERIMENTS.md can be regenerated bit-for-bit.  The
families mirror the paper's setting: small-diameter graphs of varied density
and structure, plus the radio-network geometric family from the motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs import generators as gen
from repro.graphs.cotree import random_connected_cograph


@dataclass(frozen=True)
class Workload:
    """One benchmark instance with provenance."""

    family: str
    n: int
    seed: int
    graph: Graph

    @property
    def label(self) -> str:
        return f"{self.family}(n={self.n}, seed={self.seed})"


def _diam2(n: int, seed: int) -> Graph:
    return gen.random_graph_with_diameter_at_most(n, 2, seed=seed)


def _diam3(n: int, seed: int) -> Graph:
    return gen.random_graph_with_diameter_at_most(n, 3, seed=seed)


def _dense(n: int, seed: int) -> Graph:
    return gen.random_graph_with_diameter_at_most(n, 2, seed=np.random.default_rng(seed))


def _geometric(n: int, seed: int) -> Graph:
    # radius tuned to keep the diameter small at moderate n
    g, _pos = gen.random_geometric_graph(n, radius=0.55, seed=seed)
    return g

def _split(n: int, seed: int) -> Graph:
    clique = max(2, n // 2)
    return gen.random_split_graph(clique, n - clique, p=0.7, seed=seed)


def _cograph(n: int, seed: int) -> Graph:
    return random_connected_cograph(n, seed=seed)


def _wheel(n: int, seed: int) -> Graph:
    return gen.wheel_graph(max(n - 1, 3))


def _complete_bipartite(n: int, seed: int) -> Graph:
    a = max(1, n // 2)
    return gen.complete_bipartite_graph(a, n - a)


#: family name -> generator(n, seed)
WORKLOADS: dict[str, Callable[[int, int], Graph]] = {
    "diam2": _diam2,
    "diam3": _diam3,
    "geometric": _geometric,
    "split": _split,
    "cograph": _cograph,
    "wheel": _wheel,
    "complete_bipartite": _complete_bipartite,
}


def make_workload(family: str, n: int, seed: int = 0) -> Workload:
    """Instantiate one named workload."""
    try:
        factory = WORKLOADS[family]
    except KeyError:
        raise ReproError(
            f"unknown workload family {family!r}; known: {', '.join(WORKLOADS)}"
        ) from None
    return Workload(family=family, n=n, seed=seed, graph=factory(n, seed))


def sweep(
    family: str, sizes: list[int], seeds: list[int]
) -> list[Workload]:
    """The cross product of sizes and seeds for one family."""
    return [make_workload(family, n, s) for n in sizes for s in seeds]
