"""Statistics helpers for experiment analysis.

Small, dependency-light: summary stats, growth-rate estimation (for the
O(2^n) / O(nm) scaling experiments) and bootstrap confidence intervals for
ratio comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number summary (n, mean, stdev, min, max) of a sample."""
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def row(self) -> list[float]:
        """The summary as a table row: mean, std, min, median, max."""
        return [self.mean, self.std, self.minimum, self.median, self.maximum]


def summarize(values) -> Summary:
    """Summary statistics of a sample (population std, ddof=0)."""
    a = np.asarray(list(values), dtype=float)
    if a.size == 0:
        return Summary(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"))
    return Summary(
        n=int(a.size),
        mean=float(a.mean()),
        std=float(a.std()),
        minimum=float(a.min()),
        maximum=float(a.max()),
        median=float(np.median(a)),
    )


def growth_factor_per_step(sizes, times) -> float:
    """Geometric-mean growth factor between consecutive measurements.

    For Held–Karp over ``n, n+2, n+4, …`` the factor per +2 vertices should
    approach 4 (i.e. 2 per vertex).
    """
    t = np.asarray(list(times), dtype=float)
    if len(t) < 2 or np.any(t <= 0):
        return float("nan")
    ratios = t[1:] / t[:-1]
    return float(np.exp(np.log(ratios).mean()))


def fit_power_law(sizes, times) -> float:
    """Least-squares exponent ``b`` of ``time ≈ a * n^b`` (log-log fit).

    Used by the E3 analysis: the reduction on dense diameter-2 graphs should
    fit an exponent around 2.5–3.2 (n*m with m ~ n^2).
    """
    x = np.log(np.asarray(list(sizes), dtype=float))
    y = np.log(np.asarray(list(times), dtype=float))
    if len(x) < 2:
        return float("nan")
    b, _a = np.polyfit(x, y, 1)
    return float(b)


def bootstrap_mean_ci(
    values, confidence: float = 0.95, resamples: int = 2000, seed: int = 0
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean."""
    a = np.asarray(list(values), dtype=float)
    if a.size == 0:
        return (float("nan"), float("nan"))
    rng = np.random.default_rng(seed)
    means = rng.choice(a, size=(resamples, a.size), replace=True).mean(axis=1)
    lo = (1 - confidence) / 2
    return (
        float(np.quantile(means, lo)),
        float(np.quantile(means, 1 - lo)),
    )
