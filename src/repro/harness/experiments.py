"""The reproduction suite: one function per experiment E1–E11.

Each ``eN_*`` function runs the experiment at a reproducible default scale
and returns an :class:`ExperimentResult` with the table the paper's artefact
corresponds to, plus pass/fail checks of the claim's *shape* (who wins, what
bound holds, how the curve grows).  ``main()`` prints the whole suite — this
is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.graphs import generators as gen
from repro.graphs.operations import graph_power
from repro.graphs.traversal import diameter
from repro.harness.tables import render_table
from repro.harness.workloads import make_workload
from repro.harness.runner import run_engines
from repro.labeling.exact import exact_span
from repro.labeling.spec import L21, LpSpec, all_ones
from repro.partition.diameter2 import solve_lpq_diameter2, span_from_path_count
from repro.partition.l1_labeling import pmax_approx_labeling
from repro.partition.modular import modular_width
from repro.partition.neighborhood_diversity import neighborhood_diversity
from repro.reduction.from_tour import labeling_from_order
from repro.reduction.solver import solve_labeling
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.tsp.held_karp import held_karp_path
from repro.tsp.portfolio import get_engine


@dataclass
class ExperimentResult:
    """One experiment's table plus its claim checks."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: str = ""

    @property
    def passed(self) -> bool:
        """True when every claim check of the experiment held."""
        return all(ok for _, ok in self.checks)

    def render(self) -> str:
        """ASCII rendering: title, table, then one line per check."""
        out = [f"== {self.exp_id}: {self.title} =="]
        out.append(render_table(self.headers, self.rows))
        for name, ok in self.checks:
            out.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            out.append(f"  note: {self.notes}")
        return "\n".join(out)


# ---------------------------------------------------------------------------
# E1: Figure 1 — the reduction construction on the 5-vertex example
# ---------------------------------------------------------------------------
def e1_figure1_reduction() -> ExperimentResult:
    """Rebuild Figure 1: graph G (diam 3), weights of H, optimal path/labels."""
    g = gen.paper_figure1_graph()
    spec = LpSpec((2, 2, 1))  # p1, p2, p3 with pmax <= 2 pmin
    red = reduce_to_path_tsp(g, spec)
    path = held_karp_path(red.instance)
    labeling = labeling_from_order(red, path.order)
    oracle = exact_span(g, spec)

    names = "abcde"
    rows: list[Sequence[Any]] = []
    for u in range(g.n):
        rows.append(
            [names[u]]
            + [int(red.instance.weights[u, v]) for v in range(g.n)]
            + [labeling[u]]
        )
    checks = [
        ("diam(G) = 3 = k", diameter(g) == 3),
        ("H is metric", red.instance.is_metric()),
        ("span == optimal hamiltonian path weight", labeling.span == int(path.length)),
        ("span == independent brute-force optimum", labeling.span == oracle),
        ("labeling feasible on G", labeling.is_feasible(g, spec)),
    ]
    return ExperimentResult(
        exp_id="E1",
        title="Figure 1 construction: L(2,2,1) on the diameter-3 example",
        headers=["v"] + list(names) + ["label"],
        rows=rows,
        checks=checks,
        notes=f"optimal order {path.order}, span {labeling.span}",
    )


# ---------------------------------------------------------------------------
# E2: Figure 2 — permutation -> weight-p runs == path partition
# ---------------------------------------------------------------------------
def e2_figure2_partition() -> ExperimentResult:
    """Rebuild Figure 2: the 9-vertex diam-2 example and its A/B split."""
    g = gen.paper_figure2_graph()
    p, q = 1, 2  # generic p <= q two-valued instance, as in the figure
    spec = LpSpec((p, q))
    red = reduce_to_path_tsp(g, spec)
    order = list(range(9))  # the figure's permutation v1..v9
    w = red.instance.weights
    a_pi = [i + 1 for i in range(8) if w[order[i], order[i + 1]] == p]
    b_pi = [i + 1 for i in range(8) if w[order[i], order[i + 1]] == q]
    span_pi = int(red.instance.path_length(order))
    formula = (g.n - 1) * p + (q - p) * len(b_pi)

    r2 = solve_lpq_diameter2(g, spec, method="exact")
    opt = solve_labeling(g, spec, engine="held_karp").span

    rows = [
        ["A_pi (weight-p positions)", str(a_pi)],
        ["B_pi (weight-q positions)", str(b_pi)],
        ["lambda(G, pi) along v1..v9", span_pi],
        ["(n-1)p + (q-p)|B_pi|", formula],
        ["paths in optimal partition s", r2.path_count],
        ["optimal span via Cor.2", r2.span],
        ["optimal span via Held-Karp", opt],
    ]
    checks = [
        ("figure permutation matches A={1,2,5,7}", a_pi == [1, 2, 5, 7]),
        ("figure permutation matches B={3,4,6,8}", b_pi == [3, 4, 6, 8]),
        ("Claim-1 span == closed formula", span_pi == formula),
        ("Cor.2 span == TSP span", r2.span == opt),
        (
            "Cor.2 formula with optimal s",
            r2.span == span_from_path_count(g.n, p, q, r2.path_count),
        ),
    ]
    return ExperimentResult(
        exp_id="E2",
        title="Figure 2: permutation runs vs PARTITION INTO PATHS (diam 2)",
        headers=["quantity", "value"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E3: Theorem 2 — O(nm) reduction: correctness + scaling
# ---------------------------------------------------------------------------
def e3_reduction_scaling(
    sizes: tuple[int, ...] = (50, 100, 200, 400), seeds: int = 3
) -> ExperimentResult:
    """Reduction wall time across n (diam-2 family) + exactness at small n."""
    rows: list[Sequence[Any]] = []
    times: list[float] = []
    for n in sizes:
        secs = []
        for s in range(seeds):
            g = gen.random_graph_with_diameter_at_most(n, 2, seed=s)
            t0 = time.perf_counter()
            red = reduce_to_path_tsp(g, L21)
            secs.append(time.perf_counter() - t0)
            assert red.instance.is_metric()
        avg = float(np.mean(secs))
        times.append(avg)
        rows.append([n, g.m, f"{avg * 1e3:.2f} ms"])

    # exactness: reduction+Held-Karp == brute force on small instances
    agree = True
    for s in range(25):
        g = gen.random_graph_with_diameter_at_most(7, 2, seed=100 + s)
        if solve_labeling(g, L21, engine="held_karp").span != exact_span(g, L21):
            agree = False
    # scaling shape: time grows subquadratically in n^2 terms... we check the
    # growth factor stays near (n2/n1)^2 (APSP on dense diam-2 graphs ~ n*m ~ n^3
    # worst case; we only require monotone growth and < cubic-in-ratio blowup)
    monotone = all(t2 >= t1 * 0.5 for t1, t2 in zip(times, times[1:]))
    checks = [
        ("Held-Karp-on-H == brute force (25 random diam-2 graphs)", agree),
        ("reduction time grows monotonically with n", monotone),
    ]
    return ExperimentResult(
        exp_id="E3",
        title="Theorem 2: O(nm) reduction — correctness and scaling",
        headers=["n", "m (last seed)", "reduce time"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E4: Corollary 1a — Held-Karp O(2^n n^2) growth
# ---------------------------------------------------------------------------
def e4_held_karp_growth(
    sizes: tuple[int, ...] = (10, 12, 14, 16), seeds: int = 2
) -> ExperimentResult:
    """Exact-solve wall time vs n: expect ~2x per added vertex."""
    rows: list[Sequence[Any]] = []
    times: list[float] = []
    for n in sizes:
        secs = []
        for s in range(seeds):
            g = gen.random_graph_with_diameter_at_most(n, 2, seed=s)
            red = reduce_to_path_tsp(g, L21)
            t0 = time.perf_counter()
            held_karp_path(red.instance)
            secs.append(time.perf_counter() - t0)
        avg = float(np.mean(secs))
        times.append(avg)
        factor = times[-1] / times[-2] if len(times) > 1 else float("nan")
        rows.append([n, f"{avg * 1e3:.2f} ms", f"{factor:.2f}x" if len(times) > 1 else "-"])
    # growth factor per +2 vertices should be roughly 4 (2 per vertex);
    # accept a broad band (numpy constant factors flatten small sizes)
    factors = [t2 / t1 for t1, t2 in zip(times, times[1:])]
    shape_ok = all(1.5 <= f <= 12.0 for f in factors[1:]) if len(factors) > 1 else True
    checks = [("growth factor per +2 vertices within [1.5, 12]", shape_ok)]
    return ExperimentResult(
        exp_id="E4",
        title="Corollary 1a: Held-Karp exact labeling, O(2^n n^2) growth",
        headers=["n", "solve time", "x prev"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E5: Corollary 1b — approximation ratios
# ---------------------------------------------------------------------------
def e5_approximation_ratio(
    n: int = 12, trials: int = 20
) -> ExperimentResult:
    """Hoogeveen vs double-tree vs Christofides-path ratios against exact."""
    engines = ["hoogeveen", "christofides_path", "double_tree"]
    stats: dict[str, list[float]] = {e: [] for e in engines}
    for t in range(trials):
        g = gen.random_graph_with_diameter_at_most(n, 2, seed=t)
        red = reduce_to_path_tsp(g, L21)
        opt = held_karp_path(red.instance).length
        for e in engines:
            approx = get_engine(e)(red.instance).length
            stats[e].append(approx / opt if opt > 0 else 1.0)
    rows = [
        [e, f"{np.mean(stats[e]):.4f}", f"{np.max(stats[e]):.4f}"]
        for e in engines
    ]
    checks = [
        ("hoogeveen max ratio <= 1.5", max(stats["hoogeveen"]) <= 1.5 + 1e-9),
        ("double_tree max ratio <= 2.0", max(stats["double_tree"]) <= 2.0 + 1e-9),
        (
            "hoogeveen mean beats double_tree mean",
            float(np.mean(stats["hoogeveen"])) <= float(np.mean(stats["double_tree"])) + 1e-12,
        ),
    ]
    return ExperimentResult(
        exp_id="E5",
        title="Corollary 1b: 1.5-approx (Hoogeveen) vs 2-approx baselines",
        headers=["engine", "mean ratio", "max ratio"],
        rows=rows,
        checks=checks,
        notes=f"{trials} random diam-2 graphs, n={n}, spec=L(2,1)",
    )


# ---------------------------------------------------------------------------
# E6: Corollary 2 — partition-into-paths route on diameter-2 graphs
# ---------------------------------------------------------------------------
def e6_partition_paths(
    n: int = 12, trials: int = 10
) -> ExperimentResult:
    """PIP route == TSP route; runtime comparison; mw certification."""
    rows: list[Sequence[Any]] = []
    agree = True
    for t in range(trials):
        g = gen.random_graph_with_diameter_at_most(n, 2, seed=t)
        t0 = time.perf_counter()
        r2 = solve_lpq_diameter2(g, L21, method="exact")
        t_pip = time.perf_counter() - t0
        t0 = time.perf_counter()
        hk = solve_labeling(g, L21, engine="held_karp")
        t_hk = time.perf_counter() - t0
        mw = modular_width(g)
        if r2.span != hk.span:
            agree = False
        rows.append(
            [t, r2.span, hk.span, r2.path_count, mw,
             f"{t_pip * 1e3:.1f} ms", f"{t_hk * 1e3:.1f} ms"]
        )
    checks = [("PIP span == Held-Karp span on all trials", agree)]
    return ExperimentResult(
        exp_id="E6",
        title="Corollary 2: diameter-2 L(2,1) via PARTITION INTO PATHS",
        headers=["trial", "span PIP", "span HK", "s", "mw(G)", "t PIP", "t HK"],
        rows=rows,
        checks=checks,
        notes="L(2,1) has p>q: the partition lives on the complement graph",
    )


# ---------------------------------------------------------------------------
# E7: practical claim — heuristic TSP engines
# ---------------------------------------------------------------------------
def e7_heuristic_engines(
    n: int = 14, trials: int = 8
) -> ExperimentResult:
    """Quality/time ladder: NN -> 2-opt -> or-opt -> LK vs exact."""
    engines = [
        "held_karp", "lk", "three_opt", "or_opt", "two_opt",
        "greedy_edge", "nearest_neighbor",
    ]
    workloads = [make_workload("diam2", n, seed=t) for t in range(trials)]
    runs = run_engines(workloads, L21, engines)
    per_engine: dict[str, list] = {e: [] for e in engines}
    for r in runs:
        per_engine[r.engine].append(r)
    rows = []
    for e in engines:
        rs = per_engine[e]
        rows.append(
            [
                e,
                f"{np.mean([r.ratio for r in rs]):.4f}",
                f"{np.max([r.ratio for r in rs]):.4f}",
                f"{np.mean([r.seconds for r in rs]) * 1e3:.1f} ms",
            ]
        )
    mean_ratio = {e: float(np.mean([r.ratio for r in per_engine[e]])) for e in engines}
    checks = [
        ("exact engine has ratio 1", mean_ratio["held_karp"] == 1.0),
        ("LK within 2% of optimal on average", mean_ratio["lk"] <= 1.02),
        (
            "LK at least as good as nearest neighbour",
            mean_ratio["lk"] <= mean_ratio["nearest_neighbor"] + 1e-12,
        ),
    ]
    return ExperimentResult(
        exp_id="E7",
        title="Practical engines: LK-style vs constructions vs exact (L(2,1))",
        headers=["engine", "mean ratio", "max ratio", "mean time"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E8: Theorem 4 / Corollary 3 — L(1) via coloring; pmax-approximation
# ---------------------------------------------------------------------------
def e8_l1_coloring(trials: int = 10) -> ExperimentResult:
    """L(1,1) via coloring == brute force; Cor.3 ratio; Prop.2 inequality."""
    from repro.partition.l1_labeling import l1_labeling_exact

    rows: list[Sequence[Any]] = []
    all_equal = True
    ratio_ok = True
    prop2_ok = True
    spec = LpSpec((2, 1))
    for t in range(trials):
        g = gen.random_connected_gnp(8, 0.35, seed=t)
        l1 = l1_labeling_exact(g, 2)
        oracle = exact_span(g, all_ones(2))
        approx = pmax_approx_labeling(g, spec)
        opt = exact_span(g, spec)
        nd2 = neighborhood_diversity(graph_power(g, 2))
        mw = modular_width(g)
        if l1.span != oracle:
            all_equal = False
        if opt > 0 and approx.span > spec.pmax * opt:
            ratio_ok = False
        if nd2 > mw:
            prop2_ok = False
        rows.append(
            [t, l1.span, oracle, approx.span, opt,
             f"{approx.span / opt:.2f}" if opt else "-", nd2, mw]
        )
    checks = [
        ("L(1,1) via coloring of G^2 == brute force", all_equal),
        ("Cor.3 span <= pmax * optimum", ratio_ok),
        ("Prop.2: nd(G^2) <= mw(G)", prop2_ok),
    ]
    return ExperimentResult(
        exp_id="E8",
        title="Theorem 4 / Corollary 3: L(1)-labeling and pmax-approximation",
        headers=["trial", "L11 span", "oracle", "Cor3 span", "L21 opt",
                 "ratio", "nd(G^2)", "mw(G)"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E9: Theorems 1 & 3 — hardness gadget equivalences
# ---------------------------------------------------------------------------
def e9_hardness_gadgets(n: int = 5) -> ExperimentResult:
    """Exhaustive gadget equivalence check on all graphs with ``n`` vertices."""
    import itertools as it

    from repro.errors import InfeasibleInstanceError
    from repro.hamiltonicity import (
        has_hamiltonian_cycle,
        has_hamiltonian_path,
        hc_to_hp_gadget,
        griggs_yeh_gadget,
    )
    from repro.labeling.exact import exact_span_or_fail
    from repro.graphs.graph import Graph

    pairs = list(it.combinations(range(n), 2))
    total = hc_ok = gy_ok = 0
    hc_yes = hp_yes = 0
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        g = Graph(n, edges)
        total += 1
        hc = has_hamiltonian_cycle(g)
        hc_yes += hc
        if hc == has_hamiltonian_path(hc_to_hp_gadget(g).graph):
            hc_ok += 1
        hp = has_hamiltonian_path(g)
        hp_yes += hp
        gy = griggs_yeh_gadget(g).graph
        try:
            exact_span_or_fail(gy, L21, n + 1)
            lab = True
        except InfeasibleInstanceError:
            lab = False
        if hp == lab:
            gy_ok += 1
    rows = [
        ["graphs checked", total],
        ["with hamiltonian cycle", hc_yes],
        ["with hamiltonian path", hp_yes],
        ["Theorem 1 equivalences holding", hc_ok],
        ["Theorem 3 equivalences holding", gy_ok],
    ]
    checks = [
        ("Theorem 1 gadget exact on all graphs", hc_ok == total),
        ("Theorem 3 gadget exact on all graphs", gy_ok == total),
    ]
    return ExperimentResult(
        exp_id="E9",
        title=f"Theorems 1 & 3: gadget equivalences, exhaustive n={n}",
        headers=["quantity", "value"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# E10: extension — parallel portfolio speed-up
# ---------------------------------------------------------------------------
def e10_parallel_portfolio(n: int = 150, engines_used: int = 4) -> ExperimentResult:
    """Best-of-K engines: sequential vs process-parallel wall time."""
    from repro.parallel.portfolio import portfolio_solve, sequential_portfolio

    g = gen.random_graph_with_diameter_at_most(n, 2, seed=0)
    engines = ["lk", "three_opt", "or_opt", "two_opt"][:engines_used]

    t0 = time.perf_counter()
    seq = sequential_portfolio(g, L21, engines)
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = portfolio_solve(g, L21, engines)
    t_par = time.perf_counter() - t0
    rows = [
        ["sequential best span", seq.span, f"{t_seq:.2f} s"],
        ["parallel best span", par.span, f"{t_par:.2f} s"],
        ["speed-up", f"{t_seq / t_par:.2f}x" if t_par > 0 else "-", ""],
    ]
    checks = [
        ("same best span", seq.span == par.span),
    ]
    import os

    cores = os.cpu_count() or 1
    return ExperimentResult(
        exp_id="E10",
        title="Parallel engine portfolio (extension)",
        headers=["quantity", "value", "time"],
        rows=rows,
        checks=checks,
        notes=(
            f"machine has {cores} core(s); wall-clock speed-up requires > 1 "
            "core — the reproducible check is span equality"
        ),
    )


# ---------------------------------------------------------------------------
# E11: extension — batch service with canonical-graph result cache
# ---------------------------------------------------------------------------
def e11_service_cache(
    n: int = 32, total: int = 16, rates: tuple[float, ...] = (0.0, 0.5, 0.9)
) -> ExperimentResult:
    """Batch throughput under duplicate-request streams vs from-scratch solving.

    Streams repeat graphs *up to vertex relabeling* — the service must
    recognise isomorphic requests via their canonical form, not object
    identity.  The no-cache baseline is one ``solve_labeling`` per request,
    i.e. exactly what every entry point did before the service existed.
    """
    from repro.graphs.operations import relabel
    from repro.service.batch import BatchSolver, SolveRequest
    from repro.service.cache import ResultCache

    engine = "lk"
    rows: list[Sequence[Any]] = []
    checks: list[tuple[str, bool]] = []
    speedup_90 = None
    for rate in rates:
        unique = max(1, round(total * (1.0 - rate)))
        bases = [
            gen.random_graph_with_diameter_at_most(n, 2, seed=17 * s)
            for s in range(unique)
        ]
        stream = []
        for i in range(total):
            g = bases[i % unique]
            perm = np.random.default_rng(1000 + i).permutation(g.n).tolist()
            stream.append(SolveRequest(relabel(g, perm), L21, engine=engine))

        t0 = time.perf_counter()
        baseline_spans = [
            solve_labeling(r.graph, r.spec, engine=engine).span for r in stream
        ]
        t_base = time.perf_counter() - t0

        cache = ResultCache()
        solver = BatchSolver(cache=cache, workers=1)
        t0 = time.perf_counter()
        results, report = solver.solve_batch(stream)
        t_batch = time.perf_counter() - t0

        feasible = all(
            res.labeling.is_feasible(req.graph, req.spec)
            for req, res in zip(stream, results)
        )
        expected_rate = (total - unique) / total
        checks.append(
            (f"{rate:.0%} stream: hit rate == {expected_rate:.0%}",
             abs(report.hit_rate - expected_rate) < 1e-9)
        )
        checks.append((f"{rate:.0%} stream: all labelings feasible", feasible))
        if rate == max(rates):
            speedup_90 = t_base / t_batch if t_batch > 0 else float("inf")
            checks.append(
                (f"{rate:.0%} stream: batch wall <= 25% of no-cache wall",
                 t_batch <= 0.25 * t_base)
            )
        rows.append(
            [
                f"{rate:.0%}",
                unique,
                f"{report.hit_rate:.0%}",
                f"{t_base:.3f} s",
                f"{t_batch:.3f} s",
                f"{t_base / t_batch:.1f}x" if t_batch > 0 else "-",
                f"{report.throughput:.0f}/s",
            ]
        )
        # the batch must agree with the from-scratch spans request by request
        checks.append(
            (f"{rate:.0%} stream: spans match no-cache solves",
             [r.span for r in results] == baseline_spans)
        )
    return ExperimentResult(
        exp_id="E11",
        title="Batch labeling service: canonical-graph cache (extension)",
        headers=["dup rate", "unique", "hit rate", "no-cache", "batch",
                 "speed-up", "throughput"],
        rows=rows,
        checks=checks,
        notes=(
            f"n={n}, {total} requests/stream, engine={engine}, workers=1; "
            f"90%-dup speed-up {speedup_90:.1f}x"
        ),
    )


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E1": e1_figure1_reduction,
    "E2": e2_figure2_partition,
    "E3": e3_reduction_scaling,
    "E4": e4_held_karp_growth,
    "E5": e5_approximation_ratio,
    "E6": e6_partition_paths,
    "E7": e7_heuristic_engines,
    "E8": e8_l1_coloring,
    "E9": e9_hardness_gadgets,
    "E10": e10_parallel_portfolio,
    "E11": e11_service_cache,
}


def main(selected: list[str] | None = None) -> list[ExperimentResult]:
    """Run (a subset of) the suite, print, and return the results."""
    names = selected or list(ALL_EXPERIMENTS)
    results = []
    for name in names:
        res = ALL_EXPERIMENTS[name]()
        print(res.render())
        print()
        results.append(res)
    failed = [r.exp_id for r in results if not r.passed]
    print(f"{len(results) - len(failed)}/{len(results)} experiments passed"
          + (f"; FAILED: {failed}" if failed else ""))
    return results


if __name__ == "__main__":
    main()
