"""Open-loop load generator for the :mod:`repro.net` HTTP front end.

The generator is **open-loop**: arrivals follow a seeded Poisson process
(exponential inter-arrival gaps) and each request is fired as its own
asyncio task the moment its arrival time comes due — the sender never
waits for a response before sending the next request.  This is the honest
way to measure a queueing system: a closed-loop client (send, wait, send)
self-throttles exactly when the server saturates, hiding the queueing
delay that real independent users would experience.  Here, when the
offered rate exceeds capacity, latency and the error rate climb in the
recorded numbers instead of silently flattening the offered load.

A run sweeps a list of offered rates (a ramp), holds each for a fixed
duration, and emits one :class:`StepReport` per step — p50/p95/p99
latency, achieved rps, error rate — which together form the saturation
curve the ``network_service`` perf scenario records into
``BENCH_<k>.json``.

Outcomes are three-valued, mirroring the server's QoS ladder: a 200 is
``completed``, a 429 (queue full) or 504 (deadline expired) is
``dropped`` — intentional shedding, never counted in ``error_rate`` — and
everything else (bad status, timeout, socket failure, unparseable or
infeasible body) is an ``error``.  Payloads built through
:func:`default_payload_instances` carry their instance, so every 200
response's labeling is re-verified feasible on the client side; a wire
answer that violates its own constraints counts as ``infeasible``, which
fails ``load --fail-on-errors`` exactly like an error.

Every request opens its own TCP connection and POSTs one pre-serialized
:class:`~repro.service.protocol.SolveRequest` to ``/solve``, so each
sample pays the full wire cost.  Payloads cycle through a small seeded
pool of distinct instances: the first lap is all cold solves, after which
the steady state exercises the submit → canonicalize → cache-hit path —
the regime a warm production server lives in.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from urllib.parse import urlparse

import numpy as np

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import L21, LpSpec
from repro.net.httpio import read_response, write_request
from repro.service.protocol import SolveRequest

#: Per-request client timeout (seconds); a timed-out request is an error.
REQUEST_TIMEOUT = 30.0

#: Settle gap between ramp steps, letting the previous step's stragglers
#: clear the server queue so steps measure their own offered rate.
STEP_GAP_SECONDS = 0.1

#: HTTP statuses that mean intentional shedding (backpressure 429, expired
#: deadline 504) — counted as ``dropped``, never as errors.
DROP_STATUSES = frozenset({429, 504})


@dataclass(frozen=True)
class PayloadInstance:
    """One pre-serialized ``/solve`` body plus the instance it encodes.

    Carrying the graph and spec next to the bytes lets the client re-verify
    every 200 response's labeling against the constraints it was asked to
    satisfy — the end-to-end feasibility floor of the overload smoke.
    """

    body: bytes
    graph: Graph
    spec: LpSpec


def default_payload_instances(
    count: int = 4,
    n: int = 12,
    engine: str = "lk",
    seed: int = 0,
    tier: str = "auto",
    deadline_ms: int | None = None,
) -> list[PayloadInstance]:
    """A seeded pool of ``/solve`` bodies with their instances attached.

    ``count`` distinct diameter-2 instances of ``n`` vertices — small
    enough that the solve itself is cheap, distinct enough that the first
    lap through the pool is all cache misses.  ``tier`` / ``deadline_ms``
    parameterize the QoS fields on every request.
    """
    payloads = []
    for i in range(count):
        graph = gen.random_graph_with_diameter_at_most(n, 2, seed=seed + i)
        request = SolveRequest(
            graph,
            L21,
            engine=engine,
            tag=f"load[{i}]",
            tier=tier,
            deadline_ms=deadline_ms,
        )
        payloads.append(
            PayloadInstance(
                body=json.dumps(request.to_json()).encode("utf-8"),
                graph=graph,
                spec=L21,
            )
        )
    return payloads


def default_payloads(
    count: int = 4, n: int = 12, engine: str = "lk", seed: int = 0
) -> list[bytes]:
    """The historical bytes-only payload pool (no client-side verification)."""
    return [
        p.body
        for p in default_payload_instances(
            count=count, n=n, engine=engine, seed=seed
        )
    ]


@dataclass(frozen=True)
class StepReport:
    """Measured outcome of one offered-rate step."""

    offered_rps: float
    duration: float              # intended send window (seconds)
    sent: int
    completed: int               # HTTP 200 responses (verified when possible)
    errors: int                  # bad statuses, timeouts, socket errors
    achieved_rps: float          # completed / wall (wall includes tail drain)
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: 429/504 responses — intentional shedding, excluded from errors.
    dropped: int = 0
    #: 200 responses answered by the approx tier.
    approx: int = 0
    #: 200 responses whose labeling failed client-side verification.
    infeasible: int = 0

    @property
    def error_rate(self) -> float:
        """Errors (incl. infeasible answers) as a fraction of requests sent.

        Drops are *not* errors: shedding under overload is the
        backpressure/QoS design working, so ``load --fail-on-errors``
        must not fail on it.
        """
        return (self.errors + self.infeasible) / self.sent if self.sent else 0.0

    def to_json(self) -> dict:
        """JSON row for reports and the perf trajectory."""
        return {
            "offered_rps": self.offered_rps,
            "duration": self.duration,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "dropped": self.dropped,
            "approx": self.approx,
            "infeasible": self.infeasible,
            "error_rate": round(self.error_rate, 4),
            "achieved_rps": round(self.achieved_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


@dataclass(frozen=True)
class LoadReport:
    """The whole ramp: one :class:`StepReport` per offered rate."""

    steps: tuple[StepReport, ...]

    @property
    def total_sent(self) -> int:
        """Requests sent across every step."""
        return sum(s.sent for s in self.steps)

    @property
    def total_errors(self) -> int:
        """Failed requests across every step (drops excluded)."""
        return sum(s.errors for s in self.steps)

    @property
    def total_dropped(self) -> int:
        """Intentionally shed requests (429/504) across every step."""
        return sum(s.dropped for s in self.steps)

    @property
    def total_approx(self) -> int:
        """Approx-tier answers across every step."""
        return sum(s.approx for s in self.steps)

    @property
    def total_infeasible(self) -> int:
        """Responses that failed client-side feasibility verification."""
        return sum(s.infeasible for s in self.steps)

    def to_json(self) -> dict:
        """JSON document (the ``repro-label load --json`` output)."""
        return {
            "steps": [s.to_json() for s in self.steps],
            "total_sent": self.total_sent,
            "total_errors": self.total_errors,
            "total_dropped": self.total_dropped,
            "total_approx": self.total_approx,
            "total_infeasible": self.total_infeasible,
        }


async def _exchange(host: str, port: int, payload: bytes) -> tuple[int, bytes]:
    """One fresh-connection ``/solve`` exchange; ``(status, body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        write_request(writer, "POST", "/solve", payload)
        await writer.drain()
        response = await read_response(reader)
    finally:
        writer.close()
    return response.status, response.body


def _classify(
    status: int, body: bytes, payload: PayloadInstance | bytes
) -> tuple[str, bool]:
    """``(kind, approx)`` for one wire outcome.

    ``kind`` is one of ``ok`` / ``dropped`` / ``infeasible`` / ``error``;
    feasibility is only checked when the payload carries its instance.
    """
    if status in DROP_STATUSES:
        return "dropped", False
    if status != 200:
        return "error", False
    try:
        record = json.loads(body)
        approx = record.get("tier") == "approx"
        if isinstance(payload, PayloadInstance):
            labeling = Labeling.from_sequence(record["labels"])
            if not labeling.is_feasible(payload.graph, payload.spec):
                return "infeasible", approx
    except (ValueError, KeyError, TypeError, ReproError):
        return "error", False
    return "ok", approx


async def _one_request(
    host: str,
    port: int,
    payload: PayloadInstance | bytes,
    timeout: float,
) -> tuple[str, float, bool]:
    """Fire one ``/solve`` over a fresh connection; ``(kind, latency, approx)``."""
    loop = asyncio.get_running_loop()
    body = payload.body if isinstance(payload, PayloadInstance) else payload
    t0 = loop.time()
    try:
        status, reply = await asyncio.wait_for(
            _exchange(host, port, body), timeout=timeout
        )
    except (ReproError, ConnectionError, OSError, TimeoutError,
            asyncio.TimeoutError, asyncio.IncompleteReadError):
        return "error", loop.time() - t0, False
    latency = loop.time() - t0
    kind, approx = _classify(status, reply, payload)
    return kind, latency, approx


async def _run_step(
    host: str,
    port: int,
    rate: float,
    duration: float,
    payloads: list,
    rng: np.random.Generator,
    timeout: float,
) -> StepReport:
    """Hold one offered rate for ``duration`` seconds; gather every sample."""
    loop = asyncio.get_running_loop()
    tasks: list[asyncio.Task] = []
    t_start = loop.time()
    deadline = t_start + duration
    t_next = t_start
    index = 0
    while t_next < deadline:
        delay = t_next - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _one_request(
                    host, port, payloads[index % len(payloads)], timeout
                )
            )
        )
        index += 1
        # Poisson arrivals: exponential gaps at the offered rate.  The next
        # send time advances by the *schedule*, not by when this iteration
        # actually ran, so a slow response path cannot throttle the sender.
        t_next += float(rng.exponential(1.0 / rate))
    outcomes = await asyncio.gather(*tasks)
    wall = loop.time() - t_start         # includes the tail drain
    latencies = [sec for kind, sec, _ in outcomes if kind == "ok"]
    counts = {"ok": 0, "dropped": 0, "infeasible": 0, "error": 0}
    approx = 0
    for kind, _sec, was_approx in outcomes:
        counts[kind] += 1
        approx += was_approx
    lat_ms = np.asarray(latencies) * 1e3
    return StepReport(
        offered_rps=rate,
        duration=duration,
        sent=len(tasks),
        completed=counts["ok"],
        errors=counts["error"],
        dropped=counts["dropped"],
        approx=approx,
        infeasible=counts["infeasible"],
        achieved_rps=counts["ok"] / wall if wall > 0 else 0.0,
        p50_ms=float(np.percentile(lat_ms, 50)) if latencies else 0.0,
        p95_ms=float(np.percentile(lat_ms, 95)) if latencies else 0.0,
        p99_ms=float(np.percentile(lat_ms, 99)) if latencies else 0.0,
    )


async def run_ramp(
    host: str,
    port: int,
    rates: list[float],
    duration: float = 2.0,
    payloads: list | None = None,
    seed: int = 0,
    timeout: float = REQUEST_TIMEOUT,
) -> LoadReport:
    """Sweep the offered rates in order; one :class:`StepReport` each.

    ``payloads`` may hold raw ``bytes`` bodies or
    :class:`PayloadInstance` objects; the latter enable client-side
    feasibility verification of every 200 response.
    """
    if not rates or any(r <= 0 for r in rates):
        raise ReproError(f"rates must be positive, got {rates}")
    if payloads is None:
        payloads = default_payload_instances(seed=seed)
    rng = np.random.default_rng(seed)
    steps = []
    for rate in rates:
        steps.append(
            await _run_step(host, port, rate, duration, payloads, rng, timeout)
        )
        await asyncio.sleep(STEP_GAP_SECONDS)
    return LoadReport(steps=tuple(steps))


def run_load(
    url: str,
    rates: list[float],
    duration: float = 2.0,
    payloads: list | None = None,
    seed: int = 0,
    timeout: float = REQUEST_TIMEOUT,
) -> LoadReport:
    """Synchronous entry point: ramp ``url`` (e.g. ``http://127.0.0.1:8425``).

    Runs the whole sweep on a private event loop; safe to call from any
    thread that is not already inside asyncio.
    """
    parsed = urlparse(url if "//" in url else f"http://{url}")
    if parsed.hostname is None or parsed.port is None:
        raise ReproError(f"load target needs host and port, got {url!r}")
    return asyncio.run(
        run_ramp(
            parsed.hostname,
            parsed.port,
            rates,
            duration=duration,
            payloads=payloads,
            seed=seed,
            timeout=timeout,
        )
    )
