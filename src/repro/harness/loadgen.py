"""Open-loop load generator for the :mod:`repro.net` HTTP front end.

The generator is **open-loop**: arrivals follow a seeded Poisson process
(exponential inter-arrival gaps) and each request is fired as its own
asyncio task the moment its arrival time comes due — the sender never
waits for a response before sending the next request.  This is the honest
way to measure a queueing system: a closed-loop client (send, wait, send)
self-throttles exactly when the server saturates, hiding the queueing
delay that real independent users would experience.  Here, when the
offered rate exceeds capacity, latency and the error rate climb in the
recorded numbers instead of silently flattening the offered load.

A run sweeps a list of offered rates (a ramp), holds each for a fixed
duration, and emits one :class:`StepReport` per step — p50/p95/p99
latency, achieved rps, error rate — which together form the saturation
curve the ``network_service`` perf scenario records into
``BENCH_<k>.json``.

Every request opens its own TCP connection and POSTs one pre-serialized
:class:`~repro.service.protocol.SolveRequest` to ``/solve``, so each
sample pays the full wire cost.  Payloads cycle through a small seeded
pool of distinct instances: the first lap is all cold solves, after which
the steady state exercises the submit → canonicalize → cache-hit path —
the regime a warm production server lives in.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from urllib.parse import urlparse

import numpy as np

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.labeling.spec import L21
from repro.net.httpio import read_response, write_request
from repro.service.protocol import SolveRequest

#: Per-request client timeout (seconds); a timed-out request is an error.
REQUEST_TIMEOUT = 30.0

#: Settle gap between ramp steps, letting the previous step's stragglers
#: clear the server queue so steps measure their own offered rate.
STEP_GAP_SECONDS = 0.1


def default_payloads(
    count: int = 4, n: int = 12, engine: str = "lk", seed: int = 0
) -> list[bytes]:
    """A seeded pool of pre-serialized ``/solve`` bodies.

    ``count`` distinct diameter-2 instances of ``n`` vertices — small
    enough that the solve itself is cheap, distinct enough that the first
    lap through the pool is all cache misses.
    """
    payloads = []
    for i in range(count):
        graph = gen.random_graph_with_diameter_at_most(n, 2, seed=seed + i)
        request = SolveRequest(graph, L21, engine=engine, tag=f"load[{i}]")
        payloads.append(json.dumps(request.to_json()).encode("utf-8"))
    return payloads


@dataclass(frozen=True)
class StepReport:
    """Measured outcome of one offered-rate step."""

    offered_rps: float
    duration: float              # intended send window (seconds)
    sent: int
    completed: int               # HTTP 200 responses
    errors: int                  # non-200 responses, timeouts, socket errors
    achieved_rps: float          # completed / wall (wall includes tail drain)
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def error_rate(self) -> float:
        """Errors as a fraction of requests sent."""
        return self.errors / self.sent if self.sent else 0.0

    def to_json(self) -> dict:
        """JSON row for reports and the perf trajectory."""
        return {
            "offered_rps": self.offered_rps,
            "duration": self.duration,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "achieved_rps": round(self.achieved_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


@dataclass(frozen=True)
class LoadReport:
    """The whole ramp: one :class:`StepReport` per offered rate."""

    steps: tuple[StepReport, ...]

    @property
    def total_sent(self) -> int:
        """Requests sent across every step."""
        return sum(s.sent for s in self.steps)

    @property
    def total_errors(self) -> int:
        """Failed requests across every step."""
        return sum(s.errors for s in self.steps)

    def to_json(self) -> dict:
        """JSON document (the ``repro-label load --json`` output)."""
        return {
            "steps": [s.to_json() for s in self.steps],
            "total_sent": self.total_sent,
            "total_errors": self.total_errors,
        }


async def _exchange(host: str, port: int, payload: bytes) -> int:
    """One fresh-connection ``/solve`` exchange; returns the HTTP status."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        write_request(writer, "POST", "/solve", payload)
        await writer.drain()
        response = await read_response(reader)
    finally:
        writer.close()
    return response.status


async def _one_request(
    host: str, port: int, payload: bytes, timeout: float
) -> tuple[bool, float]:
    """Fire one ``/solve`` over a fresh connection; ``(ok, latency_s)``."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    try:
        status = await asyncio.wait_for(
            _exchange(host, port, payload), timeout=timeout
        )
        return status == 200, loop.time() - t0
    except (ReproError, ConnectionError, OSError, TimeoutError,
            asyncio.TimeoutError, asyncio.IncompleteReadError):
        return False, loop.time() - t0


async def _run_step(
    host: str,
    port: int,
    rate: float,
    duration: float,
    payloads: list[bytes],
    rng: np.random.Generator,
    timeout: float,
) -> StepReport:
    """Hold one offered rate for ``duration`` seconds; gather every sample."""
    loop = asyncio.get_running_loop()
    tasks: list[asyncio.Task] = []
    t_start = loop.time()
    deadline = t_start + duration
    t_next = t_start
    index = 0
    while t_next < deadline:
        delay = t_next - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _one_request(
                    host, port, payloads[index % len(payloads)], timeout
                )
            )
        )
        index += 1
        # Poisson arrivals: exponential gaps at the offered rate.  The next
        # send time advances by the *schedule*, not by when this iteration
        # actually ran, so a slow response path cannot throttle the sender.
        t_next += float(rng.exponential(1.0 / rate))
    outcomes = await asyncio.gather(*tasks)
    wall = loop.time() - t_start         # includes the tail drain
    latencies = [sec for ok, sec in outcomes if ok]
    errors = sum(1 for ok, _ in outcomes if not ok)
    lat_ms = np.asarray(latencies) * 1e3
    return StepReport(
        offered_rps=rate,
        duration=duration,
        sent=len(tasks),
        completed=len(latencies),
        errors=errors,
        achieved_rps=len(latencies) / wall if wall > 0 else 0.0,
        p50_ms=float(np.percentile(lat_ms, 50)) if latencies else 0.0,
        p95_ms=float(np.percentile(lat_ms, 95)) if latencies else 0.0,
        p99_ms=float(np.percentile(lat_ms, 99)) if latencies else 0.0,
    )


async def run_ramp(
    host: str,
    port: int,
    rates: list[float],
    duration: float = 2.0,
    payloads: list[bytes] | None = None,
    seed: int = 0,
    timeout: float = REQUEST_TIMEOUT,
) -> LoadReport:
    """Sweep the offered rates in order; one :class:`StepReport` each."""
    if not rates or any(r <= 0 for r in rates):
        raise ReproError(f"rates must be positive, got {rates}")
    if payloads is None:
        payloads = default_payloads(seed=seed)
    rng = np.random.default_rng(seed)
    steps = []
    for rate in rates:
        steps.append(
            await _run_step(host, port, rate, duration, payloads, rng, timeout)
        )
        await asyncio.sleep(STEP_GAP_SECONDS)
    return LoadReport(steps=tuple(steps))


def run_load(
    url: str,
    rates: list[float],
    duration: float = 2.0,
    payloads: list[bytes] | None = None,
    seed: int = 0,
    timeout: float = REQUEST_TIMEOUT,
) -> LoadReport:
    """Synchronous entry point: ramp ``url`` (e.g. ``http://127.0.0.1:8425``).

    Runs the whole sweep on a private event loop; safe to call from any
    thread that is not already inside asyncio.
    """
    parsed = urlparse(url if "//" in url else f"http://{url}")
    if parsed.hostname is None or parsed.port is None:
        raise ReproError(f"load target needs host and port, got {url!r}")
    return asyncio.run(
        run_ramp(
            parsed.hostname,
            parsed.port,
            rates,
            duration=duration,
            payloads=payloads,
            seed=seed,
            timeout=timeout,
        )
    )
