"""Plain-text and markdown table rendering for experiment output.

No plotting dependency: the paper's "figures" are reproduced as tables /
series printed by the benchmark harness, which is what EXPERIMENTS.md
records.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(x: Any) -> str:
    """Format one cell: floats get adaptive precision, rest ``str``."""
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) < 1e-3 or abs(x) >= 1e6:
            return f"{x:.2e}"
        return f"{x:.4f}".rstrip("0").rstrip(".")
    return str(x)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(items: Sequence[str]) -> str:
        """Join one row's cells at the computed column widths."""
        return "  ".join(s.ljust(w) for s, w in zip(items, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def render_markdown(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured markdown table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    out.extend("| " + " | ".join(r) + " |" for r in cells)
    return "\n".join(out)
