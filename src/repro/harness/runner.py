"""Timed engine sweeps over workloads, with verified outputs.

``run_engines`` is the workhorse behind experiments E5/E7: it runs each
named engine on each workload through the *full* labeling pipeline
(reduce -> engine -> reconstruct -> verify) and records span, wall time and
the ratio to the best-known span.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.graphs.analysis import get_analysis
from repro.harness.workloads import Workload
from repro.labeling.spec import LpSpec
from repro.reduction.solver import solve_labeling


@dataclass(frozen=True)
class EngineRun:
    """One (engine, workload) measurement."""

    engine: str
    workload: str
    n: int
    span: int
    seconds: float
    exact: bool
    ratio: float | None = None   # span / best span over the sweep row


def time_call(fn: Callable[[], Any]) -> tuple[Any, float]:
    """``(result, wall_seconds)`` for one call."""
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run_engines(
    workloads: list[Workload],
    spec: LpSpec,
    engines: list[str],
    verify: bool = True,
) -> list[EngineRun]:
    """Run every engine on every workload; annotate ratios per workload.

    The ratio divides by the smallest span any engine achieved on that
    workload (the optimum when an exact engine is in the list).
    """
    rows: list[EngineRun] = []
    for wl in workloads:
        per_wl: list[EngineRun] = []
        # one shared analysis per workload: every engine's reduce + verify
        # reads the same distance matrix; prewarming it here keeps the
        # per-engine timings below free of APSP cost and thus comparable
        analysis = get_analysis(wl.graph)
        analysis.distances
        for engine in engines:
            result, secs = time_call(
                lambda e=engine: solve_labeling(
                    wl.graph, spec, engine=e, verify=verify, analysis=analysis
                )
            )
            per_wl.append(
                EngineRun(
                    engine=engine,
                    workload=wl.label,
                    n=wl.n,
                    span=result.span,
                    seconds=secs,
                    exact=result.exact,
                )
            )
        best = min(r.span for r in per_wl)
        rows.extend(
            EngineRun(
                engine=r.engine,
                workload=r.workload,
                n=r.n,
                span=r.span,
                seconds=r.seconds,
                exact=r.exact,
                ratio=r.span / best if best > 0 else 1.0,
            )
            for r in per_wl
        )
    return rows
