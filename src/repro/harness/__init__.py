"""Experiment harness: workloads, timed runs, tables, the E1–E10 suite."""

from repro.harness.workloads import WORKLOADS, Workload, make_workload
from repro.harness.runner import EngineRun, run_engines, time_call
from repro.harness.tables import render_table, render_markdown
from repro.harness import experiments

__all__ = [
    "WORKLOADS",
    "Workload",
    "make_workload",
    "EngineRun",
    "run_engines",
    "time_call",
    "render_table",
    "render_markdown",
    "experiments",
]
