"""Experiment harness: workloads, timed runs, tables, the E1–E10 suite,
and the open-loop network load generator (:mod:`repro.harness.loadgen`)."""

from repro.harness.workloads import WORKLOADS, Workload, make_workload
from repro.harness.runner import EngineRun, run_engines, time_call
from repro.harness.loadgen import LoadReport, StepReport, run_load
from repro.harness.tables import render_table, render_markdown
from repro.harness import experiments

__all__ = [
    "WORKLOADS",
    "Workload",
    "make_workload",
    "EngineRun",
    "run_engines",
    "time_call",
    "LoadReport",
    "StepReport",
    "run_load",
    "render_table",
    "render_markdown",
    "experiments",
]
