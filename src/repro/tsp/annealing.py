"""Simulated annealing for path TSP — a diversity engine for the portfolio.

A different search family from the LK-style descent: random 2-opt /
Or-1-move proposals accepted by the Metropolis criterion under a geometric
cooling schedule.  On the reduction's small-range metrics (all weights in
``[p_min, 2 p_min]``) plateaus are everywhere, which is exactly where
annealing's uphill moves pay off relative to strict descent.

Deterministic for a fixed seed; registered as ``"anneal"`` in the engine
portfolio.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.construction import nearest_neighbor_path
from repro.tsp.instance import TSPInstance
from repro.tsp.local_search import two_opt_path
from repro.tsp.tour import HamPath


def simulated_annealing_path(
    instance: TSPInstance,
    seed: int | np.random.Generator | None = 0,
    start: HamPath | None = None,
    initial_temp: float | None = None,
    cooling: float = 0.995,
    steps_per_temp: int | None = None,
    min_temp_ratio: float = 1e-3,
) -> HamPath:
    """Annealed path search; finishes with one 2-opt descent (polish).

    Parameters tune the classic geometric schedule.  ``initial_temp``
    defaults to the mean edge weight (accepts most early uphill moves);
    annealing stops when the temperature falls below
    ``min_temp_ratio * initial_temp``.

    >>> inst = TSPInstance.random_metric(10, seed=1)
    >>> p = simulated_annealing_path(inst, seed=0)
    >>> sorted(p.order) == list(range(10))
    True
    """
    n = instance.n
    if n <= 3:
        from repro.tsp.lin_kernighan import held_trivial
        return held_trivial(instance)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    w = instance.weights

    cur = list((start or nearest_neighbor_path(instance, 0)).order)
    cur_len = instance.path_length(cur)
    best = list(cur)
    best_len = cur_len

    temp = initial_temp if initial_temp is not None else float(
        w[~np.eye(n, dtype=bool)].mean()
    )
    floor = temp * min_temp_ratio
    steps = steps_per_temp if steps_per_temp is not None else 4 * n

    def delta_two_opt(i: int, j: int) -> float:
        """Cost change of reversing cur[i..j] (path objective)."""
        d = 0.0
        if i > 0:
            d += w[cur[i - 1], cur[j]] - w[cur[i - 1], cur[i]]
        if j < n - 1:
            d += w[cur[i], cur[j + 1]] - w[cur[j], cur[j + 1]]
        return float(d)

    while temp > floor:
        for _ in range(steps):
            i = int(rng.integers(0, n - 1))
            j = int(rng.integers(i + 1, n))
            d = delta_two_opt(i, j)
            if d <= 0 or rng.random() < np.exp(-d / temp):
                cur[i : j + 1] = cur[i : j + 1][::-1]
                cur_len += d
                if cur_len < best_len - 1e-12:
                    best_len = cur_len
                    best = list(cur)
        temp *= cooling

    polished = two_opt_path(instance, HamPath.from_order(instance, best))
    return polished
