"""Christofides 1.5-approximation for metric cycle TSP.

MST + minimum-weight perfect matching on the odd-degree vertices + Eulerian
circuit + shortcut.  The matching engine is exact for odd sets up to 18
vertices (see :mod:`repro.tsp.matching`), which covers every instance the
benchmark suite certifies ratios on.
"""

from __future__ import annotations

from repro.tsp.eulerian import Multigraph, eulerian_circuit, shortcut
from repro.tsp.instance import TSPInstance
from repro.tsp.matching import min_weight_perfect_matching
from repro.tsp.mst import prim_mst
from repro.tsp.tour import Tour


def christofides_cycle(instance: TSPInstance, require_metric: bool = True) -> Tour:
    """A closed tour of weight at most 1.5x the optimal tour (metric inputs).

    >>> inst = TSPInstance.random_metric(8, seed=1)
    >>> tour = christofides_cycle(inst)
    >>> sorted(tour.order) == list(range(8))
    True
    """
    if require_metric:
        instance.require_metric()
    n = instance.n
    if n <= 1:
        return Tour(tuple(range(n)), 0.0)
    if n == 2:
        return Tour((0, 1), 2.0 * instance.weight(0, 1))

    mst_edges = prim_mst(instance)
    mg = Multigraph(n)
    for u, v in mst_edges:
        mg.add_edge(u, v)
    odd = mg.odd_vertices()
    for u, v in min_weight_perfect_matching(instance.weights, odd):
        mg.add_edge(u, v)
    walk = eulerian_circuit(mg, start=0)
    order = shortcut(walk)
    return Tour.from_order(instance, order)
