"""Value objects for solver outputs: Hamiltonian paths and closed tours."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import SolverError
from repro.tsp.instance import TSPInstance


def _check_permutation(order: Sequence[int], n: int) -> tuple[int, ...]:
    """Coerce and verify ``order`` is a permutation of range(n)."""
    t = tuple(int(v) for v in order)
    if sorted(t) != list(range(n)):
        raise SolverError(f"order {t!r} is not a permutation of 0..{n - 1}")
    return t


@dataclass(frozen=True)
class HamPath:
    """A Hamiltonian path: a vertex permutation plus its total weight."""

    order: tuple[int, ...]
    length: float

    @classmethod
    def from_order(cls, instance: TSPInstance, order: Sequence[int]) -> "HamPath":
        """Build a path from an order, computing its length on ``instance``."""
        t = _check_permutation(order, instance.n)
        return cls(t, instance.path_length(t))

    def reversed(self) -> "HamPath":
        """The same path walked end-to-start (same length)."""
        return HamPath(tuple(reversed(self.order)), self.length)

    @property
    def endpoints(self) -> tuple[int, int]:
        """First and last vertex of the path."""
        if not self.order:
            raise SolverError("empty path has no endpoints")
        return self.order[0], self.order[-1]

    def __iter__(self) -> Iterator[int]:
        """Iterate the path's vertex order."""
        return iter(self.order)

    def __len__(self) -> int:
        """Number of vertices on the path."""
        return len(self.order)


@dataclass(frozen=True)
class Tour:
    """A closed tour: a vertex permutation (implicitly closed) plus weight."""

    order: tuple[int, ...]
    length: float

    @classmethod
    def from_order(cls, instance: TSPInstance, order: Sequence[int]) -> "Tour":
        """Build a tour from an order, computing its cycle length."""
        t = _check_permutation(order, instance.n)
        return cls(t, instance.cycle_length(t))

    def to_path_dropping_heaviest_edge(self, instance: TSPInstance) -> HamPath:
        """Open the tour at its heaviest edge — a standard cycle→path move."""
        if len(self.order) <= 1:
            return HamPath(self.order, 0.0)
        w = instance.weights
        n = len(self.order)
        heaviest, at = -1.0, 0
        for i in range(n):
            u, v = self.order[i], self.order[(i + 1) % n]
            if w[u, v] > heaviest:
                heaviest, at = float(w[u, v]), i
        order = self.order[at + 1 :] + self.order[: at + 1]
        return HamPath.from_order(instance, order)

    def __iter__(self) -> Iterator[int]:
        """Iterate the tour's vertex order."""
        return iter(self.order)

    def __len__(self) -> int:
        """Number of vertices on the tour."""
        return len(self.order)
