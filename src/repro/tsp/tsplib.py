"""TSPLIB interchange: write/read reduced instances for external solvers.

The paper's practical proposal is to hand the reduced instance to Concorde
or LKH.  Those codes speak TSPLIB; this module writes the reduction's dense
weight matrix in ``EXPLICIT / FULL_MATRIX`` form (weights are small
integers, so the format is exact) and reads tour files back, closing the
loop:  ``reduce -> write_tsplib -> external solver -> read_tour ->
labeling_from_order``.

The round-trip is tested in-repo against our own engines; running an actual
external binary is out of scope (offline), but the files produced here are
byte-level valid TSPLIB.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, TextIO

import numpy as np

from repro.errors import ReproError
from repro.tsp.instance import TSPInstance


def write_tsplib(
    instance: TSPInstance,
    target: TextIO | str | Path,
    name: str = "repro_reduction",
    comment: str = "L(p)-labeling reduction (arXiv:2303.01290)",
) -> None:
    """Write the instance as a TSPLIB ``EXPLICIT FULL_MATRIX`` TSP file.

    Weights must be integral (the reduction always produces integers).
    """
    w = instance.weights
    if not np.allclose(w, np.round(w)):
        raise ReproError("TSPLIB explicit export needs integral weights")
    own, fh = _open(target, "w")
    try:
        fh.write(f"NAME: {name}\n")
        fh.write("TYPE: TSP\n")
        fh.write(f"COMMENT: {comment}\n")
        fh.write(f"DIMENSION: {instance.n}\n")
        fh.write("EDGE_WEIGHT_TYPE: EXPLICIT\n")
        fh.write("EDGE_WEIGHT_FORMAT: FULL_MATRIX\n")
        fh.write("EDGE_WEIGHT_SECTION\n")
        ints = np.round(w).astype(np.int64)
        for row in ints:
            fh.write(" ".join(str(int(x)) for x in row) + "\n")
        fh.write("EOF\n")
    finally:
        if own:
            fh.close()


def read_tsplib(source: TextIO | str | Path) -> TSPInstance:
    """Read an ``EXPLICIT FULL_MATRIX`` TSPLIB file back into an instance."""
    own, fh = _open(source, "r")
    try:
        dimension: int | None = None
        fmt: str | None = None
        rows: list[int] = []
        in_weights = False
        for raw in fh:
            line = raw.strip()
            if not line or line == "EOF":
                if line == "EOF":
                    break
                continue
            if in_weights:
                rows.extend(int(tok) for tok in line.split())
                continue
            if ":" in line:
                key, _, value = line.partition(":")
                key = key.strip().upper()
                value = value.strip()
                if key == "DIMENSION":
                    dimension = int(value)
                elif key == "EDGE_WEIGHT_FORMAT":
                    fmt = value.upper()
                elif key == "EDGE_WEIGHT_TYPE" and value.upper() != "EXPLICIT":
                    raise ReproError(
                        f"only EXPLICIT weights supported, got {value}"
                    )
            elif line.upper().startswith("EDGE_WEIGHT_SECTION"):
                in_weights = True
        if dimension is None:
            raise ReproError("TSPLIB file missing DIMENSION")
        if fmt != "FULL_MATRIX":
            raise ReproError(f"only FULL_MATRIX supported, got {fmt}")
        if len(rows) != dimension * dimension:
            raise ReproError(
                f"weight section has {len(rows)} entries, "
                f"expected {dimension * dimension}"
            )
        w = np.asarray(rows, dtype=np.float64).reshape(dimension, dimension)
        return TSPInstance(w)
    finally:
        if own:
            fh.close()


def write_tour(
    order: Sequence[int], target: TextIO | str | Path, name: str = "repro_tour"
) -> None:
    """Write a TSPLIB ``.tour`` file (1-based vertices, -1 terminator)."""
    own, fh = _open(target, "w")
    try:
        fh.write(f"NAME: {name}\n")
        fh.write("TYPE: TOUR\n")
        fh.write(f"DIMENSION: {len(order)}\n")
        fh.write("TOUR_SECTION\n")
        for v in order:
            fh.write(f"{int(v) + 1}\n")
        fh.write("-1\nEOF\n")
    finally:
        if own:
            fh.close()


def read_tour(source: TextIO | str | Path) -> list[int]:
    """Read a TSPLIB ``.tour`` file into a 0-based vertex list."""
    own, fh = _open(source, "r")
    try:
        order: list[int] = []
        in_tour = False
        for raw in fh:
            line = raw.strip()
            if line.upper().startswith("TOUR_SECTION"):
                in_tour = True
                continue
            if not in_tour:
                continue
            for tok in line.split():
                val = int(tok)
                if val == -1:
                    return order
                order.append(val - 1)
            if line == "EOF":
                break
        if not order:
            raise ReproError("tour file had no TOUR_SECTION entries")
        return order
    finally:
        if own:
            fh.close()


def _open(target: TextIO | str | Path, mode: str) -> tuple[bool, TextIO]:
    """Return ``(owns_handle, file)`` for a path or passthrough stream."""
    if isinstance(target, (str, Path)):
        return True, open(target, mode, encoding="utf-8")
    return False, target
