"""Held–Karp dynamic programming for path and cycle TSP.

This is the algorithm behind Corollary 1: after the Theorem-2 reduction,
``L(p)``-labeling of a small-diameter graph is solved exactly in
``O(2^n n^2)`` time.  The DP table is a ``(2^n, n)`` NumPy array; the inner
relaxation is a broadcasted row-plus-matrix minimum, so the per-subset work
is a single vectorized ``O(n^2)`` kernel (per the hpc-parallel guides:
keep the hot loop array-shaped).

The path variant leaves **both endpoints free**, which is exactly the shape
of the reduced labeling problem (any optimal labeling order will do).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import HamPath, Tour

#: Hard cap on exact instance size; the table is ``2^n * n`` doubles.
MAX_EXACT_N = 20


def _check_size(n: int, max_n: int) -> None:
    """Refuse instances beyond the DP's practical size limit."""
    if n > max_n:
        raise ReproError(
            f"Held-Karp needs 2^n*n memory; n={n} exceeds the configured cap "
            f"{max_n} (raise max_n explicitly if you really mean it)"
        )


def held_karp_path(instance: TSPInstance, max_n: int = MAX_EXACT_N) -> HamPath:
    """Exact minimum-weight Hamiltonian path, both endpoints free.

    Runs in ``O(2^n n^2)`` time and ``O(2^n n)`` space.

    >>> inst = TSPInstance.random_metric(6, seed=0)
    >>> p = held_karp_path(inst)
    >>> sorted(p.order) == list(range(6))
    True
    """
    n = instance.n
    if n == 0:
        return HamPath((), 0.0)
    if n == 1:
        return HamPath((0,), 0.0)
    _check_size(n, max_n)

    w = instance.weights
    full = (1 << n) - 1
    dp = np.full((1 << n, n), np.inf)
    for j in range(n):
        dp[1 << j, j] = 0.0

    all_v = np.arange(n)
    for s in range(1, full + 1):
        row = dp[s]
        finite = row < np.inf
        if not finite.any():
            continue
        # best[k] = min over j in S of dp[S, j] + w[j, k]
        best = (row[finite, None] + w[finite]).min(axis=0)
        for k in all_v[~_bits(s, n)]:
            t = s | (1 << k)
            if best[k] < dp[t, k]:
                dp[t, k] = best[k]

    end = int(np.argmin(dp[full]))
    length = float(dp[full, end])
    order = _reconstruct_path(dp, w, full, end)
    return HamPath(tuple(order), length)


def held_karp_cycle(instance: TSPInstance, max_n: int = MAX_EXACT_N) -> Tour:
    """Exact minimum-weight closed tour (classic Held–Karp, anchored at 0)."""
    n = instance.n
    if n == 0:
        return Tour((), 0.0)
    if n == 1:
        return Tour((0,), 0.0)
    if n == 2:
        return Tour((0, 1), 2.0 * instance.weight(0, 1))
    _check_size(n, max_n)

    w = instance.weights
    full = (1 << n) - 1
    dp = np.full((1 << n, n), np.inf)
    dp[1, 0] = 0.0  # paths start at vertex 0

    all_v = np.arange(n)
    for s in range(1, full + 1, 2):  # only subsets containing vertex 0
        row = dp[s]
        finite = row < np.inf
        if not finite.any():
            continue
        best = (row[finite, None] + w[finite]).min(axis=0)
        for k in all_v[~_bits(s, n)]:
            t = s | (1 << k)
            if best[k] < dp[t, k]:
                dp[t, k] = best[k]

    closing = dp[full] + w[:, 0]
    end = int(np.argmin(closing))
    length = float(closing[end])
    order = _reconstruct_path(dp, w, full, end)
    if order[0] != 0:
        order.reverse()
    return Tour(tuple(order), length)


def _bits(s: int, n: int) -> np.ndarray:
    """Boolean membership vector of subset ``s`` over ``n`` vertices."""
    return (s >> np.arange(n)) & 1 == 1


def _reconstruct_path(dp: np.ndarray, w: np.ndarray, full: int, end: int) -> list[int]:
    """Walk the DP table backwards from (full, end) to recover the order."""
    order = [end]
    s, j = full, end
    while s != (1 << j):
        prev_s = s & ~(1 << j)
        # predecessor j' satisfies dp[prev_s, j'] + w[j', j] == dp[s, j]
        candidates = dp[prev_s] + w[:, j]
        candidates[~_bits(prev_s, w.shape[0])] = np.inf
        jp = int(np.argmin(np.abs(candidates - dp[s, j])))
        order.append(jp)
        s, j = prev_s, jp
    order.reverse()
    return order
