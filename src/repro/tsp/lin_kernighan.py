"""LK-style iterated local search for Hamiltonian paths.

The paper's practical pitch is "use LKH/Concorde as the engine".  Those are
external C codes; this module is the same algorithmic family implemented
from scratch: greedy construction, deep 2-opt + Or-opt descent, and
double-bridge kicks with best-solution bookkeeping (i.e. *chained* LK in the
sense of Applegate–Cook–Rohe).  It is the strongest heuristic in this
package and the default engine of the high-level solver for instances too
big for Held–Karp.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.construction import greedy_edge_path, nearest_neighbor_path
from repro.tsp.instance import TSPInstance
from repro.tsp.local_search import or_opt_path, two_opt_path
from repro.tsp.tour import HamPath

_EPS = 1e-10


def lk_style_path(
    instance: TSPInstance,
    kicks: int = 20,
    seed: int | np.random.Generator | None = None,
    start: HamPath | None = None,
) -> HamPath:
    """Chained LK-style search: descent + ``kicks`` double-bridge restarts.

    Parameters
    ----------
    kicks:
        Number of perturbation/re-descent cycles after the initial descent.
        0 gives a plain deep local search.
    seed:
        RNG seed for the perturbations (deterministic for a fixed seed).
    start:
        Optional warm-start path; by default the better of greedy-edge and
        nearest-neighbour construction.

    >>> inst = TSPInstance.random_metric(12, seed=3)
    >>> p = lk_style_path(inst, kicks=5, seed=0)
    >>> sorted(p.order) == list(range(12))
    True
    """
    n = instance.n
    if n <= 3:
        return held_trivial(instance)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if start is None:
        cands = [greedy_edge_path(instance), nearest_neighbor_path(instance, 0)]
        start = min(cands, key=lambda p: p.length)

    best = _descend(instance, start)
    cur = best
    for _ in range(kicks):
        kicked = _double_bridge(instance, cur, rng)
        improved = _descend(instance, kicked)
        # accept-if-better (keeps the chain anchored at the incumbent)
        if improved.length < cur.length - _EPS:
            cur = improved
        if improved.length < best.length - _EPS:
            best = improved
    return best


def held_trivial(instance: TSPInstance) -> HamPath:
    """Exact answer for n <= 3 by enumeration (base case helper)."""
    import itertools

    n = instance.n
    if n == 0:
        return HamPath((), 0.0)
    best = min(
        itertools.permutations(range(n)),
        key=lambda o: instance.path_length(o),
    )
    return HamPath.from_order(instance, best)


def _descend(instance: TSPInstance, start: HamPath) -> HamPath:
    """Run 2-opt and Or-opt to a joint local optimum."""
    cur = start
    while True:
        improved = two_opt_path(instance, cur)
        improved = or_opt_path(instance, improved)
        if improved.length >= cur.length - _EPS:
            return improved
        cur = improved


def _double_bridge(
    instance: TSPInstance, path: HamPath, rng: np.random.Generator
) -> HamPath:
    """Double-bridge 4-segment shuffle — the classic LK kick move.

    Cuts the path into four non-empty segments A|B|C|D and reassembles as
    A|C|B|D; this move cannot be undone by any sequence of 2-opt reversals,
    which is what lets the chain escape 2-opt local optima.
    """
    n = len(path.order)
    cuts = np.sort(rng.choice(np.arange(1, n), size=3, replace=False))
    a, b, c = (int(x) for x in cuts)
    o = path.order
    new_order = o[:a] + o[b:c] + o[a:b] + o[c:]
    return HamPath.from_order(instance, new_order)
