"""Eulerian circuits/trails on multigraphs, plus tour shortcutting.

Christofides and its relatives build a connected multigraph with controlled
vertex parities (MST edges + matching edges, possibly doubled), walk an
Eulerian circuit/trail with Hierholzer's algorithm, then *shortcut* repeated
vertices.  On metric instances shortcutting never increases the length —
that is where the triangle inequality enters the 1.5 / 2 approximation
proofs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ReproError


class Multigraph:
    """A tiny edge-multiset multigraph on integer vertices (for Euler walks)."""

    def __init__(self, n: int) -> None:
        """Empty multigraph on ``n`` vertices."""
        self.n = n
        self.adj: dict[int, list[list]] = defaultdict(list)  # v -> [edge records]
        self._edge_id = 0

    def add_edge(self, u: int, v: int) -> None:
        """Insert one parallel edge ``{u, v}`` (multi-edges allowed)."""
        record = [u, v, False]  # shared mutable "used" flag
        self.adj[u].append(record)
        self.adj[v].append(record)
        self._edge_id += 1

    @property
    def m(self) -> int:
        """Number of (multi-)edges added so far."""
        return self._edge_id

    def degree(self, v: int) -> int:
        """Multigraph degree (each parallel edge counts)."""
        return len(self.adj[v])

    def odd_vertices(self) -> list[int]:
        """Vertices of odd degree, in id order."""
        return [v for v in range(self.n) if self.degree(v) % 2 == 1]


def eulerian_circuit(mg: Multigraph, start: int) -> list[int]:
    """Hierholzer's algorithm; requires all degrees even and edges connected.

    Returns the closed walk as a vertex list whose first == last vertex.
    """
    odd = mg.odd_vertices()
    if odd:
        raise ReproError(f"eulerian circuit needs even degrees; odd at {odd[:4]}")
    return _hierholzer(mg, start)


def eulerian_trail(mg: Multigraph, start: int | None = None) -> list[int]:
    """Open Eulerian trail; requires exactly 0 or 2 odd-degree vertices.

    With two odd vertices the trail must start at one of them (``start`` is
    validated, or chosen automatically when ``None``).
    """
    odd = mg.odd_vertices()
    if len(odd) == 0:
        return _hierholzer(mg, start if start is not None else 0)
    if len(odd) != 2:
        raise ReproError(f"eulerian trail needs 0 or 2 odd vertices, found {len(odd)}")
    if start is None:
        start = odd[0]
    elif start not in odd:
        raise ReproError(f"trail must start at an odd vertex {odd}, got {start}")
    return _hierholzer(mg, start)


def _hierholzer(mg: Multigraph, start: int) -> list[int]:
    """Hierholzer's algorithm: an Eulerian walk from ``start``."""
    if mg.m == 0:
        return [start]
    # iterative Hierholzer with per-vertex edge cursors
    cursor: dict[int, int] = defaultdict(int)
    stack = [start]
    walk: list[int] = []
    used_edges = 0
    while stack:
        v = stack[-1]
        lst = mg.adj[v]
        i = cursor[v]
        while i < len(lst) and lst[i][2]:
            i += 1
        cursor[v] = i
        if i == len(lst):
            walk.append(stack.pop())
        else:
            rec = lst[i]
            rec[2] = True
            used_edges += 1
            stack.append(rec[1] if rec[0] == v else rec[0])
    if used_edges != mg.m:
        raise ReproError("multigraph not connected on its edge set")
    walk.reverse()
    return walk


def shortcut(walk: list[int]) -> list[int]:
    """Drop repeated vertices from a walk, keeping first occurrences.

    On a metric instance the resulting Hamiltonian order is no longer than
    the walk (triangle inequality).
    """
    seen: set[int] = set()
    out: list[int] = []
    for v in walk:
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out
