"""Dense Prim minimum spanning tree.

Used by the Christofides / Hoogeveen / double-tree approximations.  The
instances here are complete graphs, so the dense ``O(n^2)`` Prim with NumPy
key arrays is the right algorithm (heap-based Prim would be slower).
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPInstance


def prim_mst(instance: TSPInstance) -> list[tuple[int, int]]:
    """Edges of a minimum spanning tree of the complete weighted graph.

    Returns ``n - 1`` edges as ``(u, v)`` pairs.  Deterministic: ties are
    broken toward the smallest vertex index via NumPy argmin semantics.

    >>> inst = TSPInstance.random_metric(5, seed=0)
    >>> len(prim_mst(inst))
    4
    """
    n = instance.n
    if n <= 1:
        return []
    w = instance.weights
    in_tree = np.zeros(n, dtype=bool)
    key = w[0].copy()
    parent = np.zeros(n, dtype=np.intp)
    in_tree[0] = True
    key[0] = np.inf
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        v = int(np.argmin(key))
        edges.append((int(parent[v]), v))
        in_tree[v] = True
        key[v] = np.inf
        better = (w[v] < key) & ~in_tree
        key[better] = w[v][better]
        parent[better] = v
    return edges


def mst_weight(instance: TSPInstance) -> float:
    """Total weight of a minimum spanning tree."""
    return float(
        sum(instance.weight(u, v) for u, v in prim_mst(instance))
    )
