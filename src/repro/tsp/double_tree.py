"""Double-tree 2-approximation (cycle and path variants).

The weaker classical baseline: double every MST edge, walk the Eulerian
circuit, shortcut.  Kept as the comparison point for the approximation-ratio
experiment (E5): Hoogeveen/Christofides should beat it visibly, and neither
may exceed its guarantee.
"""

from __future__ import annotations

from repro.tsp.eulerian import Multigraph, eulerian_circuit, shortcut
from repro.tsp.instance import TSPInstance
from repro.tsp.mst import prim_mst
from repro.tsp.tour import HamPath, Tour


def double_tree_cycle(instance: TSPInstance, require_metric: bool = True) -> Tour:
    """Closed tour of weight <= 2x optimal on metric instances."""
    if require_metric:
        instance.require_metric()
    n = instance.n
    if n <= 1:
        return Tour(tuple(range(n)), 0.0)
    mg = Multigraph(n)
    for u, v in prim_mst(instance):
        mg.add_edge(u, v)
        mg.add_edge(u, v)
    order = shortcut(eulerian_circuit(mg, start=0))
    return Tour.from_order(instance, order)


def double_tree_path(instance: TSPInstance, require_metric: bool = True) -> HamPath:
    """Hamiltonian path of weight <= 2x the optimal path on metric instances.

    A DFS preorder of the MST, i.e. the doubled-tree walk with shortcuts;
    its length is bounded by twice the MST weight, and the MST lower-bounds
    the optimal Hamiltonian path.
    """
    if require_metric:
        instance.require_metric()
    n = instance.n
    if n <= 1:
        return HamPath(tuple(range(n)), 0.0)
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in prim_mst(instance):
        adj[u].append(v)
        adj[v].append(u)
    order: list[int] = []
    seen = [False] * n
    stack = [0]
    while stack:
        v = stack.pop()
        if seen[v]:
            continue
        seen[v] = True
        order.append(v)
        # reversed for stable left-to-right preorder
        stack.extend(sorted(adj[v], reverse=True))
    return HamPath.from_order(instance, order)
