"""Local search for Hamiltonian paths: 2-opt, Or-opt, and a 3-opt-lite.

All moves are specialized to the *path* objective (no wrap-around edge), with
the segment-touches-endpoint cases handled separately — a subtle point that
cycle-oriented implementations get wrong.  The 2-opt inner loop is fully
vectorized (one ``O(n^2)`` NumPy kernel per improvement step), per the
hpc-parallel guides.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPInstance
from repro.tsp.tour import HamPath

_EPS = 1e-10


def two_opt_path(
    instance: TSPInstance, start: HamPath, max_rounds: int = 10_000
) -> HamPath:
    """Best-improvement 2-opt on a Hamiltonian path.

    Repeatedly applies the single best segment reversal until no reversal
    improves the length.  Each round is one vectorized delta evaluation.
    """
    n = instance.n
    if n <= 2:
        return start
    w = instance.weights
    o = np.asarray(start.order, dtype=np.intp)

    for _ in range(max_rounds):
        best_delta, move = _best_two_opt_move(w, o)
        if best_delta >= -_EPS:
            break
        i, j = move
        o[i : j + 1] = o[i : j + 1][::-1]
    return HamPath.from_order(instance, o.tolist())


def _best_two_opt_move(w: np.ndarray, o: np.ndarray) -> tuple[float, tuple[int, int]]:
    """The most improving reversal ``o[i..j] -> reversed`` and its delta."""
    n = len(o)
    best_delta = 0.0
    best_move = (0, 0)

    # --- internal reversals: 1 <= i <= j <= n-2 ------------------------
    if n >= 4:
        idx = np.arange(1, n - 1)
        # gain matrices indexed by (i, j) over idx x idx
        m_new = w[o[idx - 1][:, None], o[idx][None, :]] + w[o[idx][:, None], o[idx + 1][None, :]]
        m_old = w[o[idx - 1], o[idx]][:, None] + w[o[idx], o[idx + 1]][None, :]
        delta = m_new - m_old
        # only j > i is a real move (j == i is identity)
        delta[np.tril_indices(len(idx), k=0)] = np.inf
        flat = int(np.argmin(delta))
        di, dj = divmod(flat, len(idx))
        if delta[di, dj] < best_delta - _EPS:
            best_delta = float(delta[di, dj])
            best_move = (int(idx[di]), int(idx[dj]))

    # --- prefix reversals: reverse o[0..j], j <= n-2 --------------------
    j = np.arange(0, n - 1)
    delta_pre = w[o[0], o[j + 1]] - w[o[j], o[j + 1]]
    jp = int(np.argmin(delta_pre))
    if delta_pre[jp] < best_delta - _EPS:
        best_delta = float(delta_pre[jp])
        best_move = (0, int(j[jp]))

    # --- suffix reversals: reverse o[i..n-1], i >= 1 ---------------------
    i = np.arange(1, n)
    delta_suf = w[o[i - 1], o[n - 1]] - w[o[i - 1], o[i]]
    ip = int(np.argmin(delta_suf))
    if delta_suf[ip] < best_delta - _EPS:
        best_delta = float(delta_suf[ip])
        best_move = (int(i[ip]), n - 1)

    return best_delta, best_move


def or_opt_path(
    instance: TSPInstance,
    start: HamPath,
    segment_lengths: tuple[int, ...] = (1, 2, 3),
    max_rounds: int = 10_000,
) -> HamPath:
    """Or-opt: relocate short segments (optionally reversed) along the path.

    First-improvement sweeps over segment lengths 1..3; loops until a full
    sweep finds nothing.
    """
    n = instance.n
    if n <= 2:
        return start
    w = instance.weights
    order = list(start.order)

    for _ in range(max_rounds):
        improved = False
        for seg_len in segment_lengths:
            if seg_len >= n:
                continue
            move = _first_or_opt_move(w, order, seg_len)
            if move is not None:
                order = move
                improved = True
                break
        if not improved:
            break
    return HamPath.from_order(instance, order)


def _first_or_opt_move(w: np.ndarray, order: list[int], L: int) -> list[int] | None:
    """First improving relocation of a length-``L`` segment, or ``None``."""
    n = len(order)

    def edge(u: int, v: int) -> float:
        """Weight of the tour edge between positions ``u`` and ``v``."""
        return float(w[order[u], order[v]])

    for i in range(n - L + 1):
        j = i + L - 1  # segment is order[i..j]
        # cost removed when the segment is excised
        left, right = i - 1, j + 1
        removed = 0.0
        if left >= 0:
            removed += edge(left, i)
        if right <= n - 1:
            removed += edge(j, right)
        bridge = edge(left, right) if (left >= 0 and right <= n - 1) else 0.0
        gain_remove = removed - bridge
        if gain_remove <= _EPS:
            continue
        rest = order[:i] + order[j + 1 :]
        seg = order[i : j + 1]
        # try inserting seg (both orientations) at every gap of `rest`
        for pos in range(len(rest) + 1):
            if pos == i:  # same place, same orientation = identity
                candidates = (seg[::-1],) if L > 1 else ()
            else:
                candidates = (seg, seg[::-1]) if L > 1 else (seg,)
            for s in candidates:
                add = 0.0
                if pos > 0:
                    add += float(w[rest[pos - 1], s[0]])
                if pos < len(rest):
                    add += float(w[s[-1], rest[pos]])
                bridge_removed = (
                    float(w[rest[pos - 1], rest[pos]])
                    if 0 < pos < len(rest)
                    else 0.0
                )
                delta = add - bridge_removed - gain_remove
                if delta < -_EPS:
                    return rest[:pos] + s + rest[pos:]
    return None


def three_opt_path(
    instance: TSPInstance, start: HamPath, max_rounds: int = 10_000
) -> HamPath:
    """3-opt-lite: alternate best-improvement 2-opt and Or-opt to a joint optimum.

    Segment relocation (Or-opt) plus segment reversal (2-opt) covers the
    practically important subset of 3-opt reconnections; the full 7-case
    3-opt brings little extra at reduction-instance scale.  Kept under the
    classic name so engine tables read naturally.
    """
    cur = start
    for _ in range(max_rounds):
        improved = two_opt_path(instance, cur)
        improved = or_opt_path(instance, improved)
        if improved.length >= cur.length - _EPS:
            return improved
        cur = improved
    return cur
