"""Symmetric TSP instances backed by a dense NumPy weight matrix.

The instances the Theorem-2 reduction emits are small-range metrics
(all weights within ``[p_min, 2 p_min]``), so a dense matrix is the right
representation: every solver in this package is array-shaped.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotMetricError, ReproError


class TSPInstance:
    """A symmetric TSP instance on vertices ``0..n-1``.

    Parameters
    ----------
    weights:
        Square symmetric matrix with zero diagonal and non-negative entries.
        A copy is taken and frozen (the array is marked read-only).
    """

    __slots__ = ("_w",)

    def __init__(self, weights: np.ndarray) -> None:
        """Copy and validate a square symmetric weight matrix."""
        w = np.array(weights, dtype=np.float64, copy=True)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ReproError(f"weight matrix must be square, got shape {w.shape}")
        if not np.allclose(w, w.T):
            raise ReproError("weight matrix must be symmetric")
        if np.any(np.diagonal(w) != 0):
            raise ReproError("weight matrix must have zero diagonal")
        if np.any(w < 0):
            raise ReproError("weights must be non-negative")
        w.setflags(write=False)
        self._w = w

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of cities."""
        return self._w.shape[0]

    @property
    def weights(self) -> np.ndarray:
        """The (read-only) weight matrix."""
        return self._w

    def weight(self, u: int, v: int) -> float:
        """The edge weight ``w(u, v)`` as a Python float."""
        return float(self._w[u, v])

    # ------------------------------------------------------------------
    def path_length(self, order: Sequence[int]) -> float:
        """Total weight of the Hamiltonian path visiting ``order``."""
        idx = np.asarray(order, dtype=np.intp)
        if len(idx) <= 1:
            return 0.0
        return float(self._w[idx[:-1], idx[1:]].sum())

    def cycle_length(self, order: Sequence[int]) -> float:
        """Total weight of the closed tour visiting ``order`` then returning."""
        idx = np.asarray(order, dtype=np.intp)
        if len(idx) <= 1:
            return 0.0
        return float(self._w[idx, np.roll(idx, -1)].sum())

    # ------------------------------------------------------------------
    def is_metric(self, atol: float = 1e-9) -> bool:
        """Check the triangle inequality ``w(i,k) <= w(i,j) + w(j,k)``.

        Vectorized ``O(n^3)`` check via broadcasting — only used on entry to
        algorithms whose guarantees need metricity.
        """
        w = self._w
        # through[j] contribution: w[i,j,None] + w[None,j,k]
        through = w[:, :, None] + w[None, :, :]  # (i, j, k)
        best = through.min(axis=1)  # cheapest one-stop route i -> k
        return bool(np.all(w <= best + atol))

    def require_metric(self) -> None:
        """Raise :class:`NotMetricError` unless the triangle inequality holds."""
        if not self.is_metric():
            raise NotMetricError("instance violates the triangle inequality")

    # ------------------------------------------------------------------
    @classmethod
    def random_metric(
        cls, n: int, seed: int | np.random.Generator | None = None
    ) -> "TSPInstance":
        """Random Euclidean-plane metric instance (always metric)."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        pts = rng.random((n, 2))
        diff = pts[:, None, :] - pts[None, :, :]
        return cls(np.sqrt((diff**2).sum(axis=2)))

    @classmethod
    def random_two_valued(
        cls,
        n: int,
        low: float,
        high: float,
        p_low: float = 0.5,
        seed: int | np.random.Generator | None = None,
    ) -> "TSPInstance":
        """Random instance with two weight values (metric iff high <= 2*low).

        This is exactly the structure Corollary 2 produces for diameter-2
        graphs.
        """
        if low <= 0 or high < low:
            raise ReproError("need 0 < low <= high")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        w = np.where(rng.random((n, n)) < p_low, low, high)
        w = np.triu(w, k=1)
        w = w + w.T
        return cls(w)

    def __repr__(self) -> str:
        """Compact ``TSPInstance(n=...)`` form."""
        return f"TSPInstance(n={self.n})"
