"""Depth-first branch-and-bound for exact path TSP.

An independent exact solver used to cross-check Held–Karp in the test-suite
(two exact engines agreeing is strong evidence both are right).  The lower
bound for a partial path is ``current length + MST(unvisited + endpoint)``:
any completion is a spanning connected subgraph of that vertex set, so the
MST weight is a valid bound.  Practical to ~15 vertices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.tsp.instance import TSPInstance
from repro.tsp.lin_kernighan import lk_style_path
from repro.tsp.tour import HamPath

#: guard: DFS node counts explode factorially without the bound's help
MAX_BNB_N = 16


def branch_and_bound_path(instance: TSPInstance, max_n: int = MAX_BNB_N) -> HamPath:
    """Exact minimum Hamiltonian path via DFS branch-and-bound.

    Seeds the incumbent with the LK-style heuristic so pruning starts strong.
    """
    n = instance.n
    if n > max_n:
        raise ReproError(
            f"branch-and-bound capped at n={max_n} (got {n}); use held_karp_path"
        )
    if n == 0:
        return HamPath((), 0.0)
    if n == 1:
        return HamPath((0,), 0.0)

    w = instance.weights
    incumbent = lk_style_path(instance, kicks=10, seed=0)
    best_len = incumbent.length
    best_order = list(incumbent.order)

    order = np.empty(n, dtype=np.intp)
    visited = np.zeros(n, dtype=bool)

    def mst_bound(cur: int) -> float:
        """MST weight of {cur} + unvisited — dense Prim on the submatrix."""
        nodes = np.flatnonzero(~visited)
        if len(nodes) == 0:
            return 0.0
        nodes = np.concatenate(([cur], nodes))
        sub = w[np.ix_(nodes, nodes)]
        k = len(nodes)
        in_tree = np.zeros(k, dtype=bool)
        key = sub[0].copy()
        in_tree[0] = True
        key[0] = np.inf
        total = 0.0
        for _ in range(k - 1):
            v = int(np.argmin(key))
            total += float(key[v])
            in_tree[v] = True
            key[v] = np.inf
            better = (sub[v] < key) & ~in_tree
            key[better] = sub[v][better]
        return total

    def dfs(depth: int, cur: int, length: float) -> None:
        """Extend the partial path at ``cur``, pruning on the MST bound."""
        nonlocal best_len, best_order
        if depth == n:
            if length < best_len - 1e-12:
                best_len = length
                best_order = order[:n].tolist()
            return
        if length + mst_bound(cur) >= best_len - 1e-12:
            return
        # expand children nearest-first: finds improvements early
        cand = np.flatnonzero(~visited)
        for v in cand[np.argsort(w[cur, cand], kind="stable")]:
            v = int(v)
            visited[v] = True
            order[depth] = v
            dfs(depth + 1, v, length + float(w[cur, v]))
            visited[v] = False

    for s in range(n):
        visited[:] = False
        visited[s] = True
        order[0] = s
        dfs(1, s, 0.0)

    return HamPath.from_order(instance, best_order)
