"""TSP substrate: instances, exact solvers, approximations, heuristics.

The paper reduces ``L(p)``-labeling to METRIC PATH TSP and then leans on the
TSP literature.  This subpackage is that literature in miniature, implemented
from scratch:

* exact: Held–Karp dynamic programming (``O(2^n n^2)``), branch-and-bound;
* guaranteed approximations: Christofides (cycle, 1.5), Hoogeveen (path with
  free endpoints, 1.5), double-tree (2);
* heuristics: nearest-neighbour, greedy-edge, insertion constructions, 2-opt,
  Or-opt, 3-opt local search, and an LK-style iterated local search standing
  in for LKH/Concorde (the substitution ARCHITECTURE.md notes);
* support: dense Prim MST, minimum-weight perfect matching (exact bitmask DP
  plus heuristic), Eulerian trails with shortcutting.
"""

from repro.tsp.instance import TSPInstance
from repro.tsp.tour import HamPath, Tour
from repro.tsp.held_karp import held_karp_path, held_karp_cycle
from repro.tsp.branch_bound import branch_and_bound_path
from repro.tsp.construction import (
    nearest_neighbor_path,
    greedy_edge_path,
    cheapest_insertion_cycle,
    farthest_insertion_cycle,
    cycle_to_path,
)
from repro.tsp.local_search import two_opt_path, or_opt_path, three_opt_path
from repro.tsp.lin_kernighan import lk_style_path
from repro.tsp.mst import prim_mst
from repro.tsp.matching import min_weight_perfect_matching, min_weight_near_perfect_matching
from repro.tsp.eulerian import eulerian_circuit, eulerian_trail, shortcut
from repro.tsp.christofides import christofides_cycle
from repro.tsp.hoogeveen import hoogeveen_path
from repro.tsp.double_tree import double_tree_cycle, double_tree_path
from repro.tsp.annealing import simulated_annealing_path
from repro.tsp.lower_bounds import one_tree_bound, certified_gap
from repro.tsp.portfolio import ENGINES, get_engine, solve_path
from repro.tsp import tsplib

__all__ = [
    "TSPInstance",
    "HamPath",
    "Tour",
    "held_karp_path",
    "held_karp_cycle",
    "branch_and_bound_path",
    "nearest_neighbor_path",
    "greedy_edge_path",
    "cheapest_insertion_cycle",
    "farthest_insertion_cycle",
    "cycle_to_path",
    "two_opt_path",
    "or_opt_path",
    "three_opt_path",
    "lk_style_path",
    "prim_mst",
    "min_weight_perfect_matching",
    "min_weight_near_perfect_matching",
    "eulerian_circuit",
    "eulerian_trail",
    "shortcut",
    "christofides_cycle",
    "hoogeveen_path",
    "double_tree_cycle",
    "double_tree_path",
    "ENGINES",
    "get_engine",
    "solve_path",
    "simulated_annealing_path",
    "one_tree_bound",
    "certified_gap",
    "tsplib",
]
