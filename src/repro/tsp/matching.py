"""Minimum-weight (near-)perfect matching on a weighted vertex subset.

Christofides needs a minimum-weight perfect matching on the odd-degree
vertices of the MST; Hoogeveen's free-endpoint path variant needs the
*near-perfect* version that leaves exactly two vertices unmatched (they
become the endpoints of the Euler trail).

Two engines:

* **exact** — bitmask DP over subsets of the (small) odd set.  ``O(2^s s)``
  states with an ``O(s)`` transition; exact for ``s <= 18`` comfortably.
  The full DP table also answers every near-perfect query for free.
* **heuristic** — greedy pairing plus 2-exchange refinement, for larger odd
  sets.  No guarantee, but in practice within a few percent; the dispatcher
  only falls back to it beyond the exact cap, and the approximation bench
  reports which engine ran.

The blossom algorithm would give exact polynomial matching; at reproduction
scale the DP is exact where the 1.5-ratio claims are *tested*, which is what
the paper's Corollary 1 needs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ReproError

#: exact DP cap on the matched-set size (table is 2^s floats).
MAX_EXACT_MATCHING = 18


def min_weight_perfect_matching(
    weights: np.ndarray,
    vertices: list[int],
    max_exact: int = MAX_EXACT_MATCHING,
) -> list[tuple[int, int]]:
    """Minimum-weight perfect matching of ``vertices`` under ``weights``.

    ``vertices`` must have even size.  Uses the exact DP when the set is
    small, otherwise greedy + 2-exchange.
    """
    if len(vertices) % 2 != 0:
        raise ReproError(f"perfect matching needs an even set, got {len(vertices)}")
    if not vertices:
        return []
    if len(vertices) <= max_exact:
        return _exact_perfect(weights, vertices)
    return _heuristic_perfect(weights, vertices)


def min_weight_near_perfect_matching(
    weights: np.ndarray,
    vertices: list[int],
    max_exact: int = MAX_EXACT_MATCHING,
) -> tuple[list[tuple[int, int]], tuple[int, int]]:
    """Minimum-weight matching leaving exactly two of ``vertices`` unmatched.

    Returns ``(matching_edges, (u, v))`` where ``u, v`` are the two exposed
    vertices.  Requires an even set of size >= 2 (so the leftover count stays
    even).  This is the Hoogeveen free-endpoint subproblem.
    """
    s = len(vertices)
    if s % 2 != 0 or s < 2:
        raise ReproError(f"near-perfect matching needs an even set >= 2, got {s}")
    if s == 2:
        return [], (vertices[0], vertices[1])
    if s <= max_exact:
        return _exact_near_perfect(weights, vertices)
    return _heuristic_near_perfect(weights, vertices)


def matching_weight(weights: np.ndarray, edges: list[tuple[int, int]]) -> float:
    """Total weight of a list of matching edges."""
    return float(sum(weights[u, v] for u, v in edges))


# ---------------------------------------------------------------------------
# exact bitmask DP
# ---------------------------------------------------------------------------
def _perfect_dp(weights: np.ndarray, vertices: list[int]) -> np.ndarray:
    """``dp[mask]`` = min weight perfectly matching the submask ``mask``.

    Masks with odd popcount hold ``inf``.  Standard trick: always match the
    lowest set bit, so each even mask is relaxed from ``O(s)`` predecessors.
    """
    s = len(vertices)
    w = weights[np.ix_(vertices, vertices)]
    dp = np.full(1 << s, np.inf)
    dp[0] = 0.0
    for mask in range(1, 1 << s):
        if bin(mask).count("1") % 2 == 1:
            continue
        i = (mask & -mask).bit_length() - 1  # lowest set bit: always match it
        rest = mask & ~(1 << i)
        j = rest
        best = np.inf
        while j:
            k = (j & -j).bit_length() - 1
            cand = dp[mask & ~(1 << i) & ~(1 << k)] + w[i, k]
            if cand < best:
                best = cand
            j &= j - 1
        dp[mask] = best
    return dp


def _extract_matching(
    dp: np.ndarray, weights: np.ndarray, vertices: list[int], mask: int
) -> list[tuple[int, int]]:
    """Recover an optimal matching of ``mask`` from the DP table."""
    w = weights[np.ix_(vertices, vertices)]
    edges: list[tuple[int, int]] = []
    while mask:
        i = (mask & -mask).bit_length() - 1
        rest = mask & ~(1 << i)
        j = rest
        while j:
            k = (j & -j).bit_length() - 1
            nxt = rest & ~(1 << k)
            if abs(dp[nxt] + w[i, k] - dp[mask]) <= 1e-9:
                edges.append((vertices[i], vertices[k]))
                mask = nxt
                break
            j &= j - 1
        else:  # pragma: no cover - defensive; DP always has a consistent edge
            raise ReproError("matching reconstruction failed")
    return edges


def _exact_perfect(weights: np.ndarray, vertices: list[int]) -> list[tuple[int, int]]:
    """Optimal perfect matching by bitmask DP over the vertex set."""
    dp = _perfect_dp(weights, vertices)
    full = (1 << len(vertices)) - 1
    if not np.isfinite(dp[full]):
        raise ReproError("no perfect matching exists (complete graph: impossible)")
    return _extract_matching(dp, weights, vertices, full)


def _exact_near_perfect(
    weights: np.ndarray, vertices: list[int]
) -> tuple[list[tuple[int, int]], tuple[int, int]]:
    """Optimal near-perfect matching (odd set: best vertex left out)."""
    s = len(vertices)
    dp = _perfect_dp(weights, vertices)
    full = (1 << s) - 1
    best = np.inf
    best_pair = (0, 1)
    for a, b in itertools.combinations(range(s), 2):
        mask = full & ~(1 << a) & ~(1 << b)
        if dp[mask] < best:
            best = float(dp[mask])
            best_pair = (a, b)
    a, b = best_pair
    mask = full & ~(1 << a) & ~(1 << b)
    edges = _extract_matching(dp, weights, vertices, mask)
    return edges, (vertices[a], vertices[b])


# ---------------------------------------------------------------------------
# heuristic: greedy + 2-exchange
# ---------------------------------------------------------------------------
def _greedy_pairs(weights: np.ndarray, vertices: list[int]) -> list[tuple[int, int]]:
    """Greedy matching: repeatedly pair the globally cheapest edge."""
    pool = set(vertices)
    pairs: list[tuple[int, int]] = []
    cand = sorted(
        ((float(weights[u, v]), u, v) for u, v in itertools.combinations(vertices, 2))
    )
    for _, u, v in cand:
        if u in pool and v in pool:
            pairs.append((u, v))
            pool.discard(u)
            pool.discard(v)
    return pairs


def _two_exchange(weights: np.ndarray, pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Swap partners between pairs while it reduces total weight."""
    improved = True
    while improved:
        improved = False
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                a, b = pairs[i]
                c, d = pairs[j]
                cur = weights[a, b] + weights[c, d]
                alt1 = weights[a, c] + weights[b, d]
                alt2 = weights[a, d] + weights[b, c]
                if alt1 < cur - 1e-12 and alt1 <= alt2:
                    pairs[i], pairs[j] = (a, c), (b, d)
                    improved = True
                elif alt2 < cur - 1e-12:
                    pairs[i], pairs[j] = (a, d), (b, c)
                    improved = True
    return pairs


def _heuristic_perfect(weights: np.ndarray, vertices: list[int]) -> list[tuple[int, int]]:
    """Greedy matching improved by pairwise two-exchange."""
    return _two_exchange(weights, _greedy_pairs(weights, vertices))


def _heuristic_near_perfect(
    weights: np.ndarray, vertices: list[int]
) -> tuple[list[tuple[int, int]], tuple[int, int]]:
    """Heuristic near-perfect matching (tries each leave-out vertex)."""
    pairs = _heuristic_perfect(weights, vertices)
    # expose the heaviest pair's endpoints: they become free path endpoints
    heavy = max(range(len(pairs)), key=lambda i: weights[pairs[i][0], pairs[i][1]])
    exposed = pairs.pop(heavy)
    return _two_exchange(weights, pairs), exposed
