"""Construction heuristics: nearest-neighbour, greedy-edge, insertions.

These are the cheap tour builders whose outputs seed the local searches in
:mod:`repro.tsp.local_search` and :mod:`repro.tsp.lin_kernighan` — the same
pipeline structure practical TSP codes (LKH, Concorde's heuristics) use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import HamPath, Tour


def nearest_neighbor_path(instance: TSPInstance, start: int = 0) -> HamPath:
    """Grow a path by repeatedly hopping to the closest unvisited vertex.

    ``O(n^2)`` with a NumPy masked argmin per step.
    """
    n = instance.n
    if n == 0:
        return HamPath((), 0.0)
    if not (0 <= start < n):
        raise ReproError(f"start vertex {start} out of range")
    w = instance.weights
    visited = np.zeros(n, dtype=bool)
    order = [start]
    visited[start] = True
    cur = start
    for _ in range(n - 1):
        dist = np.where(visited, np.inf, w[cur])
        cur = int(np.argmin(dist))
        visited[cur] = True
        order.append(cur)
    return HamPath.from_order(instance, order)


def best_nearest_neighbor_path(instance: TSPInstance) -> HamPath:
    """Nearest-neighbour from every start vertex; keep the best path."""
    best: HamPath | None = None
    for s in range(max(instance.n, 1)):
        cand = nearest_neighbor_path(instance, s if instance.n else 0)
        if best is None or cand.length < best.length:
            best = cand
        if instance.n == 0:
            break
    assert best is not None or instance.n == 0
    return best if best is not None else HamPath((), 0.0)


def greedy_edge_path(instance: TSPInstance) -> HamPath:
    """Greedy edge matching: add cheapest edges that keep a linear forest.

    Sort all edges by weight; accept an edge when both endpoints still have
    degree < 2 and it does not close a cycle (union-find); the accepted edges
    form a Hamiltonian path after ``n - 1`` acceptances.
    """
    n = instance.n
    if n == 0:
        return HamPath((), 0.0)
    if n == 1:
        return HamPath((0,), 0.0)
    w = instance.weights
    iu, iv = np.triu_indices(n, k=1)
    by_weight = np.argsort(w[iu, iv], kind="stable")

    parent = list(range(n))

    def find(x: int) -> int:
        """Union-find root with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    degree = [0] * n
    adj: list[list[int]] = [[] for _ in range(n)]
    accepted = 0
    for e in by_weight:
        u, v = int(iu[e]), int(iv[e])
        if degree[u] >= 2 or degree[v] >= 2:
            continue
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        parent[ru] = rv
        degree[u] += 1
        degree[v] += 1
        adj[u].append(v)
        adj[v].append(u)
        accepted += 1
        if accepted == n - 1:
            break
    # walk the path from one endpoint
    start = next(v for v in range(n) if degree[v] <= 1)
    order = [start]
    prev, cur = -1, start
    while len(order) < n:
        nxt = next(x for x in adj[cur] if x != prev)
        order.append(nxt)
        prev, cur = cur, nxt
    return HamPath.from_order(instance, order)


def cheapest_insertion_cycle(instance: TSPInstance) -> Tour:
    """Cheapest-insertion tour construction (classic cycle heuristic)."""
    return _insertion_cycle(instance, farthest=False)


def farthest_insertion_cycle(instance: TSPInstance) -> Tour:
    """Farthest-insertion tour construction (usually the better insertion)."""
    return _insertion_cycle(instance, farthest=True)


def _insertion_cycle(instance: TSPInstance, farthest: bool) -> Tour:
    """Generic insertion heuristic (nearest or farthest selection)."""
    n = instance.n
    if n == 0:
        return Tour((), 0.0)
    if n <= 2:
        return Tour.from_order(instance, range(n))
    w = instance.weights
    # seed with the two closest (cheapest) or two farthest vertices
    iu, iv = np.triu_indices(n, k=1)
    seed_idx = int(np.argmax(w[iu, iv]) if farthest else np.argmin(w[iu, iv]))
    a, b = int(iu[seed_idx]), int(iv[seed_idx])
    cycle = [a, b]
    in_cycle = np.zeros(n, dtype=bool)
    in_cycle[[a, b]] = True
    # dist_to_cycle[v] = min over cycle members of w[v, member]
    dist_to_cycle = np.minimum(w[a], w[b])
    dist_to_cycle[in_cycle] = -np.inf if farthest else np.inf

    for _ in range(n - 2):
        v = int(np.argmax(dist_to_cycle) if farthest else np.argmin(dist_to_cycle))
        # insert v at the position minimizing the detour
        best_pos, best_delta = 0, np.inf
        for i in range(len(cycle)):
            u1, u2 = cycle[i], cycle[(i + 1) % len(cycle)]
            delta = w[u1, v] + w[v, u2] - w[u1, u2]
            if delta < best_delta:
                best_delta, best_pos = float(delta), i + 1
        cycle.insert(best_pos, v)
        in_cycle[v] = True
        dist_to_cycle = np.minimum(dist_to_cycle, w[v])
        dist_to_cycle[in_cycle] = -np.inf if farthest else np.inf
    return Tour.from_order(instance, cycle)


def cycle_to_path(instance: TSPInstance, tour: Tour) -> HamPath:
    """Open a cycle into a path by removing its heaviest edge."""
    return tour.to_path_dropping_heaviest_edge(instance)
