"""Engine registry: every path-TSP solver behind one signature.

The high-level labeling solver (:mod:`repro.reduction.solver`), the CLI, the
examples and the benchmark harness all select engines by name from this
table, so adding an engine in one place makes it available everywhere.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.tsp.annealing import simulated_annealing_path
from repro.tsp.branch_bound import branch_and_bound_path
from repro.tsp.christofides import christofides_cycle
from repro.tsp.construction import (
    best_nearest_neighbor_path,
    cycle_to_path,
    farthest_insertion_cycle,
    greedy_edge_path,
    nearest_neighbor_path,
)
from repro.tsp.double_tree import double_tree_path
from repro.tsp.held_karp import held_karp_path
from repro.tsp.hoogeveen import hoogeveen_path
from repro.tsp.instance import TSPInstance
from repro.tsp.lin_kernighan import lk_style_path
from repro.tsp.local_search import or_opt_path, three_opt_path, two_opt_path
from repro.tsp.tour import HamPath

PathEngine = Callable[[TSPInstance], HamPath]


def _nn(inst: TSPInstance) -> HamPath:
    """Engine: nearest-neighbour construction."""
    return nearest_neighbor_path(inst, 0)


def _nn_two_opt(inst: TSPInstance) -> HamPath:
    """Engine: nearest-neighbour + 2-opt polish."""
    return two_opt_path(inst, nearest_neighbor_path(inst, 0))


def _greedy_or_opt(inst: TSPInstance) -> HamPath:
    """Engine: greedy-edge construction + Or-opt moves."""
    return or_opt_path(inst, greedy_edge_path(inst))


def _greedy_three_opt(inst: TSPInstance) -> HamPath:
    """Engine: greedy-edge construction + 3-opt polish."""
    return three_opt_path(inst, greedy_edge_path(inst))


def _christofides_path(inst: TSPInstance) -> HamPath:
    """Christofides cycle opened at its heaviest edge (path heuristic)."""
    return cycle_to_path(inst, christofides_cycle(inst))


def _farthest_insertion_path(inst: TSPInstance) -> HamPath:
    """Engine: farthest-insertion cycle opened into a path."""
    return cycle_to_path(inst, farthest_insertion_cycle(inst))


def _anneal(inst: TSPInstance) -> HamPath:
    """Engine: seeded simulated annealing."""
    return simulated_annealing_path(inst, seed=0)


def _lk(inst: TSPInstance) -> HamPath:
    """Engine: LK-style iterated local search (20 kicks)."""
    return lk_style_path(inst, kicks=20, seed=0)


def _lk_long(inst: TSPInstance) -> HamPath:
    """Engine: LK-style iterated local search (100 kicks)."""
    return lk_style_path(inst, kicks=100, seed=0)


#: name -> engine.  Exact engines first, then guaranteed approximations,
#: then plain heuristics, roughly by expected quality.
ENGINES: dict[str, PathEngine] = {
    "held_karp": held_karp_path,
    "branch_bound": branch_and_bound_path,
    "hoogeveen": hoogeveen_path,
    "christofides_path": _christofides_path,
    "double_tree": double_tree_path,
    "lk": _lk,
    "lk_long": _lk_long,
    "anneal": _anneal,
    "three_opt": _greedy_three_opt,
    "or_opt": _greedy_or_opt,
    "two_opt": _nn_two_opt,
    "greedy_edge": greedy_edge_path,
    "farthest_insertion": _farthest_insertion_path,
    "nearest_neighbor": _nn,
    "best_nearest_neighbor": best_nearest_neighbor_path,
}

#: engines guaranteed to return the optimum
EXACT_ENGINES = ("held_karp", "branch_bound")

#: engines with a proven worst-case ratio on metric inputs
GUARANTEED_ENGINES = {"hoogeveen": 1.5, "christofides_path": 2.0, "double_tree": 2.0}
# (christofides_path: the 1.5 cycle guarantee degrades when the cycle is
#  opened; 2.0 is the safe bound we assert on.)


def get_engine(name: str) -> PathEngine:
    """Look up an engine by name; raises with the list of known names."""
    try:
        return ENGINES[name]
    except KeyError:
        raise ReproError(
            f"unknown engine {name!r}; known engines: {', '.join(ENGINES)}"
        ) from None


def solve_path(instance: TSPInstance, engine: str = "auto") -> HamPath:
    """Solve path TSP with the named engine; ``auto`` = exact when small.

    ``auto`` uses Held–Karp up to 15 vertices and the LK-style heuristic
    beyond — matching how the paper proposes the framework be used.
    """
    if engine == "auto":
        engine = "held_karp" if instance.n <= 15 else "lk"
    return get_engine(engine)(instance)
