"""Hoogeveen's Christofides variant for metric **path** TSP, free endpoints.

This realizes Corollary 1's "1.5-approximable in polynomial time": the
Theorem-2 reduction produces a path TSP in which *both endpoints are free*,
and Hoogeveen (1991) showed that in this regime the Christofides recipe with
a *near-perfect* matching achieves ratio 3/2.  (The paper cites Zenklusen's
deterministic 1.5 for the harder fixed-endpoint variant; with free endpoints
the classical algorithm already meets the same constant.)

Recipe:

1. MST ``T`` of the instance.
2. ``O`` = odd-degree vertices of ``T`` (``|O|`` is even).
3. Minimum-weight matching on ``O`` leaving exactly two vertices exposed
   (:func:`repro.tsp.matching.min_weight_near_perfect_matching`).
4. ``T`` + matching has exactly two odd vertices -> Eulerian *trail*.
5. Shortcut the trail to a Hamiltonian path (metricity: no length increase).
"""

from __future__ import annotations

from repro.tsp.eulerian import Multigraph, eulerian_trail, shortcut
from repro.tsp.instance import TSPInstance
from repro.tsp.matching import min_weight_near_perfect_matching
from repro.tsp.mst import prim_mst
from repro.tsp.tour import HamPath


def hoogeveen_path(instance: TSPInstance, require_metric: bool = True) -> HamPath:
    """A Hamiltonian path of weight <= 1.5x optimal (metric instances).

    >>> inst = TSPInstance.random_metric(8, seed=1)
    >>> path = hoogeveen_path(inst)
    >>> sorted(path.order) == list(range(8))
    True
    """
    if require_metric:
        instance.require_metric()
    n = instance.n
    if n <= 1:
        return HamPath(tuple(range(n)), 0.0)
    if n == 2:
        return HamPath((0, 1), instance.weight(0, 1))

    mst_edges = prim_mst(instance)
    mg = Multigraph(n)
    for u, v in mst_edges:
        mg.add_edge(u, v)

    odd = mg.odd_vertices()
    # A tree always has an even number of odd-degree vertices and at least 2
    # (its leaves), so the near-perfect matching below is well-defined.
    edges, (a, _b) = min_weight_near_perfect_matching(instance.weights, odd)
    for u, v in edges:
        mg.add_edge(u, v)

    walk = eulerian_trail(mg, start=a)
    order = shortcut(walk)
    return HamPath.from_order(instance, order)
