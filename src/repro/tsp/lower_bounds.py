"""Lower bounds for TSP: 1-tree (Held–Karp bound) with subgradient ascent.

Used by the harness to report certified optimality gaps for heuristic
engines on instances too large for exact solving: for any tour,
``1-tree bound <= OPT_cycle`` and ``MST <= OPT_path``.  The subgradient
iteration is the classic Held–Karp (1970) scheme on vertex penalties.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPInstance


def one_tree_bound(
    instance: TSPInstance,
    iterations: int = 50,
    step_scale: float = 1.0,
) -> float:
    """The Held–Karp 1-tree lower bound on the optimal *cycle*.

    A 1-tree is an MST on vertices ``1..n-1`` plus the two cheapest edges at
    vertex 0; its weight lower-bounds any tour.  Vertex penalties ``π`` are
    tuned by subgradient ascent on ``w'(u,v) = w(u,v) + π_u + π_v``
    (bound = 1-tree weight − 2 Σπ), monotonically improving the best bound.

    >>> inst = TSPInstance.random_metric(8, seed=0)
    >>> from repro.tsp.held_karp import held_karp_cycle
    >>> one_tree_bound(inst) <= held_karp_cycle(inst).length + 1e-9
    True
    """
    n = instance.n
    if n < 3:
        return instance.cycle_length(list(range(n)))
    w = instance.weights
    pi = np.zeros(n)
    best = -np.inf
    # initial step: average edge weight scale
    t = step_scale * float(w.sum()) / (n * n)

    for _ in range(iterations):
        wp = w + pi[:, None] + pi[None, :]
        np.fill_diagonal(wp, 0.0)
        weight, degree = _one_tree(wp, n)
        bound = weight - 2.0 * float(pi.sum())
        if bound > best:
            best = bound
        gradient = degree - 2.0
        norm = float((gradient**2).sum())
        if norm < 1e-12:
            break  # the 1-tree is a tour: bound is tight
        pi = pi + t * gradient
        t *= 0.95
    return best


def _one_tree(wp: np.ndarray, n: int) -> tuple[float, np.ndarray]:
    """Minimum 1-tree weight and vertex degrees under penalized weights."""
    # MST over vertices 1..n-1 (dense Prim)
    degree = np.zeros(n)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True  # excluded from the MST phase
    key = wp[1].copy()
    key[0] = np.inf
    key[1] = np.inf
    parent = np.ones(n, dtype=np.intp)
    in_tree[1] = True
    total = 0.0
    for _ in range(n - 2):
        v = int(np.argmin(key))
        total += float(key[v])
        degree[v] += 1
        degree[parent[v]] += 1
        in_tree[v] = True
        key[v] = np.inf
        better = (wp[v] < key) & ~in_tree
        key[better] = wp[v][better]
        parent[better] = v
    # two cheapest edges at vertex 0
    order = np.argsort(wp[0, 1:], kind="stable") + 1
    e1, e2 = int(order[0]), int(order[1])
    total += float(wp[0, e1] + wp[0, e2])
    degree[0] += 2
    degree[e1] += 1
    degree[e2] += 1
    return total, degree


def certified_gap(
    instance: TSPInstance, path_length: float, iterations: int = 50
) -> float:
    """An upper bound on ``path_length / OPT_path`` using the MST bound.

    MST weight lower-bounds any Hamiltonian path, so the returned ratio is a
    certificate: the heuristic path is at most this factor above optimal.
    """
    from repro.tsp.mst import mst_weight

    lb = mst_weight(instance)
    if lb <= 0:
        return 1.0
    return path_length / lb
