"""Modules, modular decomposition, and modular-width.

Definition 1 of the paper: ``mw(G) <= ℓ`` iff ``|V| <= ℓ`` or ``V``
partitions into at most ``ℓ`` modules whose induced subgraphs recurse.  The
minimum is attained on the modular decomposition tree: union and join nodes
can always be split into two modules (any sub-union of their children is a
module), while a *prime* node forces one child-module per part.  Hence

    ``mw(G) = max(2, max #children over prime nodes)``   (n >= 2)

We compute the decomposition with the classic ``O(n^3)``-ish recursive
scheme (components / co-components / smallest-containing-module closure),
which is simple enough to trust and fast enough for reproduction scale —
the paper itself defers to Tedder et al. for the linear-time version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operations import complement, induced_subgraph
from repro.graphs.traversal import connected_components


def is_module(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff every outside vertex sees all or none of ``vertices``."""
    mod = set(vertices)
    for v in mod:
        graph._check_vertex(v)
    adj = graph.adjacency_sets()
    for z in range(graph.n):
        if z in mod:
            continue
        inside = adj[z] & mod
        if inside and inside != mod:
            return False
    return True


def smallest_containing_module(graph: Graph, seed: Iterable[int]) -> set[int]:
    """The unique smallest module containing ``seed`` (closure by splitters).

    A vertex ``z`` outside the current set that sees *some but not all* of it
    must be absorbed; iterate to a fixed point.  Each pass is ``O(n^2)``.
    """
    mod = set(seed)
    if not mod:
        raise GraphError("seed must be non-empty")
    adj = graph.adjacency_sets()
    changed = True
    while changed:
        changed = False
        for z in range(graph.n):
            if z in mod:
                continue
            inside = adj[z] & mod
            if inside and inside != mod:
                mod.add(z)
                changed = True
    return mod


@dataclass
class MDNode:
    """A modular decomposition tree node.

    ``kind``: ``"leaf"`` (single vertex), ``"union"`` (disconnected),
    ``"join"`` (complement disconnected) or ``"prime"``.
    ``vertices`` are ids in the *original* graph.
    """

    kind: Literal["leaf", "union", "join", "prime"]
    vertices: tuple[int, ...]
    children: list["MDNode"] = field(default_factory=list)

    @property
    def width_contribution(self) -> int:
        """This node's contribution to the modular width (prime arity or 2)."""
        return len(self.children) if self.kind == "prime" else 2

    def iter_nodes(self) -> Iterable["MDNode"]:
        """Pre-order traversal of the decomposition tree."""
        yield self
        for c in self.children:
            yield from c.iter_nodes()


def modular_decomposition(graph: Graph) -> MDNode:
    """The modular decomposition tree (vertex ids preserved)."""
    return _decompose(graph, tuple(range(graph.n)))


def _decompose(graph: Graph, ids: tuple[int, ...]) -> MDNode:
    """Decompose ``graph`` (an induced subgraph), ``ids[i]`` = original id."""
    n = graph.n
    if n == 0:
        raise GraphError("cannot decompose the empty graph")
    if n == 1:
        return MDNode("leaf", ids)

    comps = connected_components(graph)
    if len(comps) > 1:
        children = [
            _decompose(induced_subgraph(graph, c), tuple(ids[v] for v in c))
            for c in comps
        ]
        return MDNode("union", ids, children)

    co_comps = connected_components(complement(graph))
    if len(co_comps) > 1:
        children = [
            _decompose(induced_subgraph(graph, c), tuple(ids[v] for v in c))
            for c in co_comps
        ]
        return MDNode("join", ids, children)

    # prime: children are the maximal proper strong modules.  For a prime
    # root these are the classes of the relation "smallest module containing
    # {u, v} is proper"; we build them greedily per vertex.
    blocks: list[set[int]] = []
    assigned = [False] * n
    for u in range(n):
        if assigned[u]:
            continue
        block = {u}
        for v in range(n):
            if v == u or assigned[v]:
                continue
            m = smallest_containing_module(graph, {u, v})
            if len(m) < n:
                block |= m
        # close the union of overlapping proper modules (still a module:
        # overlapping modules are closed under union)
        block = smallest_containing_module(graph, block)
        if len(block) == n:
            block = {u}  # u participates in no proper module beyond itself
        for v in block:
            assigned[v] = True
        blocks.append(block)

    children = [
        _decompose(
            induced_subgraph(graph, sorted(b)), tuple(ids[v] for v in sorted(b))
        )
        for b in blocks
    ]
    return MDNode("prime", ids, children)


def modular_width(graph: Graph) -> int:
    """``mw(G)`` per the paper's Definition 1 (minimum ℓ >= 2).

    >>> from repro.graphs.generators import path_graph, complete_graph
    >>> modular_width(complete_graph(5))   # cograph
    2
    >>> modular_width(path_graph(4))       # P4 is prime
    4
    """
    if graph.n <= 2:
        return 2
    tree = modular_decomposition(graph)
    return max(
        (node.width_contribution for node in tree.iter_nodes() if node.children),
        default=2,
    )
