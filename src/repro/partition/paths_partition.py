"""PARTITION INTO PATHS: cover all vertices by fewest vertex-disjoint paths.

Corollary 2 reduces diameter-2 ``L(p,q)``-labeling to this problem (on ``G``
or its complement).  The problem generalizes HAMILTONIAN PATH (answer 1), so
it is NP-hard; we provide:

* an exact ``O(2^n n^2)`` bitmask DP sharing the Held–Karp table shape
  (``f[S][v]`` = fewest paths covering ``S`` with the current path ending at
  ``v``), vectorized the same way;
* a greedy peeling heuristic (upper bound) for larger graphs;
* cheap lower bounds (``n - m``; component count) used by both.

Certificates: the exact solver returns the actual path lists, validated by
:func:`is_path_partition`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components

#: bitmask DP table is ``2^n * n``; same cap story as Held–Karp.
MAX_EXACT_N = 20


def partition_lower_bound(graph: Graph) -> int:
    """``max(#components, n - m, 1)`` for non-empty graphs.

    A partition into ``s`` paths uses exactly ``n - s`` edges, hence
    ``s >= n - m``; and paths cannot cross components.
    """
    if graph.n == 0:
        return 0
    return max(len(connected_components(graph)), graph.n - graph.m, 1)


def is_path_partition(graph: Graph, paths: list[list[int]]) -> bool:
    """Validate: disjoint cover of V, each list a path along edges of G."""
    seen: set[int] = set()
    for path in paths:
        if not path:
            return False
        for v in path:
            if v in seen or not (0 <= v < graph.n):
                return False
            seen.add(v)
        for a, b in zip(path, path[1:]):
            if not graph.has_edge(a, b):
                return False
    return len(seen) == graph.n


def partition_into_paths_exact(
    graph: Graph, max_n: int = MAX_EXACT_N
) -> tuple[int, list[list[int]]]:
    """Minimum path partition with certificate, by bitmask DP.

    Returns ``(s, paths)`` with ``len(paths) == s``.

    >>> from repro.graphs.generators import path_graph, empty_graph
    >>> partition_into_paths_exact(path_graph(4))[0]
    1
    >>> partition_into_paths_exact(empty_graph(3))[0]
    3
    """
    n = graph.n
    if n == 0:
        return 0, []
    if n > max_n:
        raise ReproError(
            f"exact path partition capped at n={max_n} (got {n}); "
            "use partition_into_paths_greedy"
        )
    adj = graph.adjacency_matrix(dtype=np.bool_)
    full = (1 << n) - 1
    INF = np.iinfo(np.int32).max // 4
    f = np.full((1 << n, n), INF, dtype=np.int32)
    for v in range(n):
        f[1 << v, v] = 1

    arange = np.arange(n)
    for s in range(1, full + 1):
        row = f[s]
        finite = row < INF
        if not finite.any():
            continue
        # extend the open path along an edge: cost unchanged
        ext = np.where(adj[finite], row[finite, None], INF).min(axis=0)
        # close the path, open a new one anywhere: cost + 1
        open_new = int(row[finite].min()) + 1
        best = np.minimum(ext, open_new)
        outside = arange[~_bits(s, n)]
        np.minimum.at(f, (s | (1 << outside), outside), best[outside])

    end = int(np.argmin(f[full]))
    count = int(f[full, end])
    paths = _reconstruct(f, adj, n, full, end)
    assert len(paths) == count
    return count, paths


def _bits(s: int, n: int) -> np.ndarray:
    """Bitmask ``s`` as a boolean membership vector of length ``n``."""
    return (s >> np.arange(n)) & 1 == 1


def _reconstruct(
    f: np.ndarray, adj: np.ndarray, n: int, full: int, end: int
) -> list[list[int]]:
    """Walk the DP backwards, splitting paths where the cost stepped up."""
    paths: list[list[int]] = []
    current = [end]
    s, v = full, end
    while s != (1 << v):
        prev_s = s & ~(1 << v)
        members = np.flatnonzero(_bits(prev_s, n))
        target = f[s, v]
        # prefer an edge-extension predecessor (same cost)
        nxt = None
        for u in members:
            if adj[u, v] and f[prev_s, u] == target:
                nxt = int(u)
                break
        if nxt is not None:
            current.append(nxt)
        else:
            for u in members:
                if f[prev_s, u] == target - 1:
                    nxt = int(u)
                    break
            if nxt is None:  # pragma: no cover - DP consistency guard
                raise ReproError("path partition reconstruction failed")
            paths.append(current[::-1])
            current = [nxt]
        s, v = prev_s, nxt
    paths.append(current[::-1])
    return paths


def partition_into_paths_greedy(
    graph: Graph, seed: int | np.random.Generator | None = None, restarts: int = 8
) -> tuple[int, list[list[int]]]:
    """Greedy path peeling: repeatedly grow a path from a low-degree vertex.

    Upper bound only.  ``restarts`` random tie-breaking rounds; the best
    partition is returned.  Always valid (checked by construction).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    best: tuple[int, list[list[int]]] | None = None
    for r in range(max(restarts, 1)):
        paths = _peel_once(graph, rng, randomize=r > 0)
        if best is None or len(paths) < best[0]:
            best = (len(paths), paths)
    assert best is not None
    return best


def _peel_once(
    graph: Graph, rng: np.random.Generator, randomize: bool
) -> list[list[int]]:
    """One greedy pass: peel vertex-disjoint paths until all consumed."""
    n = graph.n
    used = np.zeros(n, dtype=bool)
    adj = graph.adjacency_sets()
    remaining_deg = np.array([len(s) for s in adj])
    paths: list[list[int]] = []

    def pick_start() -> int:
        """Choose an unused start vertex (lowest remaining degree)."""
        free = np.flatnonzero(~used)
        degs = remaining_deg[free]
        lows = free[degs == degs.min()]
        return int(rng.choice(lows)) if randomize else int(lows[0])

    def step(v: int) -> int | None:
        """Extend the current path from ``v`` (lowest-degree neighbour)."""
        options = [u for u in adj[v] if not used[u]]
        if not options:
            return None
        degs = [remaining_deg[u] for u in options]
        lo = min(degs)
        lows = [u for u, d in zip(options, degs) if d == lo]
        return int(rng.choice(lows)) if randomize else min(lows)

    def consume(v: int) -> None:
        """Mark ``v`` used and retire it from remaining degrees."""
        used[v] = True
        for u in adj[v]:
            remaining_deg[u] -= 1

    while not used.all():
        start = pick_start()
        consume(start)
        path = [start]
        # extend forward, then extend backward from the original start
        for endpoint, append in ((path[-1], True), (path[0], False)):
            v = endpoint
            while True:
                u = step(v)
                if u is None:
                    break
                consume(u)
                if append:
                    path.append(u)
                else:
                    path.insert(0, u)
                v = u
        paths.append(path)
    assert is_path_partition(graph, paths)
    return paths
