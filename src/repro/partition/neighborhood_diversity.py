"""Neighborhood diversity ``nd(G)`` via twin classes.

Definition 2 of the paper: the minimum number of classes such that inside a
class every pair ``u, v`` has ``N(u) \\ {v} = N(v) \\ {u}``.  The relation
"``u`` and ``v`` are twins" (true twins: ``N[u] = N[v]``; false twins:
``N(u) = N(v)``) is an equivalence, and its classes realize the minimum, so
``nd`` is computable exactly in ``O(n^2)`` by hashing neighbourhoods.

Used by the Theorem-4 / Proposition-2 experiments:
``nd(G^k) <= nd(G^2) <= mw(G)`` for connected ``G`` and ``k >= 2``.
"""

from __future__ import annotations

from repro.graphs.graph import Graph


def twin_classes(graph: Graph) -> list[list[int]]:
    """The twin-equivalence classes, each sorted, ordered by smallest member.

    ``u ~ v`` iff ``N(u) \\ {v} == N(v) \\ {u}``, which holds exactly when
    ``u, v`` are false twins (equal open neighbourhoods) or true twins
    (equal closed neighbourhoods).

    >>> from repro.graphs.generators import complete_bipartite_graph
    >>> len(twin_classes(complete_bipartite_graph(3, 4)))
    2
    """
    buckets: dict[tuple[bool, frozenset[int]], list[int]] = {}
    for v in range(graph.n):
        nb = graph.neighbors(v)
        open_key = (False, nb)
        closed_key = (True, nb | {v})
        # a vertex joins an existing bucket if it matches either key;
        # otherwise it opens both (they are aliases for the same class)
        if open_key in buckets:
            buckets[open_key].append(v)
        elif closed_key in buckets:
            buckets[closed_key].append(v)
        else:
            lst = [v]
            buckets[open_key] = lst
            buckets[closed_key] = lst
    seen: set[int] = set()
    classes: list[list[int]] = []
    for lst in buckets.values():
        if id(lst) not in seen:
            seen.add(id(lst))
            classes.append(sorted(lst))
    classes.sort(key=lambda c: c[0])
    return classes


def neighborhood_diversity(graph: Graph) -> int:
    """``nd(G)`` — the number of twin classes (0 for the empty graph)."""
    if graph.n == 0:
        return 0
    return len(twin_classes(graph))
