"""Corollary 2 / Theorem 4 machinery: path partitions, parameters, coloring."""

from repro.partition.paths_partition import (
    partition_into_paths_exact,
    partition_into_paths_greedy,
    partition_lower_bound,
    is_path_partition,
)
from repro.partition.diameter2 import (
    solve_lpq_diameter2,
    span_from_path_count,
    Diameter2Result,
)
from repro.partition.modular import (
    modular_decomposition,
    modular_width,
    smallest_containing_module,
    is_module,
    MDNode,
)
from repro.partition.neighborhood_diversity import (
    neighborhood_diversity,
    twin_classes,
)
from repro.partition.coloring import (
    greedy_coloring,
    dsatur_coloring,
    chromatic_number_exact,
    chromatic_number_via_twin_quotient,
)
from repro.partition.l1_labeling import (
    l1_labeling_exact,
    l1_labeling_heuristic,
    pmax_approx_labeling,
)

__all__ = [
    "partition_into_paths_exact",
    "partition_into_paths_greedy",
    "partition_lower_bound",
    "is_path_partition",
    "solve_lpq_diameter2",
    "span_from_path_count",
    "Diameter2Result",
    "modular_decomposition",
    "modular_width",
    "smallest_containing_module",
    "is_module",
    "MDNode",
    "neighborhood_diversity",
    "twin_classes",
    "greedy_coloring",
    "dsatur_coloring",
    "chromatic_number_exact",
    "chromatic_number_via_twin_quotient",
    "l1_labeling_exact",
    "l1_labeling_heuristic",
    "pmax_approx_labeling",
]
