"""Graph coloring: greedy, DSATUR, exact, and the twin-quotient route.

Theorem 4 turns ``L(1,...,1)``-labeling into COLORING of ``G^k`` and wins
tractability because ``nd(G^k) <= mw(G)``: after collapsing *false twins*
(same open neighbourhood — they may share a color) the instance shrinks to
roughly the twin-class scale.  ``chromatic_number_via_twin_quotient``
implements exactly that pipeline: dedup false twins, solve the reduced core
exactly, replay the colors.  It returns the same number as the direct exact
solver (asserted in tests) but touches far fewer vertices on low-diversity
graphs — the FPT effect the paper invokes, measured in experiment E8.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.operations import induced_subgraph


def greedy_coloring(graph: Graph, order: Sequence[int] | None = None) -> list[int]:
    """First-fit coloring along ``order`` (default: degree-descending)."""
    n = graph.n
    if order is None:
        order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
    colors = [-1] * n
    for v in order:
        used = {colors[u] for u in graph.neighbors(v) if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def dsatur_coloring(graph: Graph) -> list[int]:
    """DSATUR: color the most saturation-constrained vertex first."""
    n = graph.n
    colors = [-1] * n
    saturation: list[set[int]] = [set() for _ in range(n)]
    degrees = graph.degrees()
    for _ in range(n):
        v = max(
            (u for u in range(n) if colors[u] < 0),
            key=lambda u: (len(saturation[u]), degrees[u], -u),
        )
        c = 0
        while c in saturation[v]:
            c += 1
        colors[v] = c
        for u in graph.neighbors(v):
            saturation[u].add(c)
    return colors


def color_count(colors: Sequence[int]) -> int:
    """Number of distinct colors used."""
    return len(set(colors)) if colors else 0


def is_proper_coloring(graph: Graph, colors: Sequence[int]) -> bool:
    """True iff no edge is monochromatic and every vertex is colored."""
    if len(colors) != graph.n:
        return False
    return all(colors[u] != colors[v] for u, v in graph.edges())


def chromatic_number_exact(graph: Graph, max_n: int = 40) -> tuple[int, list[int]]:
    """Exact ``χ(G)`` with a witness, by DSATUR-seeded branch and bound.

    Searches k-colorability downward from the DSATUR bound; within each
    budget, backtracking with symmetry breaking (a vertex may open at most
    one new color index).  Practical well past the sizes E8 uses.
    """
    n = graph.n
    if n == 0:
        return 0, []
    if n > max_n:
        raise ReproError(f"exact coloring capped at n={max_n} (got {n})")
    if graph.m == 0:
        return 1, [0] * n

    best_colors = dsatur_coloring(graph)
    best_k = color_count(best_colors)
    clique = _greedy_clique(graph)
    lb = len(clique)

    order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
    adj = graph.adjacency_sets()

    while best_k > lb:
        target = best_k - 1
        attempt = _color_with_budget(n, order, adj, target)
        if attempt is None:
            break
        best_colors = attempt
        best_k = target
    return best_k, best_colors


def _color_with_budget(
    n: int, order: list[int], adj: list[frozenset[int]], budget: int
) -> list[int] | None:
    """Exact backtracking colouring within a colour budget (or None)."""
    colors = [-1] * n

    def dfs(i: int, used: int) -> bool:
        """Assign a colour to vertex ``i`` consistent with earlier choices."""
        if i == n:
            return True
        v = order[i]
        forbidden = {colors[u] for u in adj[v] if colors[u] >= 0}
        # existing colors first, then (symmetry breaking) at most one new one
        for c in range(min(used + 1, budget)):
            if c in forbidden:
                continue
            colors[v] = c
            if dfs(i + 1, max(used, c + 1)):
                return True
            colors[v] = -1
        return False

    return colors if dfs(0, 0) else None


def _greedy_clique(graph: Graph) -> list[int]:
    """A maximal clique grown greedily by degree (lower bound for χ)."""
    adj = graph.adjacency_sets()
    clique: list[int] = []
    candidates = set(range(graph.n))
    while candidates:
        v = max(candidates, key=lambda u: (len(adj[u] & candidates), -u))
        clique.append(v)
        candidates &= adj[v]
    return clique


def false_twin_quotient(graph: Graph) -> tuple[Graph, list[int], list[int]]:
    """Collapse false-twin groups (equal open neighbourhoods) to single vertices.

    Returns ``(core, representative, class_of)`` where ``core`` is the
    induced subgraph on one representative per group, ``representative[i]``
    is the original id of core vertex ``i``, and ``class_of[v]`` maps each
    original vertex to its core vertex.  False twins are non-adjacent and
    interchangeable for coloring, so ``χ(core) == χ(G)``.
    """
    groups: dict[frozenset[int], list[int]] = {}
    for v in range(graph.n):
        groups.setdefault(graph.neighbors(v), []).append(v)
    reps = sorted(members[0] for members in groups.values())
    index = {rep: i for i, rep in enumerate(reps)}
    class_of = [0] * graph.n
    for members in groups.values():
        rep = members[0]
        for v in members:
            class_of[v] = index[rep]
    core = induced_subgraph(graph, reps)
    return core, reps, class_of


def chromatic_number_via_twin_quotient(
    graph: Graph, max_core_n: int = 40
) -> tuple[int, list[int]]:
    """Exact ``χ(G)`` through the false-twin quotient (the nd-FPT route).

    >>> from repro.graphs.generators import complete_bipartite_graph
    >>> chromatic_number_via_twin_quotient(complete_bipartite_graph(10, 12))[0]
    2
    """
    if graph.n == 0:
        return 0, []
    core, _reps, class_of = false_twin_quotient(graph)
    k, core_colors = chromatic_number_exact(core, max_n=max_core_n)
    colors = [core_colors[class_of[v]] for v in range(graph.n)]
    assert is_proper_coloring(graph, colors)
    return k, colors
