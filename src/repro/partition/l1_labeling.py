"""Theorem 4 and Corollary 3: ``L(1,...,1)`` via coloring of ``G^k``.

An ``L(1^k)``-labeling demands distinct labels for every pair within
distance ``k`` — exactly a proper coloring of the power graph ``G^k`` (with
span ``χ(G^k) - 1``, using colors ``0..χ-1`` as labels).  Theorem 4's FPT
route goes through the twin quotient of ``G^k`` (``nd(G^k) <= mw(G)`` by
Propositions 1–2); Corollary 3 then scales any ``L(1^k)`` labeling by
``p_max`` to get a ``p_max``-approximation for general ``L(p)``.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.operations import graph_power
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec, all_ones
from repro.partition.coloring import (
    chromatic_number_via_twin_quotient,
    color_count,
    dsatur_coloring,
)


def l1_labeling_exact(graph: Graph, k: int, max_core_n: int = 40) -> Labeling:
    """Optimal ``L(1,...,1)`` (k ones) labeling via exact coloring of ``G^k``.

    Uses the twin-quotient pipeline — the Theorem-4 algorithm.

    >>> from repro.graphs.generators import path_graph
    >>> l1_labeling_exact(path_graph(5), 2).span    # χ(P5^2)=3 -> span 2
    2
    """
    power = graph_power(graph, k) if graph.n else graph
    _, colors = chromatic_number_via_twin_quotient(power, max_core_n=max_core_n)
    labeling = Labeling(tuple(colors))
    labeling.require_feasible(graph, all_ones(k))
    return labeling


def l1_labeling_heuristic(graph: Graph, k: int) -> Labeling:
    """DSATUR on ``G^k`` — polynomial, no optimality guarantee."""
    power = graph_power(graph, k) if graph.n else graph
    colors = dsatur_coloring(power)
    # compact color ids to 0..t-1 so the span equals #colors - 1
    palette = {c: i for i, c in enumerate(sorted(set(colors)))}
    labeling = Labeling(tuple(palette[c] for c in colors))
    labeling.require_feasible(graph, all_ones(k))
    return labeling


def pmax_approx_labeling(
    graph: Graph, spec: LpSpec, exact_coloring: bool = True
) -> Labeling:
    """Corollary 3: a ``p_max``-approximation for ``L(p)`` in one scaling.

    Take an ``L(1^k)`` labeling ``l1`` and return ``p_max * l1``: every pair
    within distance ``d <= k`` now has gap ``>= p_max >= p_d``, so the result
    is feasible for ``L(p)``; its span is ``p_max * span(l1)
    <= p_max * λ_1 <= p_max * λ_p`` (using ``λ_p >= λ_1``, since any
    ``L(p)``-labeling with ``p_d >= 1`` is an ``L(1^k)``-labeling).
    """
    if spec.pmin < 1:
        raise ReproError(
            "Corollary 3 scaling needs every p_d >= 1 "
            f"(got {spec}); zero entries make λ_1 incomparable"
        )
    base = (
        l1_labeling_exact(graph, spec.k)
        if exact_coloring
        else l1_labeling_heuristic(graph, spec.k)
    )
    scaled = Labeling(tuple(spec.pmax * x for x in base.labels))
    scaled.require_feasible(graph, spec)
    return scaled
