"""Corollary 2: diameter-2 ``L(p,q)``-labeling via PARTITION INTO PATHS.

On a diameter-2 graph the reduced TSP instance is 2-valued (weights ``p``
and ``q``).  Writing ``B_π`` for the consecutive pairs of weight ``q``,

    ``λ_p(G, π) = (n-1) p + (q-p) |B_π|``        (paper, proof of Cor. 2)

so for ``p <= q`` the optimum minimizes ``|B_π|``, i.e. maximizes runs of
*adjacent* consecutive pairs — exactly a partition of ``V(G)`` into ``s``
paths with ``|B_π| = s - 1``.  For ``p > q`` the roles swap and the path
partition lives on the complement graph (Proposition 1 guarantees the
parameter ``mw`` is unchanged there).

This module implements the full pipeline with certificates and builds the
final labeling by concatenating the partition's paths into a permutation and
applying Claim 1's prefix sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReductionNotApplicableError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.graphs.operations import complement
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec
from repro.partition.paths_partition import (
    partition_into_paths_exact,
    partition_into_paths_greedy,
)
from repro.reduction.from_tour import labeling_from_order
from repro.reduction.to_tsp import reduce_to_path_tsp


@dataclass(frozen=True)
class Diameter2Result:
    """Outcome of the Corollary-2 pipeline."""

    labeling: Labeling
    span: int
    path_count: int              # s = number of paths in the partition
    partition: list[list[int]]   # the certificate (paths in G or complement)
    on_complement: bool          # True when p > q (partition lives on Ḡ)
    exact: bool


def span_from_path_count(n: int, p: int, q: int, s: int) -> int:
    """The corollary's formula ``λ = (n-1)·min(p,q)'-side`` closed form.

    For ``p <= q``:  ``λ = (n-1) p + (q-p)(s-1)`` where ``s`` counts paths
    in ``G``; for ``p > q`` symmetrically with the complement's ``s``:
    ``λ = (n-1) q + (p-q)(s-1)``.
    """
    if n <= 1:
        return 0
    if p <= q:
        return (n - 1) * p + (q - p) * (s - 1)
    return (n - 1) * q + (p - q) * (s - 1)


def solve_lpq_diameter2(
    graph: Graph, spec: LpSpec, method: str = "exact"
) -> Diameter2Result:
    """Solve ``L(p, q)`` on a diameter-<=2 graph through PARTITION INTO PATHS.

    ``method`` is ``"exact"`` (bitmask DP, certificate-checked) or
    ``"greedy"`` (upper bound).  Raises
    :class:`ReductionNotApplicableError` when ``spec`` is not 2-dimensional,
    the graph has diameter > 2, or ``p_max > 2 p_min``.

    The weight condition is genuinely required: Corollary 2's proof writes
    ``λ_p(G, π)`` as the path weight, i.e. it goes through Claim 1, which
    needs ``p_max <= 2 p_min``.  Empirically the formula is wrong without it
    (e.g. for ``L(5,1)`` on diameter-2 graphs the true span exceeds the
    formula on most instances — see the regression test).

    >>> from repro.graphs.generators import complete_graph
    >>> from repro.labeling.spec import L21
    >>> solve_lpq_diameter2(complete_graph(4), L21).span
    6
    """
    if spec.k != 2:
        raise ReductionNotApplicableError(
            f"Corollary 2 needs a 2-dimensional spec, got {spec}"
        )
    if not spec.reduction_applicable:
        raise ReductionNotApplicableError(
            f"Corollary 2 inherits Theorem 2's weight condition; {spec} has "
            f"p_max = {spec.pmax} > 2 p_min = {2 * spec.pmin}"
        )
    n = graph.n
    if n == 0:
        return Diameter2Result(Labeling(()), 0, 0, [], False, True)
    # one shared analysis: connectivity (single BFS), diameter, and the
    # reduction below all read the same oracle — one APSP for the pipeline
    analysis = get_analysis(graph)
    if not analysis.is_connected:
        raise ReductionNotApplicableError("Corollary 2 needs a connected graph")
    if n > 1 and analysis.diameter > 2:
        raise ReductionNotApplicableError("Corollary 2 needs diameter <= 2")

    p, q = spec.p
    on_complement = p > q
    target = complement(graph) if on_complement else graph

    if method == "exact":
        s, paths = partition_into_paths_exact(target)
        exact = True
    elif method == "greedy":
        s, paths = partition_into_paths_greedy(target)
        exact = False
    else:
        raise ReductionNotApplicableError(f"unknown method {method!r}")

    # permutation = concatenation of partition paths; its consecutive pairs
    # inside paths are target-edges (weight min(p,q)), between paths
    # target-non-edges (weight max(p,q)) — except a subtlety: consecutive
    # endpoints of *different* paths might happen to be target-adjacent,
    # which only improves the span.  The labeling is rebuilt by Claim 1 and
    # re-verified, so the reported span is always achieved.
    order = [v for path in paths for v in path]

    red = reduce_to_path_tsp(graph, spec, analysis=analysis)
    labeling = labeling_from_order(red, order)
    labeling.require_feasible(graph, spec, dist=red.distances)

    formula = span_from_path_count(n, p, q, s)
    span = labeling.span
    # the formula is the span of the concatenated order when no lucky
    # adjacency occurs between path endpoints; the realized span can only be
    # <= the formula value.
    assert span <= formula, (span, formula)
    return Diameter2Result(labeling, span, s, paths, on_complement, exact)


