"""repro — L(p)-labeling of small-diameter graphs via Metric Path TSP.

Reproduction of Hanaka, Ono & Sugiyama, *Solving Distance-constrained
Labeling Problems for Small Diameter Graphs via TSP* (IPDPS-W 2023,
arXiv:2303.01290).

Quickstart
----------
>>> from repro import Graph, L21, solve_labeling
>>> g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])  # C5, diam 2
>>> result = solve_labeling(g, L21)
>>> result.span
4

See ``ARCHITECTURE.md`` at the repository root for the layer map (graphs,
labeling, reduction, TSP engines, partition, service, harness) and
``ROADMAP.md`` for the north star and open items.
"""

from repro.errors import (
    ReproError,
    GraphError,
    DisconnectedGraphError,
    ReductionNotApplicableError,
    InfeasibleInstanceError,
    SolverError,
    NotMetricError,
    RequestValidationError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerCrashedError,
    ERROR_TABLE,
    error_code,
    error_payload,
    http_status,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import diameter, all_pairs_distances
from repro.labeling.spec import LpSpec, L21, L11, all_ones
from repro.labeling.labeling import Labeling
from repro.dynamic import DeltaEngine, full_apsp_refresh_count
from repro.reduction.solver import LpTspSolver, SolveResult, solve_labeling
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.service.api import LabelingService, solve_record
from repro.service.batch import BatchReport, BatchSolver, ServiceResult
from repro.service.cache import CacheStats, ResultCache
from repro.service.canonical import CanonicalForm, canonical_form
from repro.service.protocol import SolveRequest, SolveResponse
from repro.service.server import ConcurrentLabelingService, ServerStats
from repro.service.shard import ShardedResultCache
from repro.session import LabelingSession
from repro.tsp.instance import TSPInstance
from repro.tsp.portfolio import ENGINES, solve_path

#: Perf subsystem re-exports, resolved lazily (PEP 562): the suite pulls in
#: the whole measurement stack, which plain `import repro` users never pay.
_PERF_EXPORTS = ("PerfRecord", "Trajectory", "run_perf_suite")

#: Network-tier re-exports, also lazy: the HTTP server and load generator
#: drag in asyncio machinery that library users never touch.
_NET_EXPORTS = ("NetworkServer", "BackgroundServer", "run_load")


def __getattr__(name: str):
    """Lazily resolve the perf- and net-subsystem re-exports (PEP 562)."""
    if name in _PERF_EXPORTS:
        from repro import perf

        return getattr(perf, name)
    if name in _NET_EXPORTS:
        if name == "run_load":
            from repro.harness.loadgen import run_load

            return run_load
        from repro import net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "diameter",
    "all_pairs_distances",
    "LpSpec",
    "L21",
    "L11",
    "all_ones",
    "Labeling",
    "LpTspSolver",
    "SolveResult",
    "solve_labeling",
    "LabelingSession",
    "LabelingService",
    "solve_record",
    "BatchReport",
    "BatchSolver",
    "ServiceResult",
    "SolveRequest",
    "SolveResponse",
    "NetworkServer",
    "BackgroundServer",
    "run_load",
    "CacheStats",
    "ResultCache",
    "ShardedResultCache",
    "ConcurrentLabelingService",
    "ServerStats",
    "CanonicalForm",
    "canonical_form",
    "DeltaEngine",
    "full_apsp_refresh_count",
    "PerfRecord",
    "Trajectory",
    "run_perf_suite",
    "reduce_to_path_tsp",
    "TSPInstance",
    "ENGINES",
    "solve_path",
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "ReductionNotApplicableError",
    "InfeasibleInstanceError",
    "SolverError",
    "NotMetricError",
    "RequestValidationError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "WorkerCrashedError",
    "ERROR_TABLE",
    "error_code",
    "error_payload",
    "http_status",
    "__version__",
]
