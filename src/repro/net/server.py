"""Asyncio HTTP front end over :class:`ConcurrentLabelingService`.

This is the wire tier of the serving stack: a pure-stdlib asyncio HTTP/1.1
server (no third-party framework) that speaks the
:mod:`repro.service.protocol` schema on five routes:

``POST /solve``
    One :meth:`SolveRequest.to_json` body in, one
    :meth:`SolveResponse.to_json` body out.  Submission is non-blocking —
    a full queue maps :class:`~repro.errors.ServiceOverloadedError`
    straight to HTTP 429, so overload is an explicit, immediate signal
    instead of silent latency.
``POST /batch``
    NDJSON stream of requests in, NDJSON stream of responses out **in
    completion order** (the reply is close-delimited, flushed line by
    line as solves finish).  Per-request failures become error lines
    tagged with the request's ``tag``; the stream keeps going.
``GET /stats``
    The labeling service's :meth:`ServerStats.to_json` snapshot, plus the
    QoS router's state under ``"router"`` (per-tier routing counts,
    degradations, deadline drops, thresholds).
``GET /metrics``
    Prometheus text exposition (format 0.0.4) straight from the process
    :data:`~repro.obs.metrics.REGISTRY`.
``GET /healthz``
    ``{"status": "ok"}`` — flips to ``"draining"`` once shutdown begins.

Every error body is the JSON payload from
:func:`repro.errors.error_payload`, so the wire and the CLI share one
error vocabulary (stable ``code`` strings, HTTP statuses from the same
table).

Shutdown is graceful: :meth:`NetworkServer.shutdown` stops the listener,
lets every in-flight request finish, answers late submissions on
still-open connections with 503 (``service_closed``), then drains the
underlying labeling service.

The event loop owns all connection state; CPU-heavy work — canonical-form
key derivation inside ``submit`` and the solves themselves — happens on
the labeling service's executor threads, so the loop stays responsive at
high connection churn.

:class:`BackgroundServer` wraps the whole thing in a daemon thread running
its own event loop, giving synchronous callers (tests, benchmarks, the
perf suite, ``repro-label load`` self-serve mode) a context-managed server
with a real TCP port.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time

from repro.errors import (
    ReproError,
    ServiceClosedError,
    error_payload,
    http_status,
)
from repro.net.httpio import (
    HttpMessage,
    LINE_LIMIT,
    read_request,
    response_head,
    write_response,
)
from repro.obs.metrics import REGISTRY
from repro.service.protocol import SolveRequest
from repro.service.server import ConcurrentLabelingService

#: Content type of the Prometheus text exposition the scrape endpoint serves.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Known routes, for the 404/405 split and the endpoint metric label.
_ROUTES = {
    "/solve": ("POST",),
    "/batch": ("POST",),
    "/stats": ("GET",),
    "/metrics": ("GET",),
    "/healthz": ("GET",),
}

_M_REQUESTS = REGISTRY.counter("repro_http_requests_total")
_M_LATENCY = REGISTRY.histogram("repro_http_request_seconds")
_M_LATENCY.labels()  # materialize: expose zeroed buckets immediately
_M_OPEN = REGISTRY.gauge("repro_http_open_connections")
_M_OPEN.labels()


class NetworkServer:
    """The asyncio HTTP front end; one instance per listening socket.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    service:
        An existing :class:`ConcurrentLabelingService` to expose; the
        caller keeps ownership (shutdown leaves it running).  When omitted
        the server builds its own from ``workers`` / ``queue_size`` /
        ``offload`` and drains it on shutdown.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: ConcurrentLabelingService | None = None,
        workers: int = 4,
        queue_size: int | None = None,
        offload: bool | None = None,
    ) -> None:
        """Bind configuration; the socket opens in :meth:`start`."""
        self.host = host
        self.port = port
        self._owns_service = service is None
        if service is None:
            kwargs = {} if queue_size is None else {"queue_size": queue_size}
            service = ConcurrentLabelingService(
                workers=workers, offload=offload, **kwargs
            )
        self.service = service
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._shut_down = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._active = 0                 # requests currently being answered
        self._quiet = asyncio.Event()    # set whenever _active == 0
        self._quiet.set()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the listening socket (resolves ``port=0`` to the real port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def wait_shutdown(self) -> None:
        """Block until :meth:`shutdown` has completed."""
        await self._shut_down.wait()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection: keep-alive loop over requests."""
        self._writers.add(writer)
        _M_OPEN.inc(1)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ReproError as exc:    # framing error: answer and close
                    write_response(
                        writer,
                        http_status(exc),
                        json.dumps(error_payload(exc)).encode(),
                        close=True,
                    )
                    await writer.drain()
                    return
                if request is None:
                    return                   # peer closed cleanly
                keep_alive = await self._serve_request(request, writer)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return                           # peer vanished mid-message
        finally:
            self._writers.discard(writer)
            _M_OPEN.inc(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve_request(
        self, request: HttpMessage, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether the connection stays open.

        Wraps the route handler with the in-flight accounting graceful
        drain waits on, the wire-latency histogram, and the
        per-endpoint/status request counter.
        """
        t0 = time.perf_counter()
        endpoint = request.path if request.path in _ROUTES else "other"
        self._active += 1
        self._quiet.clear()
        try:
            status, keep_alive = await self._route(request, writer)
        finally:
            self._active -= 1
            if self._active == 0:
                self._quiet.set()
            _M_LATENCY.observe(time.perf_counter() - t0)
        _M_REQUESTS.labels(endpoint=endpoint, status=str(status)).inc()
        return keep_alive and not self._closing

    async def _route(
        self, request: HttpMessage, writer: asyncio.StreamWriter
    ) -> tuple[int, bool]:
        """Dispatch to the endpoint handler; returns ``(status, keep)``."""
        method, path = request.method, request.path
        if path not in _ROUTES:
            return self._error(writer, ReproError(f"no such path: {path}"), 404)
        if method not in _ROUTES[path]:
            return self._error(
                writer,
                ReproError(f"{path} only accepts {_ROUTES[path][0]}"),
                405,
            )
        if path == "/healthz":
            body = {"status": "draining" if self._closing else "ok"}
            return self._json(writer, 200, body)
        if path == "/stats":
            payload = self.service.stats.to_json()
            payload["router"] = self.service.router.to_json()
            return self._json(writer, 200, payload)
        if path == "/metrics":
            text = REGISTRY.render_prom().encode("utf-8")
            write_response(writer, 200, text, content_type=PROM_CONTENT_TYPE)
            return 200, True
        try:
            if self._closing:
                raise ServiceClosedError("server is draining; retry elsewhere")
            if path == "/solve":
                return await self._solve(request, writer)
            return await self._batch(request, writer)
        except ReproError as exc:
            return self._error(writer, exc)

    # ------------------------------------------------------------------
    def _json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> tuple[int, bool]:
        """Write one JSON response; keep the connection open."""
        write_response(writer, status, json.dumps(payload).encode("utf-8"))
        return status, True

    def _error(
        self,
        writer: asyncio.StreamWriter,
        exc: ReproError,
        status: int | None = None,
    ) -> tuple[int, bool]:
        """Write the table-driven JSON error body for ``exc``."""
        payload = error_payload(exc)
        if status is not None:
            payload["status"] = status
        status = payload["status"]
        write_response(writer, status, json.dumps(payload).encode("utf-8"))
        return status, True

    async def _submit(self, request: SolveRequest, block: bool) -> asyncio.Future:
        """Submit off-loop (key derivation runs APSP) and await-ify the future.

        ``submit`` itself is CPU-bound — canonical-form derivation runs the
        APSP kernel — so it goes to the default executor; the returned
        :class:`concurrent.futures.Future` is wrapped for the event loop.
        """
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(
            None,
            functools.partial(self.service.submit, request, block=block),
        )
        return asyncio.wrap_future(future, loop=loop)

    async def _solve(
        self, request: HttpMessage, writer: asyncio.StreamWriter
    ) -> tuple[int, bool]:
        """``POST /solve``: parse, submit without blocking, answer."""
        solve_request = SolveRequest.from_json_line(request.body)
        response = await (await self._submit(solve_request, block=False))
        return self._json(writer, 200, response.to_json())

    async def _batch(
        self, request: HttpMessage, writer: asyncio.StreamWriter
    ) -> tuple[int, bool]:
        """``POST /batch``: NDJSON in, completion-order NDJSON out.

        The whole batch is validated before the first response byte, so a
        malformed line is a clean HTTP 400.  After that the reply is a
        close-delimited stream: every finished solve is flushed as its own
        line the moment it completes — the client sees results in
        completion order, not submission order.  Submission blocks on the
        service queue (backpressure throttles the batch instead of
        rejecting it); per-request solve failures become
        ``{"tag", "error", "code"}`` lines and the stream continues.
        """
        lines = [ln for ln in request.body.splitlines() if ln.strip()]
        requests = [SolveRequest.from_json_line(ln) for ln in lines]
        writer.write(
            response_head(200, content_type="application/x-ndjson", close=True)
        )
        loop = asyncio.get_running_loop()
        done: asyncio.Queue = asyncio.Queue()

        def _finished(tag: str | None, fut) -> None:
            # runs on a service worker thread — hop back onto the loop
            loop.call_soon_threadsafe(done.put_nowait, (tag, fut))

        pending = 0
        for solve_request in requests:
            try:
                future = await self._submit(solve_request, block=True)
            except ReproError as exc:
                done.put_nowait((solve_request.tag, exc))
                pending += 1
                continue
            future.add_done_callback(
                functools.partial(_finished, solve_request.tag)
            )
            pending += 1
        for _ in range(pending):
            tag, outcome = await done.get()
            if not isinstance(outcome, BaseException):
                try:
                    record = outcome.result().to_json()
                except BaseException as exc:
                    outcome = exc
            if isinstance(outcome, BaseException):
                record = {"tag": tag}
                record.update(error_payload(_as_repro_error(outcome)))
            writer.write(json.dumps(record).encode("utf-8") + b"\n")
            await writer.drain()
        return 200, False                    # close-delimited: one per conn

    # ------------------------------------------------------------------
    async def shutdown(self, drain: bool = True) -> None:
        """Stop intake, let in-flight requests finish, retire the service.

        With ``drain=True`` (default) every request already being answered
        runs to completion — late submissions arriving on still-open
        keep-alive connections get 503 ``service_closed`` — and then the
        owned labeling service drains its queue.  ``drain=False`` cancels
        queued work instead.  Idempotent.
        """
        if self._closing and self._shut_down.is_set():
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            await self._quiet.wait()
        for writer in list(self._writers):
            writer.close()
        if self._owns_service:
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(self.service.shutdown, wait=drain)
            )
        self._shut_down.set()


def _as_repro_error(exc: BaseException) -> ReproError:
    """Clamp an arbitrary failure to the error-table vocabulary."""
    return exc if isinstance(exc, ReproError) else ReproError(str(exc))


class BackgroundServer:
    """A :class:`NetworkServer` on its own daemon thread and event loop.

    Synchronous callers (tests, benchmarks, the perf suite's
    ``network_service`` scenario, ``repro-label load`` self-serve mode)
    get a live TCP port without touching asyncio:

    constructor starts the loop + server and blocks until the socket is
    bound; :meth:`shutdown` runs the graceful drain on the loop and joins
    the thread.  Usable as a context manager.
    """

    def __init__(self, timeout: float = 30.0, **server_kwargs) -> None:
        """Start the loop thread and wait for the socket to bind."""
        self._kwargs = server_kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: NetworkServer | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._down = False
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise ReproError("background server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        """Thread body: own loop, start the server, park until shutdown."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                self.server = NetworkServer(**self._kwargs)
                await self.server.start()
            except BaseException as exc:    # surface to the constructor
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.wait_shutdown()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bound host."""
        return self.server.host

    @property
    def port(self) -> int:
        """Bound (resolved) port."""
        return self.server.port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self.server.url

    @property
    def service(self) -> ConcurrentLabelingService:
        """The labeling service behind the wire (for tests and stats)."""
        return self.server.service

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Gracefully stop the server and join its thread.  Idempotent."""
        if self._down:
            return
        self._down = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        """Context manager: the running server itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Graceful drain on exit."""
        self.shutdown(drain=True)
