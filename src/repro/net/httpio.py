"""Minimal HTTP/1.1 plumbing over asyncio streams.

The standard library ships an asyncio TCP layer but no asyncio HTTP layer,
and this project deliberately adds no third-party server framework — the
wire protocol is five fixed routes speaking JSON/NDJSON, so the ~150 lines
here (request/response framing, keep-alive, content-length bodies) are the
whole story.  Both sides of the wire share this module: the
:mod:`repro.net.server` front end parses requests and writes responses,
the :mod:`repro.harness.loadgen` client writes requests and parses
responses — one framing implementation, tested from both ends.

Framing rules kept on purpose (the subset the protocol needs):

- request bodies require ``Content-Length`` (no chunked uploads);
- responses either carry ``Content-Length`` or are delimited by connection
  close (the streaming ``/batch`` NDJSON reply uses the latter);
- header names are case-insensitive (normalized to lowercase);
- oversized bodies fail fast with :class:`RequestValidationError` before
  any allocation of the body buffer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import RequestValidationError

#: Largest request body accepted (bytes).  A batch of thousands of small
#: graphs fits comfortably; anything larger is a malformed or hostile
#: client and is rejected before the body is read.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: ``StreamReader`` line limit — a single header line never needs more.
LINE_LIMIT = 64 * 1024

#: Reason phrases for every status the protocol emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpMessage:
    """One parsed HTTP message (request or response)."""

    start: tuple[str, str, str]          # request: (method, path, version)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def method(self) -> str:
        """Request method (``GET``/``POST``)."""
        return self.start[0]

    @property
    def path(self) -> str:
        """Request path (query strings are not part of the protocol)."""
        return self.start[1]

    @property
    def status(self) -> int:
        """Response status code (only meaningful for responses)."""
        return int(self.start[1])


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    """Read header lines up to the blank separator; lowercase the names."""
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str], max_body: int
) -> bytes:
    """Read a ``Content-Length`` body (empty when the header is absent)."""
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise RequestValidationError(f"bad Content-Length: {raw!r}") from None
    if length < 0 or length > max_body:
        raise RequestValidationError(
            f"body of {length} bytes exceeds the {max_body}-byte limit"
        )
    return (await reader.readexactly(length)) if length else b""


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> HttpMessage | None:
    """Parse one request off the stream; ``None`` on a cleanly closed peer."""
    line = await reader.readline()
    if not line.strip():
        return None                      # peer closed (or sent a bare CRLF)
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise RequestValidationError(f"malformed request line: {line!r}")
    method, path, version = parts
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, max_body)
    return HttpMessage(start=(method, path, version), headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> HttpMessage:
    """Parse one response; a body without ``Content-Length`` reads to EOF."""
    line = await reader.readline()
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise RequestValidationError(f"malformed status line: {line!r}")
    headers = await _read_headers(reader)
    if "content-length" in headers:
        body = await _read_body(reader, headers, MAX_BODY_BYTES)
    else:
        body = await reader.read()       # close-delimited (the /batch stream)
    return HttpMessage(
        start=(parts[0], parts[1], parts[2] if len(parts) > 2 else ""),
        headers=headers,
        body=body,
    )


def response_head(
    status: int,
    content_type: str = "application/json",
    content_length: int | None = None,
    close: bool = False,
) -> bytes:
    """Serialize a response status line + headers (body not included)."""
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    close: bool = False,
) -> None:
    """Queue one complete content-length response on the writer."""
    writer.write(
        response_head(
            status, content_type, content_length=len(body), close=close
        )
        + body
    )


def write_request(
    writer: asyncio.StreamWriter, method: str, path: str, body: bytes = b""
) -> None:
    """Queue one client request (always ``Connection: close``).

    The load generator opens a fresh connection per request — the honest
    accounting for an open-loop client, where every arrival pays the full
    wire cost — so the request advertises the close up front.
    """
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        + body
    )
