"""Network tier: the asyncio HTTP front end over the serving stack.

See :mod:`repro.net.server` for the endpoints and shutdown semantics and
:mod:`repro.net.httpio` for the shared HTTP framing (used by both the
server and the open-loop load generator's client).
"""

from repro.net.server import BackgroundServer, NetworkServer, PROM_CONTENT_TYPE

__all__ = ["BackgroundServer", "NetworkServer", "PROM_CONTENT_TYPE"]
