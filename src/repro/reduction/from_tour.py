"""Claim 1: from a vertex permutation to the optimal labeling *for that order*.

For a permutation ``π = (v_1, ..., v_n)``, the minimum-span labeling among
those non-decreasing along ``π`` is exactly the prefix sums of the path-edge
weights:  ``l(v_i) = Σ_{t<i} w(v_t, v_{t+1})``.  Its span is the path weight
of ``π`` in ``H`` — so minimizing over ``π`` *is* Path TSP.

The proof needs both reduction preconditions:

* every weight >= ``p_min``  (consecutive labels move forward enough), and
* every weight <= ``2 p_min`` (a non-consecutive constraint can never bind
  once the consecutive one is satisfied: ``w_{i-1,i} - w_{j,i} >= -p_min``).

This module is therefore only called on :class:`ReducedInstance` outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SolverError
from repro.labeling.labeling import Labeling
from repro.reduction.to_tsp import ReducedInstance


def labeling_from_order(red: ReducedInstance, order: Sequence[int]) -> Labeling:
    """The prefix-sum labeling realizing ``λ_p(G, π)`` for ``π = order``.

    >>> from repro.graphs.generators import path_graph
    >>> from repro.labeling.spec import L21
    >>> from repro.reduction.to_tsp import reduce_to_path_tsp
    >>> red = reduce_to_path_tsp(path_graph(2), L21)
    >>> labeling_from_order(red, (0, 1)).labels
    (0, 2)
    """
    n = red.n
    idx = np.asarray(order, dtype=np.intp)
    if sorted(idx.tolist()) != list(range(n)):
        raise SolverError("order must be a permutation of the vertices")
    labels = np.zeros(n, dtype=np.int64)
    if n >= 2:
        w = red.instance.weights
        steps = w[idx[:-1], idx[1:]].astype(np.int64)  # weights are integer p's
        labels[idx[1:]] = np.cumsum(steps)
    return Labeling(tuple(int(x) for x in labels))


def span_for_order(red: ReducedInstance, order: Sequence[int]) -> int:
    """``λ_p(G, π)`` — equals the path length of ``π`` in ``H`` (Claim 1)."""
    return int(round(red.instance.path_length(list(order))))
