"""End-to-end L(p)-labeling solver: reduce, run a TSP engine, reconstruct.

This is the library's front door.  It packages the paper's framework exactly:

1. validate Theorem 2's preconditions,
2. reduce to Metric Path TSP (:mod:`repro.reduction.to_tsp`),
3. solve with a selectable engine (:mod:`repro.tsp.portfolio` — exact
   Held–Karp, guaranteed 1.5-approx Hoogeveen, LK-style heuristic, ...),
4. reconstruct the labeling by prefix sums (Claim 1) and **re-verify it**
   against the original graph, so an engine bug can never escape as a
   silently-infeasible labeling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.graphs.analysis import GraphAnalysis
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec
from repro.reduction.from_tour import labeling_from_order
from repro.reduction.to_tsp import ReducedInstance, reduce_to_path_tsp
from repro.tsp.portfolio import EXACT_ENGINES, solve_path
from repro.tsp.tour import HamPath


@dataclass(frozen=True)
class SolveResult:
    """Everything a caller may want from one solve."""

    labeling: Labeling
    span: int
    engine: str
    exact: bool              # True when the engine guarantees optimality
    path: HamPath            # the Hamiltonian path realizing the span
    reduced: ReducedInstance
    reduce_seconds: float
    solve_seconds: float

    @property
    def order(self) -> tuple[int, ...]:
        """The solved Hamiltonian path's vertex order."""
        return self.path.order


def solve_labeling(
    graph: Graph,
    spec: LpSpec,
    engine: str = "auto",
    verify: bool = True,
    analysis: GraphAnalysis | None = None,
) -> SolveResult:
    """Solve L(p)-labeling via the TSP framework.

    Parameters
    ----------
    engine:
        An engine name from :data:`repro.tsp.portfolio.ENGINES`, or ``auto``
        (exact for small ``n``, LK-style beyond).
    verify:
        Re-check the reconstructed labeling against the original graph.
        Reuses the reduction's distance matrix + ``O(k n^2)``; on by default.
    analysis:
        Forward an existing :class:`GraphAnalysis` so validation, the
        reduction and verification all share one distance matrix.  The
        default pulls the graph's memoized oracle, which gives the same
        guarantee within a process.

    Raises
    ------
    ReductionNotApplicableError
        If the graph/spec violate Theorem 2's preconditions.

    >>> from repro.graphs.generators import cycle_graph
    >>> from repro.labeling.spec import L21
    >>> solve_labeling(cycle_graph(5), L21, engine="held_karp").span
    4
    """
    t0 = time.perf_counter()
    red = reduce_to_path_tsp(graph, spec, analysis=analysis)
    t1 = time.perf_counter()
    resolved = engine
    if engine == "auto":
        resolved = "held_karp" if red.n <= 15 else "lk"
    path = solve_path(red.instance, resolved)
    t2 = time.perf_counter()

    labeling = labeling_from_order(red, path.order)
    if verify:
        labeling.require_feasible(graph, spec, dist=red.distances)
        # Claim 1 consistency: span must equal the path weight
        assert labeling.span == int(round(path.length)), (
            f"span {labeling.span} != path weight {path.length}"
        )
    return SolveResult(
        labeling=labeling,
        span=labeling.span,
        engine=resolved,
        exact=resolved in EXACT_ENGINES,
        path=path,
        reduced=red,
        reduce_seconds=t1 - t0,
        solve_seconds=t2 - t1,
    )


class LpTspSolver:
    """Reusable facade bound to one spec (convenient for sweeps).

    >>> from repro.labeling.spec import L21
    >>> from repro.graphs.generators import complete_graph
    >>> LpTspSolver(L21).solve(complete_graph(4)).span
    6
    """

    def __init__(self, spec: LpSpec, engine: str = "auto", verify: bool = True):
        """Bind a spec, engine choice and verification policy."""
        self.spec = spec
        self.engine = engine
        self.verify = verify

    def solve(self, graph: Graph) -> SolveResult:
        """Solve the bound spec on ``graph`` (see :func:`solve_labeling`)."""
        return solve_labeling(graph, self.spec, engine=self.engine, verify=self.verify)

    def span(self, graph: Graph) -> int:
        """The solved span only (convenience for sweeps)."""
        return self.solve(graph).span
