"""Theorem 2: the ``O(nm)`` reduction from L(p)-labeling to Metric Path TSP.

Given ``(G, p)`` with ``diam(G) <= k`` and ``p_max <= 2 p_min``, build the
complete graph ``H`` on ``V(G)`` with ``w(u, v) = p_{dist_G(u, v)}``.  The
paper proves:

* ``w`` is a metric: every weight lies in ``[p_min, 2 p_min]``, so any two
  edges dominate any third — the triangle inequality holds *for structural
  reasons*, not numerically (asserted here as a cheap invariant);
* the minimum span ``λ_p(G)`` equals the minimum weight of a Hamiltonian
  path of ``H`` (Claim 1), and prefix sums along an optimal path give an
  optimal labeling (:mod:`repro.reduction.from_tour`).

Cost: one APSP — served by the shared :mod:`repro.graphs.analysis` oracle,
so it is free whenever any earlier stage already touched distances — plus
an ``O(n^2)`` matrix gather.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import GraphAnalysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec
from repro.reduction.validation import ApplicabilityReport, check_applicable
from repro.tsp.instance import TSPInstance


@dataclass(frozen=True)
class ReducedInstance:
    """The reduction's output: the TSP instance plus provenance.

    Keeping the source graph, spec, distance matrix and the graph's
    :class:`GraphAnalysis` together lets downstream code (labeling
    reconstruction, verification, benchmarks) avoid recomputing the APSP.
    """

    graph: Graph
    spec: LpSpec
    distances: np.ndarray
    instance: TSPInstance
    analysis: GraphAnalysis | None = None

    @property
    def n(self) -> int:
        """Vertex count of the reduced instance."""
        return self.instance.n


def reduce_to_path_tsp(
    graph: Graph, spec: LpSpec, analysis: GraphAnalysis | None = None
) -> ReducedInstance:
    """Build ``H`` with ``w(u,v) = p_{dist(u,v)}`` after checking Theorem 2.

    ``analysis`` forwards an existing oracle (the default pulls the graph's
    memoized one), so validation, the weight gather and every later
    consumer of the returned instance share a single distance matrix.

    >>> from repro.graphs.generators import cycle_graph
    >>> from repro.labeling.spec import L21
    >>> red = reduce_to_path_tsp(cycle_graph(5), L21)
    >>> float(red.instance.weights.min()), float(red.instance.weights.max())
    (0.0, 2.0)
    """
    report: ApplicabilityReport = check_applicable(graph, spec, analysis=analysis)
    n = graph.n

    # w[u, v] = p[dist[u, v]], gathered one distance row block at a time; p
    # is 1-indexed by distance, so prepend a 0 for the diagonal (distance
    # 0).  Applicability already proved the graph connected with diam <= k,
    # so every entry indexes inside the lookup.
    lookup = np.concatenate(([0], np.asarray(spec.p, dtype=np.int64)))
    w = np.empty((n, n), dtype=np.float64)
    for lo, hi, blk in report.analysis.iter_row_blocks():
        w[lo:hi] = lookup[blk]
    dist = report.distances

    instance = TSPInstance(w)
    # structural metricity (paper's observation): all off-diagonal weights in
    # [p_min, 2 p_min]; cheap to assert, catastrophic to get wrong.
    if n >= 2:
        off = w[~np.eye(n, dtype=bool)]
        assert off.min() >= spec.pmin and off.max() <= 2 * spec.pmin
    return ReducedInstance(
        graph=graph,
        spec=spec,
        distances=dist,
        instance=instance,
        analysis=report.analysis,
    )
