"""The paper's contribution: L(p)-labeling -> Metric Path TSP.

* :mod:`repro.reduction.validation` — Theorem 2's preconditions.
* :mod:`repro.reduction.to_tsp` — the ``O(nm)`` reduction itself.
* :mod:`repro.reduction.from_tour` — Claim 1: permutation -> optimal labeling.
* :mod:`repro.reduction.solver` — the end-to-end facade with engine choice.
"""

from repro.reduction.validation import (
    check_applicable,
    is_applicable,
    ApplicabilityReport,
)
from repro.reduction.to_tsp import reduce_to_path_tsp, ReducedInstance
from repro.reduction.from_tour import labeling_from_order, span_for_order
from repro.reduction.solver import LpTspSolver, SolveResult, solve_labeling

__all__ = [
    "check_applicable",
    "is_applicable",
    "ApplicabilityReport",
    "reduce_to_path_tsp",
    "ReducedInstance",
    "labeling_from_order",
    "span_for_order",
    "LpTspSolver",
    "SolveResult",
    "solve_labeling",
]
