"""Theorem 2 applicability: connected, ``diam(G) <= k``, ``p_max <= 2 p_min``.

The reduction is *only* correct under these preconditions (the paper's
Claim 1 uses both inequalities), so the solver refuses loudly instead of
returning silently-wrong answers when they fail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReductionNotApplicableError
from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHABLE, all_pairs_distances
from repro.labeling.spec import LpSpec


@dataclass(frozen=True)
class ApplicabilityReport:
    """Outcome of the precondition check, with the reusable distance matrix."""

    connected: bool
    diameter: int | None          # None when disconnected
    k: int
    pmin: int
    pmax: int
    distances: np.ndarray

    @property
    def diameter_ok(self) -> bool:
        return self.diameter is not None and self.diameter <= self.k

    @property
    def weights_ok(self) -> bool:
        return self.pmin >= 1 and self.pmax <= 2 * self.pmin

    @property
    def applicable(self) -> bool:
        return self.connected and self.diameter_ok and self.weights_ok

    def reason(self) -> str:
        """Human-readable explanation of the first failing precondition."""
        if not self.connected:
            return "graph is disconnected"
        if not self.diameter_ok:
            return f"diam(G) = {self.diameter} exceeds k = {self.k}"
        if not self.weights_ok:
            return (
                f"p_max = {self.pmax} > 2 * p_min = {2 * self.pmin}"
                if self.pmin >= 1
                else f"p_min = {self.pmin} must be >= 1"
            )
        return "applicable"


def analyze(graph: Graph, spec: LpSpec) -> ApplicabilityReport:
    """Compute the report (one APSP pass; matrix is reused by the reduction)."""
    dist = all_pairs_distances(graph)
    off_diag = dist[~np.eye(max(graph.n, 1), dtype=bool)] if graph.n else dist
    connected = graph.n <= 1 or bool(np.all(off_diag != UNREACHABLE))
    diam = int(dist.max()) if connected and graph.n > 1 else (0 if connected else None)
    return ApplicabilityReport(
        connected=connected,
        diameter=diam,
        k=spec.k,
        pmin=spec.pmin,
        pmax=spec.pmax,
        distances=dist,
    )


def is_applicable(graph: Graph, spec: LpSpec) -> bool:
    """True iff Theorem 2's preconditions hold for ``(G, p)``."""
    return analyze(graph, spec).applicable


def check_applicable(graph: Graph, spec: LpSpec) -> ApplicabilityReport:
    """Return the report, raising :class:`ReductionNotApplicableError` if bad."""
    report = analyze(graph, spec)
    if not report.applicable:
        raise ReductionNotApplicableError(
            f"Theorem 2 reduction not applicable: {report.reason()}"
        )
    return report
