"""Theorem 2 applicability: connected, ``diam(G) <= k``, ``p_max <= 2 p_min``.

The reduction is *only* correct under these preconditions (the paper's
Claim 1 uses both inequalities), so the solver refuses loudly instead of
returning silently-wrong answers when they fail.

All distance facts come from the shared :class:`~repro.graphs.analysis.
GraphAnalysis` oracle: connectivity is a single-BFS pre-check (disconnected
input is rejected without paying for APSP), and the distance matrix behind
``diameter`` is the same one the reduction, verification and canonical-form
layers reuse — one APSP per graph version, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReductionNotApplicableError
from repro.graphs.analysis import GraphAnalysis, ensure_current
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec


@dataclass(frozen=True)
class ApplicabilityReport:
    """Outcome of the precondition check, carrying the reusable analysis."""

    connected: bool
    diameter: int | None          # None when disconnected
    k: int
    pmin: int
    pmax: int
    analysis: GraphAnalysis

    @property
    def distances(self) -> np.ndarray:
        """The graph's distance matrix (lazy; shared through the oracle)."""
        return self.analysis.distances

    @property
    def diameter_ok(self) -> bool:
        """Whether diam(G) <= len(p), the Theorem-2 depth precondition."""
        return self.diameter is not None and self.diameter <= self.k

    @property
    def weights_ok(self) -> bool:
        """Whether 1 <= p_min and p_max <= 2*p_min (metricity condition)."""
        return self.pmin >= 1 and self.pmax <= 2 * self.pmin

    @property
    def applicable(self) -> bool:
        """All preconditions together: connected, diameter and weights."""
        return self.connected and self.diameter_ok and self.weights_ok

    def reason(self) -> str:
        """Human-readable explanation of the first failing precondition."""
        if not self.connected:
            return "graph is disconnected"
        if not self.diameter_ok:
            return f"diam(G) = {self.diameter} exceeds k = {self.k}"
        if not self.weights_ok:
            return (
                f"p_max = {self.pmax} > 2 * p_min = {2 * self.pmin}"
                if self.pmin >= 1
                else f"p_min = {self.pmin} must be >= 1"
            )
        return "applicable"


def analyze(
    graph: Graph, spec: LpSpec, analysis: GraphAnalysis | None = None
) -> ApplicabilityReport:
    """Compute the report; pass ``analysis`` to reuse an existing oracle.

    A forwarded analysis must belong to ``graph``'s current version
    (:func:`~repro.graphs.analysis.ensure_current` raises otherwise).
    Disconnected graphs short-circuit on the single-BFS connectivity check;
    the APSP only runs (through the oracle, hence at most once per graph
    version) when the diameter is actually needed.
    """
    a = ensure_current(graph, analysis)
    connected = a.is_connected
    diam = a.diameter if connected else None
    return ApplicabilityReport(
        connected=connected,
        diameter=diam,
        k=spec.k,
        pmin=spec.pmin,
        pmax=spec.pmax,
        analysis=a,
    )


def is_applicable(graph: Graph, spec: LpSpec) -> bool:
    """True iff Theorem 2's preconditions hold for ``(G, p)``."""
    return analyze(graph, spec).applicable


def check_applicable(
    graph: Graph, spec: LpSpec, analysis: GraphAnalysis | None = None
) -> ApplicabilityReport:
    """Return the report, raising :class:`ReductionNotApplicableError` if bad."""
    report = analyze(graph, spec, analysis=analysis)
    if not report.applicable:
        raise ReductionNotApplicableError(
            f"Theorem 2 reduction not applicable: {report.reason()}"
        )
    return report
