"""Command-line front end: ``repro-label`` / ``python -m repro``.

Subcommands
-----------
``solve``      solve L(p)-labeling for a graph file (edge-list or DIMACS)
``batch``      solve many graphs through the caching batch service; with
               ``--stream --workers K`` the stdin stream is served by the
               concurrent front end and NDJSON records are emitted as
               each request completes
``stats``      structural summary of a graph off one shared GraphAnalysis
``reduce``     print the reduced metric path-TSP weight matrix
``experiment`` run experiments from the E1–E11 reproduction suite
``generate``   emit a workload graph as an edge list (for piping)
``engines``    list available TSP engines
``dynamic``    run a named edge-churn stream through the incremental
               delta engine; verify against the reference APSP and report
               the speedup over recompute-per-mutation
``perf``       perf trajectory: ``run`` emits BENCH_<k>.json, ``compare``
               gates it against benchmarks/baseline.json, ``baseline``
               promotes a trajectory to the committed baseline
``metrics``    run a small built-in workload and print the observability
               registry (Prometheus text or JSON), or render a saved
               ``--metrics-dump`` file

``solve``, ``batch`` and ``dynamic`` accept ``--trace FILE``: the run is
wrapped in a root span and every span recorded in-process (including
spans shipped back across the process-offload boundary) is written to
``FILE`` as NDJSON on exit.

Expected failures (missing files, unknown legs, invalid trajectories)
surface as one-line ``error: ...`` messages with exit code 2, not
tracebacks.

:func:`render_reference` renders this whole argparse tree as Markdown;
``docs/cli.md`` is its committed output (regenerate with ``make docs``,
drift fails ``tests/test_docs.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError, error_code
from repro.graphs import io as gio
from repro.graphs.analysis import get_analysis
from repro.harness.experiments import ALL_EXPERIMENTS, main as run_experiments
from repro.harness.workloads import WORKLOADS, make_workload
from repro.labeling.spec import LpSpec
from repro.reduction.solver import solve_labeling
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.service.api import LabelingService, solve_record
from repro.service.protocol import SolveRequest
from repro.tsp.portfolio import ENGINES


def _parse_spec(text: str) -> LpSpec:
    """Parse ``2,1`` or ``(2,1)`` or ``2 1`` into an LpSpec."""
    cleaned = text.strip().strip("()").replace(",", " ")
    return LpSpec(tuple(int(t) for t in cleaned.split()))


def _load_graph(path: str):
    """Load a graph from a path, '-' (stdin), or a DIMACS .col file."""
    if path == "-":
        return gio.read_edge_list(sys.stdin)
    if path.endswith(".col") or path.endswith(".dimacs"):
        return gio.read_dimacs(path)
    return gio.read_edge_list(path)


def _cmd_solve(args: argparse.Namespace) -> int:
    """``solve``: one labeling solve, human-readable or ``--json``."""
    from repro.obs import span

    graph = _load_graph(args.graph)
    spec = _parse_spec(args.p)
    with span("solve", n=graph.n, m=graph.m, engine=args.engine):
        result = solve_labeling(graph, spec, engine=args.engine)
    if args.json:
        record = solve_record(
            result, graph=graph, spec=spec, include_labels=args.labels
        )
        print(json.dumps(record))
        return 0
    print(f"graph: n={graph.n} m={graph.m}")
    print(f"spec: {spec}   engine: {result.engine}   exact: {result.exact}")
    print(f"span: {result.span}")
    if args.labels:
        for v, lab in enumerate(result.labeling.labels):
            print(f"  {v}: {lab}")
    return 0


def _batch_inputs(source: str) -> list[tuple[str, "object"]]:
    """Collect ``(tag, graph)`` pairs from a directory or the stdin stream."""
    if source == "-":
        return [
            (f"stdin[{i}]", g)
            for i, g in enumerate(gio.read_edge_list_stream(sys.stdin))
        ]
    root = Path(source)
    if not root.is_dir():
        raise SystemExit(f"batch source must be a directory or '-', got {source!r}")
    pairs = []
    for path in sorted(root.iterdir()):
        if path.is_file():
            pairs.append((path.name, _load_graph(str(path))))
    return pairs


def _cmd_batch_stream(args: argparse.Namespace) -> int:
    """Serve a stdin edge-list stream through the concurrent front end.

    NDJSON serving mode: requests are submitted as they are read (the
    bounded queue applies backpressure to the read loop) and one JSON
    record is emitted per request *in completion order* — a slow cold
    solve never holds up the cache hits behind it.
    """
    import queue as queue_mod

    from repro.service.api import LabelingService
    from repro.service.server import ConcurrentLabelingService

    if args.source != "-":
        raise ReproError(
            "--stream serves the stdin edge-list stream; use `batch - --stream`"
        )
    spec = _parse_spec(args.p)
    service = LabelingService(cache_path=args.cache)
    server = ConcurrentLabelingService(
        service=service,
        workers=args.workers or 4,
        queue_size=args.queue_size,
        offload=args.offload,
    )
    done: "queue_mod.Queue" = queue_mod.Queue()
    submitted = printed = 0
    exit_code = 0

    def _print_ready(block: bool) -> None:
        """Emit records for completed futures (optionally blocking for them)."""
        nonlocal printed, exit_code
        while printed < submitted:
            try:
                tag, graph, fut = done.get(block=block)
            except queue_mod.Empty:
                return
            try:
                record = solve_record(
                    fut.result(), graph=graph, spec=spec,
                    include_labels=args.labels, tag=tag,
                )
            except Exception as exc:  # per-request failure: report, keep serving
                record = {"tag": tag, "error": str(exc)}
                exit_code = 1
            print(json.dumps(record), flush=True)
            printed += 1

    try:
        for i, g in enumerate(gio.read_edge_list_stream(sys.stdin)):
            tag = f"stdin[{i}]"
            fut = server.submit(
                SolveRequest(graph=g, spec=spec, engine=args.engine, tag=tag)
            )
            fut.add_done_callback(
                lambda f, tag=tag, graph=g: done.put((tag, graph, f))
            )
            submitted += 1
            _print_ready(block=False)
        _print_ready(block=True)
    finally:
        server.shutdown(wait=True)
    if args.cache:
        service.save_cache()
    summary = {
        "server": server.stats.to_json(),
        "cache": service.stats().to_json(),
    }
    if hasattr(service.cache, "contention_rate"):
        summary["shard_lock_wait"] = round(service.cache.contention_rate, 4)
    print(json.dumps(summary), file=sys.stderr)
    return exit_code


def _cmd_batch(args: argparse.Namespace) -> int:
    """``batch``: solve many graphs via the caching service (JSON lines)."""
    code = _cmd_batch_stream(args) if args.stream else _cmd_batch_dir(args)
    if args.metrics_dump:
        from repro.obs import REGISTRY

        path = REGISTRY.save(args.metrics_dump)
        print(f"metrics dump: {path}", file=sys.stderr)
    return code


def _cmd_batch_dir(args: argparse.Namespace) -> int:
    """The directory-source batch path (one blocking ``submit_many``)."""
    spec = _parse_spec(args.p)
    inputs = _batch_inputs(args.source)
    if not inputs:
        print("no graphs found", file=sys.stderr)
        return 2
    service = LabelingService(cache_path=args.cache, workers=args.workers)
    requests = [
        SolveRequest(graph=g, spec=spec, engine=args.engine, tag=tag)
        for tag, g in inputs
    ]
    results, report = service.submit_many(requests)
    for (tag, graph), result in zip(inputs, results):
        record = solve_record(
            result, graph=graph, spec=spec, include_labels=args.labels, tag=tag
        )
        print(json.dumps(record))
    if args.cache:
        service.save_cache()
    summary = {"report": report.to_json(), "cache": service.stats().to_json()}
    print(json.dumps(summary), file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: structural graph summary off one shared analysis."""
    graph = _load_graph(args.graph)
    a = get_analysis(graph)
    connected = a.is_connected
    record = {
        "n": a.n,
        "m": a.m,
        "components": a.component_count,
        "max_degree": a.max_degree,
        "degree_histogram": a.degree_histogram().tolist(),
        "diameter": a.diameter if connected else None,
        "radius": a.radius if connected else None,
    }
    if args.json:
        print(json.dumps(record))
        return 0
    print(f"n: {record['n']}")
    print(f"m: {record['m']}")
    print(f"components: {record['components']}")
    if connected:
        print(f"diameter: {record['diameter']}")
        print(f"radius: {record['radius']}")
    else:
        print("diameter: n/a (disconnected)")
        print("radius: n/a (disconnected)")
    print(f"max degree: {record['max_degree']}")
    print("degree histogram (degree: count):")
    for degree, count in enumerate(record["degree_histogram"]):
        if count:
            print(f"  {degree}: {count}")
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    """``reduce``: print the reduced Path-TSP weight matrix."""
    graph = _load_graph(args.graph)
    spec = _parse_spec(args.p)
    red = reduce_to_path_tsp(graph, spec)
    w = red.instance.weights.astype(int)
    for row in w:
        print(" ".join(str(int(x)) for x in row))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """``experiment``: run named E-suite experiments (default: all)."""
    names = args.ids or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {list(ALL_EXPERIMENTS)}")
        return 2
    results = run_experiments(names)
    return 0 if all(r.passed for r in results) else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: emit a named workload graph as an edge list."""
    wl = make_workload(args.family, args.n, args.seed)
    gio.write_edge_list(wl.graph, sys.stdout)
    return 0


def _cmd_engines(_args: argparse.Namespace) -> int:
    """``engines``: list the available TSP engine names."""
    for name in ENGINES:
        print(name)
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    """``dynamic``: run a churn leg through the delta engine and report."""
    import dataclasses
    import time

    import numpy as np

    from repro.dynamic import full_apsp_refresh_count
    from repro.graphs.traversal import all_pairs_distances_reference
    from repro.harness.workloads import (
        DYNAMIC,
        churn_maintain,
        churn_recompute,
        churn_stream,
    )

    try:
        leg = DYNAMIC[args.leg]
    except KeyError:
        raise ReproError(
            f"unknown dynamic leg {args.leg!r}; known: {', '.join(DYNAMIC)}"
        ) from None
    if args.steps is not None:
        leg = dataclasses.replace(leg, steps=args.steps)
    base, ops = churn_stream(leg)

    from repro.obs import span

    fallbacks_before = full_apsp_refresh_count()
    t0 = time.perf_counter()
    with span("dynamic.maintain", leg=leg.name, steps=len(ops)):
        churn_maintain(base, ops)
    incremental = time.perf_counter() - t0
    fallbacks = full_apsp_refresh_count() - fallbacks_before

    t0 = time.perf_counter()
    with span("dynamic.recompute", leg=leg.name, steps=len(ops)):
        churn_recompute(base, ops)
    recompute = time.perf_counter() - t0

    verified = True
    if args.verify:
        # separate un-timed pass: per-delta comparison against the
        # reference APSP must not pollute the reported walls
        mismatches = []
        churn_maintain(
            base, ops,
            each=lambda g, dist: mismatches.append(g.version)
            if not np.array_equal(dist, all_pairs_distances_reference(g))
            else None,
        )
        verified = not mismatches

    record = {
        "leg": leg.name,
        "n": base.n,
        "m": base.m,
        "steps": len(ops),
        "incremental_seconds": round(incremental, 6),
        "recompute_seconds": round(recompute, 6),
        "speedup": round(recompute / incremental, 2) if incremental > 0 else 0.0,
        "full_apsp_refreshes": fallbacks,
        "verified": verified if args.verify else None,
    }
    if args.json:
        print(json.dumps(record))
    else:
        print(f"leg: {record['leg']}  (n={record['n']}, m={record['m']}, "
              f"{record['steps']} mutations)")
        print(f"incremental maintenance: {incremental * 1e3:.1f} ms "
              f"({fallbacks} full-APSP fallbacks)")
        print(f"recompute-per-mutation:  {recompute * 1e3:.1f} ms")
        print(f"speedup: {record['speedup']}x")
        if args.verify:
            print(f"verified against reference APSP after every delta: "
                  f"{verified}")
    if args.verify and not verified:
        return 1  # pragma: no cover - would be an engine bug
    return 0


def _cmd_perf_run(args: argparse.Namespace) -> int:
    """``perf run``: run the scenario suite and write BENCH_<k>.json."""
    from repro.perf import run_perf_suite, write_trajectory

    trajectory = run_perf_suite(
        quick=args.quick, repeats=args.repeats, legs=args.leg or None
    )
    path = write_trajectory(trajectory, path=args.out, directory=args.dir)
    if args.json:
        print(json.dumps(trajectory.to_json()))
    else:
        for rec in trajectory.records:
            print(
                f"{rec.experiment}: median {rec.median_seconds * 1e3:.1f} ms "
                f"over {len(rec.wall_seconds)} repeats  {rec.metrics}"
            )
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _resolve_bench(args: argparse.Namespace):
    """``--bench`` if given, else the latest BENCH_*.json under ``--dir``."""
    from repro.perf import latest_bench_path

    bench = args.bench or latest_bench_path(args.dir)
    if bench is None:
        print(f"no BENCH_*.json found under {args.dir!r}; run `perf run` first",
              file=sys.stderr)
    return bench


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    """``perf compare``: gate a trajectory against the committed baseline."""
    from repro.perf import compare, load_baseline, load_trajectory

    bench = _resolve_bench(args)
    if bench is None:
        return 2
    current = load_trajectory(bench)
    baseline, tolerances = load_baseline(args.baseline)
    report = compare(current, baseline, tolerances=tolerances)
    if args.json:
        print(json.dumps({"bench": str(bench), **report.to_json()}))
    else:
        print(f"comparing {bench} against {args.baseline}")
        print(report.render())
    return 0 if report.passed else 1


def _cmd_perf_baseline(args: argparse.Namespace) -> int:
    """``perf baseline``: promote a trajectory to the committed baseline."""
    from repro.perf import load_trajectory, write_baseline

    bench = _resolve_bench(args)
    if bench is None:
        return 2
    path = write_baseline(load_trajectory(bench), args.out)
    print(f"promoted {bench} -> {path}")
    return 0


def _metrics_workload() -> None:
    """Drive traffic through every instrumented layer of the stack.

    The quick workload behind a bare ``repro-label metrics``: the SERVICE
    ``mixed-small`` stream through a 2-worker concurrent server (server
    counters, queue gauges, latency histograms, sharded-cache counters,
    shard contention), a duplicate solve pair through a single-lock-cache
    service (the ``tier="single"`` counters), and one dynamic churn pass
    (APSP and full-refresh counters).  Everything runs inline — no
    process offload — so the whole thing finishes in well under a second.
    """
    from concurrent.futures import wait

    from repro.graphs import generators as gen
    from repro.harness.workloads import (
        DYNAMIC,
        SERVICE,
        churn_maintain,
        churn_stream,
        service_stream,
    )
    from repro.labeling.spec import L21
    from repro.service.server import ConcurrentLabelingService

    server = ConcurrentLabelingService(workers=2, offload=False)
    try:
        futures = [
            server.submit(r) for r in service_stream(SERVICE["mixed-small"])
        ]
        wait(futures)
    finally:
        server.shutdown(wait=True)

    single = LabelingService(cache_shards=1)
    g = gen.random_graph_with_diameter_at_most(16, 2, seed=3)
    single.submit(SolveRequest(g, L21, engine="lk"))       # miss + put
    single.submit(SolveRequest(g.copy(), L21, engine="lk"))  # hit

    base, ops = churn_stream(DYNAMIC["churn-diam2-small"])
    churn_maintain(base, ops)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``metrics``: print a metrics exposition (Prometheus text or JSON).

    By default runs :func:`_metrics_workload` first, so a bare invocation
    prints a fully populated exposition — the shape a scrape of a live
    process would return.  ``--from FILE`` renders a registry dump written
    by ``batch --metrics-dump`` instead (no workload); ``--no-workload``
    renders the process registry as-is (catalogued families at zero).
    """
    from repro.obs import REGISTRY
    from repro.obs.metrics import MetricsRegistry

    if args.source is not None:
        registry = MetricsRegistry.load(args.source)
    else:
        registry = REGISTRY
        if not args.no_workload:
            _metrics_workload()
    if args.format == "json":
        print(json.dumps(registry.to_json()))
    else:
        sys.stdout.write(registry.render_prom())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the asyncio HTTP front end until SIGINT/SIGTERM.

    Binds the listener, prints the resolved URL on stderr, and parks until
    a termination signal arrives; then drains gracefully — in-flight
    requests finish, late submissions get 503 — before exiting 0.
    """
    import asyncio
    import signal

    from repro.net.server import NetworkServer

    async def _run() -> None:
        server = NetworkServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_size=args.queue_size,
            offload=args.offload,
        )
        await server.start()
        print(f"serving on {server.url}", file=sys.stderr, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-unix event loops
                pass
        await stop.wait()
        print("draining...", file=sys.stderr, flush=True)
        await server.shutdown(drain=True)

    asyncio.run(_run())
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    """``load``: open-loop ramp against a server; prints the saturation curve.

    With ``--url`` the ramp targets a running server; without it the
    command self-serves — it starts a private in-process server, loads it
    over real sockets, and tears it down — which is what the CI
    ``load-smoke`` and ``overload-smoke`` jobs run.  Every 200 response is
    verified feasible against the payload it answered.
    ``--fail-on-errors`` exits 1 when any request failed or returned an
    infeasible labeling; intentional drops (429 queue-full, 504 deadline
    expired) never trip it.  ``--expect-approx`` exits 1 unless the
    degraded tier answered at least once.  ``--dump-metrics FILE``
    scrapes the target's ``/metrics`` after the ramp (the smoke jobs
    feed that file to ``tools/metrics_lint.py --check-exposition``).
    """
    from repro.harness.loadgen import default_payload_instances, run_load

    rates = [float(r) for r in args.rate] if args.rate else [10.0, 25.0, 50.0]
    payloads = default_payload_instances(
        count=args.payload_count,
        seed=args.seed,
        tier=args.tier,
        deadline_ms=args.deadline_ms,
    )
    background = None
    owned_service = None
    if args.url is None:
        from repro.net.server import BackgroundServer

        kwargs = {}
        if args.cache_capacity is not None:
            # NetworkServer only plumbs workers/queue_size/offload, so a
            # custom cache capacity means building the service ourselves
            # (and owning its shutdown below).
            from repro.service.server import ConcurrentLabelingService

            owned_service = ConcurrentLabelingService(
                workers=args.workers,
                offload=args.offload,
                cache_capacity=args.cache_capacity,
                **({} if args.queue_size is None
                   else {"queue_size": args.queue_size}),
            )
            kwargs["service"] = owned_service
        else:
            kwargs["workers"] = args.workers
            kwargs["offload"] = args.offload
            if args.queue_size is not None:
                kwargs["queue_size"] = args.queue_size
        background = BackgroundServer(**kwargs)
        url = background.url
        print(f"self-serving on {url}", file=sys.stderr, flush=True)
    else:
        url = args.url
    try:
        report = run_load(
            url, rates, duration=args.duration, seed=args.seed,
            payloads=payloads,
        )
        if args.dump_metrics:
            from urllib.request import urlopen

            with urlopen(f"{url}/metrics") as response:
                Path(args.dump_metrics).write_bytes(response.read())
    finally:
        if background is not None:
            background.shutdown(drain=True)
        if owned_service is not None:
            owned_service.shutdown(wait=True)
    if args.json:
        print(json.dumps(report.to_json()))
    else:
        print(f"{'rps':>8} {'sent':>6} {'err':>5} {'drop':>5} {'apx':>5} "
              f"{'p50ms':>9} {'p95ms':>9} {'p99ms':>9} {'achieved':>9}")
        for step in report.steps:
            print(
                f"{step.offered_rps:8.1f} {step.sent:6d} "
                f"{step.errors + step.infeasible:5d} {step.dropped:5d} "
                f"{step.approx:5d} "
                f"{step.p50_ms:9.2f} {step.p95_ms:9.2f} {step.p99_ms:9.2f} "
                f"{step.achieved_rps:9.1f}"
            )
    failed = report.total_errors + report.total_infeasible
    if args.fail_on_errors and failed:
        print(
            f"error: [overloaded] {failed} of "
            f"{report.total_sent} requests failed "
            f"({report.total_infeasible} infeasible)",
            file=sys.stderr,
        )
        return 1
    if args.expect_approx and not report.total_approx:
        print(
            "error: [no-degradation] expected at least one approx-tier "
            "response, got none",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the repro-label CLI."""
    ap = argparse.ArgumentParser(
        prog="repro-label",
        description="L(p)-labeling of small-diameter graphs via Metric Path TSP",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="solve L(p)-labeling for a graph file")
    s.add_argument("graph", help="edge-list file, .col/.dimacs file, or - for stdin")
    s.add_argument("-p", default="2,1", help="constraint vector, e.g. '2,1' (default)")
    s.add_argument("--engine", default="auto", choices=["auto", *ENGINES])
    s.add_argument("--labels", action="store_true", help="print per-vertex labels")
    s.add_argument("--json", action="store_true", help="emit one JSON record")
    s.add_argument("--trace", default=None, metavar="FILE",
                   help="write recorded trace spans to FILE as NDJSON")
    s.set_defaults(fn=_cmd_solve)

    b = sub.add_parser(
        "batch",
        help="solve many graphs via the caching service; JSON-lines output",
    )
    b.add_argument(
        "source",
        help="directory of graph files, or - for a stdin edge-list stream",
    )
    b.add_argument("-p", default="2,1", help="constraint vector, e.g. '2,1'")
    b.add_argument("--engine", default="auto", choices=["auto", *ENGINES])
    b.add_argument("--workers", type=int, default=None, help="pool width")
    b.add_argument(
        "--cache", default=None, metavar="FILE",
        help="JSON cache file to warm-start from and persist to",
    )
    b.add_argument("--labels", action="store_true", help="include labels in records")
    b.add_argument(
        "--stream", action="store_true",
        help="serve the stdin stream concurrently; emit records as they "
             "complete (source must be -)",
    )
    b.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="submission-queue high-water mark for --stream (default 64)",
    )
    offload = b.add_mutually_exclusive_group()
    offload.add_argument(
        "--offload", dest="offload", action="store_true", default=None,
        help="force cold --stream solves onto the shared-memory worker "
             "pool (default: auto — offload when >1 worker and >1 "
             "effective CPU)",
    )
    offload.add_argument(
        "--no-offload", dest="offload", action="store_false",
        help="force cold --stream solves inline on the worker threads",
    )
    b.add_argument(
        "--metrics-dump", default=None, metavar="FILE",
        help="write the metrics registry as JSON after the batch "
             "(render later with `metrics --from FILE`)",
    )
    b.add_argument("--trace", default=None, metavar="FILE",
                   help="write recorded trace spans to FILE as NDJSON")
    b.set_defaults(fn=_cmd_batch)

    st = sub.add_parser(
        "stats",
        help="structural graph summary (n, m, diameter, radius, degrees, components)",
    )
    st.add_argument("graph", help="edge-list file, .col/.dimacs file, or - for stdin")
    st.add_argument("--json", action="store_true", help="emit one JSON record")
    st.set_defaults(fn=_cmd_stats)

    r = sub.add_parser("reduce", help="print the reduced TSP weight matrix")
    r.add_argument("graph")
    r.add_argument("-p", default="2,1")
    r.set_defaults(fn=_cmd_reduce)

    e = sub.add_parser("experiment", help="run reproduction experiments")
    e.add_argument("ids", nargs="*", help="e.g. E1 E5 (default: all)")
    e.set_defaults(fn=_cmd_experiment)

    g = sub.add_parser("generate", help="emit a workload graph as an edge list")
    g.add_argument("family", choices=list(WORKLOADS))
    g.add_argument("n", type=int)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=_cmd_generate)

    le = sub.add_parser("engines", help="list available TSP engines")
    le.set_defaults(fn=_cmd_engines)

    dy = sub.add_parser(
        "dynamic",
        help="run an edge-churn stream through the incremental delta engine",
    )
    dy.add_argument(
        "--leg", default="churn-diam2-small", metavar="LEG",
        help="named DYNAMIC leg (default: churn-diam2-small)",
    )
    dy.add_argument("--steps", type=int, default=None,
                    help="override the leg's stream length")
    dy.add_argument(
        "--verify", action="store_true",
        help="assert the repaired matrix against the reference APSP "
             "after every delta",
    )
    dy.add_argument("--json", action="store_true", help="emit one JSON record")
    dy.add_argument("--trace", default=None, metavar="FILE",
                    help="write recorded trace spans to FILE as NDJSON")
    dy.set_defaults(fn=_cmd_dynamic)

    me = sub.add_parser(
        "metrics",
        help="run a quick workload and print the metrics exposition",
    )
    me.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="Prometheus 0.0.4 text (default) or the lossless JSON dump",
    )
    me.add_argument(
        "--from", dest="source", default=None, metavar="FILE",
        help="render a registry dump written by `batch --metrics-dump` "
             "instead of running the built-in workload",
    )
    me.add_argument(
        "--no-workload", action="store_true",
        help="skip the built-in workload; render the live registry as-is "
             "(every catalogued family, zero-valued)",
    )
    me.set_defaults(fn=_cmd_metrics)

    sv = sub.add_parser(
        "serve",
        help="run the asyncio HTTP front end (POST /solve, /batch; "
             "GET /stats, /metrics, /healthz)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument("--port", type=int, default=8425,
                    help="bind port (0 = ephemeral)")
    sv.add_argument("--workers", type=int, default=4,
                    help="labeling-service worker threads")
    sv.add_argument("--queue-size", type=int, default=None,
                    help="submission-queue high-water mark (backpressure)")
    sv.add_argument(
        "--offload", default=None, action="store_true",
        help="force solve offload to the shared-memory worker pool "
             "(default: auto-detect from effective CPU count)",
    )
    sv.add_argument(
        "--no-offload", dest="offload", action="store_false",
        help="force inline solves on the worker threads",
    )
    sv.set_defaults(fn=_cmd_serve)

    lo = sub.add_parser(
        "load",
        help="open-loop load ramp against a server; prints the "
             "saturation curve (p50/p95/p99, error rate, achieved rps)",
    )
    lo.add_argument(
        "--url", default=None,
        help="target base URL (e.g. http://127.0.0.1:8425); omitted = "
             "self-serve an in-process server and load it",
    )
    lo.add_argument(
        "--rate", action="append", default=None, metavar="RPS",
        help="offered requests/second; repeat for a ramp "
             "(default: 10 25 50)",
    )
    lo.add_argument("--duration", type=float, default=2.0,
                    help="seconds to hold each rate step")
    lo.add_argument("--seed", type=int, default=0,
                    help="arrival-process and payload-pool seed")
    lo.add_argument("--workers", type=int, default=2,
                    help="self-serve mode: server worker threads")
    lo.add_argument(
        "--no-offload", dest="offload", action="store_false", default=None,
        help="self-serve mode: force inline solves",
    )
    lo.add_argument("--queue-size", type=int, default=None,
                    help="self-serve mode: submission-queue high-water mark")
    lo.add_argument(
        "--cache-capacity", type=int, default=None,
        help="self-serve mode: result-cache capacity (small values keep "
             "the traffic cold, the overload-smoke regime)",
    )
    lo.add_argument(
        "--tier", choices=["exact", "approx", "auto"], default="auto",
        help="QoS tier requested on every payload (default: auto — the "
             "server's router decides per request)",
    )
    lo.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help="latency budget stamped on every payload; the server drops "
             "(504) work whose budget expired before solving",
    )
    lo.add_argument(
        "--payload-count", type=int, default=4, metavar="N",
        help="distinct instances in the payload pool (default: 4)",
    )
    lo.add_argument("--json", action="store_true",
                    help="emit the full report as one JSON document")
    lo.add_argument(
        "--fail-on-errors", action="store_true",
        help="exit 1 on any failed or infeasible request (the CI smoke "
             "contract); intentional drops (429/504) never fail it",
    )
    lo.add_argument(
        "--expect-approx", action="store_true",
        help="exit 1 unless at least one response came from the approx "
             "tier (the overload-smoke degradation check)",
    )
    lo.add_argument(
        "--dump-metrics", default=None, metavar="FILE",
        help="after the ramp, scrape the target's /metrics into FILE",
    )
    lo.set_defaults(fn=_cmd_load)

    pf = sub.add_parser(
        "perf",
        help="perf trajectory: record BENCH_*.json and gate against the baseline",
    )
    pfsub = pf.add_subparsers(dest="perf_command", required=True)

    pr = pfsub.add_parser("run", help="run the perf suite; write BENCH_<k>.json")
    pr.add_argument("--quick", action="store_true",
                    help="small sizes, one matrix leg (the CI perf-gate shape)")
    pr.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per scenario (default: 3 quick / 5 full)")
    pr.add_argument("--leg", action="append", metavar="LEG",
                    help="matrix leg(s) to sweep (repeatable; default per mode)")
    pr.add_argument("--dir", default=".", help="directory for BENCH_<k>.json")
    pr.add_argument("--out", default=None, metavar="FILE",
                    help="explicit output path (overrides --dir numbering)")
    pr.add_argument("--json", action="store_true",
                    help="print the full trajectory JSON to stdout")
    pr.set_defaults(fn=_cmd_perf_run)

    pc = pfsub.add_parser(
        "compare", help="compare a trajectory against the committed baseline"
    )
    pc.add_argument("--bench", default=None, metavar="FILE",
                    help="trajectory to judge (default: latest BENCH_*.json in --dir)")
    pc.add_argument("--dir", default=".", help="where to look for BENCH_*.json")
    pc.add_argument("--baseline", default="benchmarks/baseline.json",
                    help="baseline file (default: benchmarks/baseline.json)")
    pc.add_argument("--json", action="store_true", help="emit the verdicts as JSON")
    pc.set_defaults(fn=_cmd_perf_compare)

    pb = pfsub.add_parser(
        "baseline", help="promote a trajectory to the committed baseline"
    )
    pb.add_argument("--bench", default=None, metavar="FILE",
                    help="trajectory to promote (default: latest BENCH_*.json in --dir)")
    pb.add_argument("--dir", default=".", help="where to look for BENCH_*.json")
    pb.add_argument("--out", default="benchmarks/baseline.json",
                    help="baseline file to write (default: benchmarks/baseline.json)")
    pb.set_defaults(fn=_cmd_perf_baseline)
    return ap


def render_reference(parser: argparse.ArgumentParser | None = None) -> str:
    """Render the CLI reference as Markdown from the live argparse tree.

    ``docs/cli.md`` is this function's committed output (``make docs``
    regenerates it); ``tests/test_docs.py`` re-renders and fails on drift,
    so the written reference can never fall behind the actual parser.
    Help text is formatted at a pinned width (via ``COLUMNS``) so the
    output does not depend on the generating terminal.
    """
    import os

    saved = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        parser = parser or build_parser()
        lines = [
            f"# `{parser.prog}` CLI reference",
            "",
            "<!-- Generated by `make docs` (repro.cli.render_reference). "
            "Do not edit by hand. -->",
            "",
            str(parser.description),
            "",
            "Also invocable as `python -m repro`.  Expected operational "
            "failures (missing files, unknown legs, invalid trajectories) "
            "exit with code 2 and a one-line `error: ...` message on "
            "stderr.",
            "",
        ]

        def walk(p: argparse.ArgumentParser, parts: list[str]) -> None:
            """Recurse over subparsers, appending one section per subcommand."""
            for action in p._actions:
                if not isinstance(action, argparse._SubParsersAction):
                    continue
                for name, sub in action.choices.items():
                    lines.extend(
                        (
                            f"## `{' '.join(parts + [name])}`",
                            "",
                            "```text",
                            sub.format_help().rstrip(),
                            "```",
                            "",
                        )
                    )
                    walk(sub, parts + [name])

        walk(parser, [parser.prog])
        return "\n".join(lines).rstrip() + "\n"
    finally:
        if saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Expected operational failures (:class:`ReproError`: missing trajectory
    or baseline files, unknown legs, schema violations) are reported as a
    one-line message on stderr with exit code 2 — a `perf compare` pointed
    at a directory with no ``BENCH_*.json`` must fail clearly, not with a
    traceback.
    """
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    try:
        if trace_path is None:
            return args.fn(args)
        # --trace: run under a root span, then drain everything recorded
        # (including offload spans shipped back by the worker pool) to the
        # requested NDJSON file.
        from repro.obs import TRACER, span

        with span(f"cli.{args.command}"):
            code = args.fn(args)
        path = TRACER.dump_ndjson(trace_path)
        print(f"trace: {path}", file=sys.stderr)
        return code
    except ReproError as exc:
        # same vocabulary as the server's JSON error payloads: the stable
        # machine-readable code from the errors.ERROR_TABLE contract
        print(f"error: [{error_code(exc)}] {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
