"""Small process-pool utilities (per the hpc-parallel guides).

The solvers here are pure CPU-bound Python/NumPy, so thread pools gain
nothing under the GIL; ``ProcessPoolExecutor`` with picklable top-level
functions is the right tool.  Everything submitted through this module must
therefore be a module-level callable plus plain-data arguments.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def effective_cpu_count() -> int:
    """CPUs this process may actually run on, at least 1.

    ``os.sched_getaffinity(0)`` respects cgroup/container CPU masks and
    ``taskset`` pinning, which bare ``os.cpu_count()`` ignores — under a
    pinned CI leg or a containerized runner the two can disagree by an
    order of magnitude, and every scaling decision (offload auto-detect,
    multi-core bench floors, perf provenance) must use the effective
    number.  Falls back to ``os.cpu_count()`` where affinity is
    unsupported (macOS, Windows).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def default_workers() -> int:
    """Effective CPU count with a small safety margin, at least 1."""
    return max(1, effective_cpu_count() - 1)


def runs_serially(workers: int | None, item_count: int) -> bool:
    """True when :func:`parallel_map` would bypass the pool for this call.

    Exposed so callers with a cheaper serial code path (e.g. the batch
    solver's oracle-seeded inline solve) can apply the exact same policy.
    """
    return (workers or default_workers()) <= 1 or item_count <= 1


def chunked(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive chunks of ``size`` items (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for i in range(0, len(items), size):
        yield items[i : i + size]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving parallel map over processes.

    ``fn`` must be picklable (module-level).  Falls back to a plain loop when
    only one worker is requested or there is at most one item (avoids pool
    start-up latency in the degenerate cases).
    """
    items = list(items)
    if runs_serially(workers, len(items)):
        return [fn(x) for x in items]
    with ProcessPoolExecutor(max_workers=workers or default_workers()) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
