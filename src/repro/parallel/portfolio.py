"""Process-parallel engine portfolio for the labeling solver.

Runs several TSP engines on the *same* reduced instance in separate
processes and keeps the best labeling — the classic algorithm-portfolio
pattern for heuristics with complementary strengths.  The graph is shipped
as an edge list (cheap, picklable); each worker re-runs the reduction
locally, which is ``O(nm)`` and negligible next to the search.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec
from repro.parallel.pool import parallel_map
from repro.reduction.solver import SolveResult, solve_labeling


def _solve_one(args: tuple[int, list[tuple[int, int]], tuple[int, ...], str]) -> tuple[str, int, tuple[int, ...]]:
    """Worker: rebuild the graph, solve with one engine, return essentials."""
    n, edges, p, engine = args
    graph = Graph(n, edges)
    spec = LpSpec(p)
    result = solve_labeling(graph, spec, engine=engine, verify=True)
    return engine, result.span, result.labeling.labels


def portfolio_solve(
    graph: Graph,
    spec: LpSpec,
    engines: Sequence[str],
    workers: int | None = None,
) -> SolveResult:
    """Best-of-K engines across processes; returns the winner's full result.

    The winning engine is re-run in-process to produce a complete
    :class:`SolveResult` (timings/paths of the winning run).
    """
    edges = list(graph.edges())
    tasks = [(graph.n, edges, spec.p, e) for e in engines]
    outcomes = parallel_map(_solve_one, tasks, workers=workers)
    best_engine = min(outcomes, key=lambda o: o[1])[0]
    return solve_labeling(graph, spec, engine=best_engine, verify=True)


def sequential_portfolio(
    graph: Graph, spec: LpSpec, engines: Sequence[str]
) -> SolveResult:
    """The same best-of-K, one engine after another (baseline for E10)."""
    best: SolveResult | None = None
    for e in engines:
        r = solve_labeling(graph, spec, engine=e, verify=True)
        if best is None or r.span < best.span:
            best = r
    assert best is not None
    return best
