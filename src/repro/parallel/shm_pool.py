"""Persistent shared-memory worker pool for the serving path.

The old offload design (``ProcessPoolExecutor`` per server) pickled every
cold solve's whole instance — graph, CSR adjacency, distance matrix — per
request.  This module replaces it with two cooperating pieces:

- :class:`ShmArena` — a parent-side registry that publishes a canonical
  graph's heavy arrays (distance matrix + CSR adjacency, see
  :func:`repro.graphs.analysis.export_buffers`) **once** into a
  ``multiprocessing.shared_memory`` segment, keyed by canonical cache key.
  Entries are leased (refcounted) while jobs are in flight, LRU-evicted at
  zero refs past capacity, and unlinked deterministically on
  :meth:`~ShmArena.close` — with an atexit sweep as the backstop, so
  segments never outlive the process.
- :class:`ShmWorkerPool` — long-lived worker processes fed over pipes.
  Requests cross the boundary as ``(key, params)`` tuples plus a tiny
  picklable :class:`ShmDescriptor`; workers reconstruct the canonical
  graph as **zero-copy numpy views** into the segment
  (:func:`repro.graphs.analysis.adopt_buffers`) and keep a small LRU of
  adopted graphs, so a shard of the stream amortizes one attachment.  A
  batch-aware router pins repeat keys to their worker (cache warmth) and
  spreads fresh keys to the least-loaded worker.  A worker that dies
  mid-solve fails its in-flight futures with
  :class:`~repro.errors.WorkerCrashedError`, is respawned, and is counted
  in ``repro_pool_worker_restarts_total`` — callers never hang.

Trace spans propagate exactly like the old offload path: the worker runs
each solve under a ``solve.offload`` span parented to the submitted
context and ships its drained span rows back for the parent tracer to
ingest.
"""

from __future__ import annotations

import atexit
import glob
import itertools
import os
import threading
import time
import weakref
from concurrent.futures import Future
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.errors import ReproError, WorkerCrashedError
from repro.obs.metrics import REGISTRY

#: Prefix of every segment this module creates; the tests' zero-leak
#: fixture (and the /dev/shm lifecycle assertions) key off it.
SEGMENT_PREFIX = "repro_shm_"

#: Arena capacity default: refcount-zero entries past this are LRU-unlinked.
DEFAULT_ARENA_CAPACITY = 64

#: Worker-side adopted-graph LRU size.
DEFAULT_GRAPH_CACHE = 32

#: Segment offsets are aligned so every numpy view starts on a cache line.
_ALIGN = 64

_M_SHM_BYTES = REGISTRY.counter("repro_shm_bytes_published_total")
_M_SHM_BYTES.labels()
_M_SEGMENTS_LIVE = REGISTRY.gauge("repro_shm_segments_live")
_M_SEGMENTS_LIVE.labels()
_M_RESTARTS = REGISTRY.counter("repro_pool_worker_restarts_total")
_M_RESTARTS.labels()
_M_DISPATCH = REGISTRY.counter("repro_pool_dispatch_total")
_M_IMBALANCE = REGISTRY.gauge("repro_pool_route_imbalance")
_M_IMBALANCE.labels()


def live_segment_names() -> list[str]:
    """Names of this module's shm segments currently in ``/dev/shm``.

    The zero-leak acceptance criterion made concrete: the test suites'
    session fixtures snapshot this before and after a run, and the
    lifecycle tests assert individual segments appear and vanish.  Sorted
    for deterministic assertion messages; empty on non-Linux hosts.
    """
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux host
        return []
    return sorted(
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    )


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to reconstruct one published graph.

    Picklable and tiny — this is what crosses the process boundary instead
    of the arrays themselves.  ``fields`` rows are
    ``(name, dtype, shape, offset)`` into the named segment.
    """

    key: str
    segment: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    nbytes: int


def _attach_segment(name: str) -> SharedMemory:
    """Open an existing segment without adopting its lifetime.

    CPython's resource tracker registers *attaching* processes too
    (bpo-39959 / gh-82300), so a worker exiting would unlink — or, with a
    fork-shared tracker, de-register — a segment the parent still owns.
    Python 3.13 grew ``track=False`` for exactly this; on older
    interpreters the registration call is suppressed for the duration of
    the attach (the worker is single-threaded here, so the swap is safe).
    """
    try:
        return SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - nothing else here
            original(rname, rtype)

    resource_tracker.register = _skip_shm
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _views(shm: SharedMemory, descriptor: ShmDescriptor) -> dict[str, np.ndarray]:
    """Zero-copy numpy views into ``shm`` per the descriptor's layout."""
    return {
        name: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        for name, dtype, shape, offset in descriptor.fields
    }


# ---------------------------------------------------------------------------
# parent side: the arena
# ---------------------------------------------------------------------------
class _ArenaEntry:
    """One published segment: the handle, its descriptor, and the lease count."""

    __slots__ = ("shm", "descriptor", "refs")

    def __init__(self, shm: SharedMemory, descriptor: ShmDescriptor) -> None:
        self.shm = shm
        self.descriptor = descriptor
        self.refs = 0


class ShmArena:
    """Refcounted registry of shared-memory segments, keyed by canonical key.

    The owner (one per :class:`~repro.service.server.
    ConcurrentLabelingService`) publishes each canonical graph's buffers
    once; jobs lease the entry while in flight.  Eviction only ever takes
    refcount-zero entries (LRU order), ``close()`` unlinks everything, and
    an atexit sweep unlinks whatever a crashed caller left behind —
    ``/dev/shm`` ends every process empty of ``repro_shm_*`` names.
    """

    def __init__(self, capacity: int = DEFAULT_ARENA_CAPACITY) -> None:
        """An empty arena owning at most ``capacity`` idle segments."""
        if capacity < 1:
            raise ReproError(f"arena capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[str, _ArenaEntry] = {}  # insertion order = LRU
        self._lock = threading.Lock()
        self._closed = False
        self._seq = itertools.count()
        _LIVE_ARENAS.add(self)
        # the newest arena owns the liveness gauge (weakly — the gauge
        # never keeps a closed arena alive)
        _M_SEGMENTS_LIVE.set_function(lambda arena: len(arena), owner=self)

    def __len__(self) -> int:
        """Segments currently owned (published and not yet unlinked)."""
        return len(self._entries)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed arena rejects publishes."""
        return self._closed

    # ------------------------------------------------------------------
    def lease(self, key: str) -> ShmDescriptor | None:
        """Bump the refcount and return the descriptor, or ``None`` if absent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries[key] = self._entries.pop(key)  # LRU touch
            entry.refs += 1
            return entry.descriptor

    def publish(
        self, key: str, arrays: dict[str, np.ndarray]
    ) -> ShmDescriptor:
        """Publish ``arrays`` under ``key`` (idempotent) and lease the entry.

        The first publish for a key copies each array into one fresh
        segment (offsets cache-line aligned) and counts the bytes in
        ``repro_shm_bytes_published_total``; subsequent publishes — or a
        racing worker thread's — find the entry and only take a lease.
        Always pair with :meth:`release`.
        """
        with self._lock:
            if self._closed:
                raise ReproError("arena is closed; no new segments")
            entry = self._entries.get(key)
            if entry is not None:
                self._entries[key] = self._entries.pop(key)
                entry.refs += 1
                return entry.descriptor
            fields = []
            offset = 0
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                offset = -(-offset // _ALIGN) * _ALIGN  # round up
                fields.append(
                    (name, arr.dtype.str, tuple(arr.shape), offset)
                )
                offset += arr.nbytes
            segment = f"{SEGMENT_PREFIX}{os.getpid()}_{next(self._seq)}"
            shm = SharedMemory(name=segment, create=True, size=max(offset, 1))
            descriptor = ShmDescriptor(
                key=key,
                segment=segment,
                fields=tuple(fields),
                nbytes=offset,
            )
            for view, (name, arr) in zip(
                _views(shm, descriptor).values(), arrays.items()
            ):
                view[...] = arr
            entry = _ArenaEntry(shm, descriptor)
            entry.refs = 1
            self._entries[key] = entry
            _M_SHM_BYTES.inc(offset)
            evicted = self._evictable()
        for stale in evicted:
            _unlink(stale.shm)
        return entry.descriptor

    def release(self, key: str) -> None:
        """Drop one lease.  Releasing an absent or idle key is a no-op."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.refs > 0:
                entry.refs -= 1

    def _evictable(self) -> list[_ArenaEntry]:
        """Pop LRU refcount-zero entries past capacity (lock held)."""
        evicted = []
        while len(self._entries) > self.capacity:
            idle = next(
                (k for k, e in self._entries.items() if e.refs == 0), None
            )
            if idle is None:
                break  # everything leased: over-capacity beats corruption
            evicted.append(self._entries.pop(idle))
        return evicted

    def descriptor(self, key: str) -> ShmDescriptor | None:
        """The published descriptor for ``key`` without taking a lease."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.descriptor if entry is not None else None

    def close(self) -> None:
        """Unlink every segment.  Idempotent; double-close is a no-op."""
        with self._lock:
            if self._closed and not self._entries:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            _unlink(entry.shm)

    def __enter__(self) -> "ShmArena":
        """Context manager: the arena itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Unlink everything on scope exit."""
        self.close()


def _unlink(shm: SharedMemory) -> None:
    """Close and unlink one owned segment, tolerating repeats."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - parent keeps no live views
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


#: Every arena not yet garbage-collected; the atexit sweep closes them so
#: an abandoned (never-closed) arena still leaves /dev/shm clean.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


@atexit.register
def _sweep_arenas() -> None:
    """Interpreter-exit backstop: unlink every still-open arena's segments."""
    for arena in list(_LIVE_ARENAS):
        arena.close()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _drop_adopted(entry: tuple[SharedMemory, object]) -> None:
    """Release one worker-side cache entry: views first, then the mapping.

    The numpy views hold the segment's exported buffer; the graph's
    memoized analysis is the only reference to them, so detaching it lets
    ``shm.close()`` succeed instead of raising :class:`BufferError`.
    """
    shm, graph = entry
    graph._analysis = None
    del graph
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a solver kept a view alive
        pass


def _adopted_graph(cache: dict, max_cached: int, descriptor: ShmDescriptor):
    """The worker's canonical graph for ``descriptor``, LRU-cached.

    Re-adopts when the key's segment changed (the parent evicted and
    republished); evicts least-recently-used entries past ``max_cached``.
    """
    from repro.graphs.analysis import adopt_buffers

    entry = cache.get(descriptor.key)
    if entry is not None and entry[0].name == descriptor.segment:
        cache[descriptor.key] = cache.pop(descriptor.key)  # LRU touch
        return entry[1]
    if entry is not None:
        _drop_adopted(cache.pop(descriptor.key))
    shm = _attach_segment(descriptor.segment)
    views = _views(shm, descriptor)
    n = views["distances"].shape[0]
    graph = adopt_buffers(
        n, views["indptr"], views["indices"], views["distances"]
    )
    cache[descriptor.key] = (shm, graph)
    while len(cache) > max_cached:
        _drop_adopted(cache.pop(next(iter(cache))))
    return graph


def _solve_adopted(
    cache: dict, max_cached: int, descriptor: ShmDescriptor, job: tuple
) -> tuple:
    """Solve one ``(key, p, engine)`` job on the adopted canonical graph."""
    from repro.labeling.spec import LpSpec
    from repro.reduction.solver import solve_labeling

    graph = _adopted_graph(cache, max_cached, descriptor)
    key, p, engine = job
    t0 = time.perf_counter()
    result = solve_labeling(graph, LpSpec(p), engine=engine)
    seconds = time.perf_counter() - t0
    return (
        key,
        result.labeling.labels,
        result.span,
        result.engine,
        result.exact,
        seconds,
    )


def _probe_adopted(
    cache: dict, max_cached: int, descriptor: ShmDescriptor
) -> dict:
    """Diagnostic job: is the worker's matrix really a view into the segment?

    ``bench_e15_shm_pool.py``'s zero-copy gate asserts on this: the
    adopted distance matrix must not own its data, and its base must be
    the segment's exported ``memoryview`` — i.e. the worker reads the
    parent's bytes, it never rebuilt an ``O(n^2)`` matrix of its own.
    """
    import mmap

    from repro.graphs.analysis import get_analysis

    graph = _adopted_graph(cache, max_cached, descriptor)
    dist = get_analysis(graph).distances
    base = dist
    while isinstance(base, np.ndarray):
        base = base.base
    # numpy unwraps ``shm.buf`` to the segment's underlying mmap
    return {
        "pid": os.getpid(),
        "key": descriptor.key,
        "owns_data": bool(dist.flags["OWNDATA"]),
        "base_is_shm_buffer": isinstance(base, (mmap.mmap, memoryview)),
        "nbytes": int(dist.nbytes),
        "cached_graphs": len(cache),
    }


def _worker_main(conn, max_cached: int) -> None:
    """Worker-process loop: adopt, solve, reply — until the stop sentinel.

    Messages in: ``("job", id, descriptor, (key, p, engine), ctx_row)``,
    ``("probe", id, descriptor)``, or ``None`` (clean shutdown).  Messages
    out: ``("ready", pid)`` once, then ``("result", id, ok, payload,
    spans)`` per job.  Failures are shipped back as exception objects;
    the parent re-raises them into the job's future.
    """
    from repro.obs.trace import TRACER, SpanContext

    TRACER.drain()  # a fork-inherited buffer must not replay parent spans
    cache: dict[str, tuple[SharedMemory, object]] = {}
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                return
            if msg is None:
                return
            kind, job_id = msg[0], msg[1]
            spans: tuple = ()
            try:
                if kind == "probe":
                    payload = _probe_adopted(cache, max_cached, msg[2])
                else:
                    _, _, descriptor, job, ctx_row = msg
                    if ctx_row is None:
                        payload = _solve_adopted(
                            cache, max_cached, descriptor, job
                        )
                    else:
                        with TRACER.activate(SpanContext(**ctx_row)):
                            with TRACER.span(
                                "solve.offload", pid=os.getpid(), key=job[0]
                            ):
                                payload = _solve_adopted(
                                    cache, max_cached, descriptor, job
                                )
                        spans = tuple(s.to_json() for s in TRACER.drain())
                out = ("result", job_id, True, payload, spans)
            except BaseException as exc:
                out = ("result", job_id, False, _portable(exc), ())
            try:
                conn.send(out)
            except (BrokenPipeError, OSError):
                return
    finally:
        for entry in cache.values():
            _drop_adopted(entry)
        cache.clear()
        try:
            conn.close()
        except OSError:
            pass


def _portable(exc: BaseException) -> BaseException:
    """``exc`` if it pickles, else a :class:`ReproError` carrying its repr."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ReproError(f"worker solve failed: {exc!r}")


# ---------------------------------------------------------------------------
# parent side: the pool
# ---------------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side state for one worker: process, pipe, and in-flight jobs."""

    __slots__ = ("proc", "conn", "send_lock", "pending", "ready", "dead")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.ready = threading.Event()
        self.dead = False


class ShmWorkerPool:
    """Persistent worker processes fed descriptors + small job tuples.

    Parameters
    ----------
    workers:
        Worker-process count (also the handler-thread count — one parent
        thread drains each worker's pipe, which is what turns a dead
        worker's ``EOF`` into prompt :class:`WorkerCrashedError` failures
        instead of hung callers).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` uses the
        platform default.  Both fork and spawn are exercised in the tests.
    graph_cache:
        Per-worker adopted-graph LRU size.
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        graph_cache: int = DEFAULT_GRAPH_CACHE,
    ) -> None:
        """Spawn the workers and their pipe-handler threads."""
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.graph_cache = graph_cache
        self._ctx = get_context(start_method)
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._closing = False
        self._restarts = 0
        #: Consecutive deaths-before-ready per slot: a worker that cannot
        #: even start (broken environment, import failure) must not be
        #: respawned in an unbounded tight loop — past the cap the slot is
        #: retired and its jobs fail fast instead.
        self._early_deaths = [0] * workers
        self._dispatched = [0] * workers
        #: canonical key -> worker index (LRU-bounded): repeat keys stick
        #: to their worker's warm cache, fresh keys go to the least loaded.
        self._route: dict[str, int] = {}
        self._route_cap = 4096
        self._m_dispatch = [
            _M_DISPATCH.labels(worker=str(i)) for i in range(workers)
        ]
        _M_IMBALANCE.set_function(
            lambda pool: pool.route_imbalance(), owner=self
        )
        self._handles: list[_WorkerHandle] = [
            self._spawn() for _ in range(workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._handler,
                args=(i,),
                name=f"shm-pool-handler-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    def _spawn(self) -> _WorkerHandle:
        """Start one worker process and return its fresh handle."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.graph_cache),
            daemon=True,
            name="shm-pool-worker",
        )
        proc.start()
        child_conn.close()  # the parent keeps only its own end
        return _WorkerHandle(proc, parent_conn)

    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float | None = 30.0) -> None:
        """Block until every worker sent its ready handshake.

        Benchmarks call this before timing so interpreter start-up (spawn
        imports numpy per worker) never pollutes a measured serve.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in list(self._handles):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not handle.ready.wait(remaining):
                raise ReproError("pool workers not ready before timeout")

    def worker_pids(self) -> list[int]:
        """Live worker PIDs, in worker order (crash tests kill these)."""
        with self._lock:
            return [h.proc.pid for h in self._handles]

    @property
    def restart_count(self) -> int:
        """Workers respawned after dying (mirrors the restarts counter)."""
        with self._lock:
            return self._restarts

    def dispatch_counts(self) -> list[int]:
        """Jobs dispatched per worker index over the pool's lifetime."""
        with self._lock:
            return list(self._dispatched)

    def route_imbalance(self) -> float:
        """Max-over-mean dispatch count (1.0 = perfectly balanced)."""
        with self._lock:
            total = sum(self._dispatched)
            if not total:
                return 1.0
            mean = total / len(self._dispatched)
            return max(self._dispatched) / mean

    # ------------------------------------------------------------------
    def submit(
        self,
        descriptor: ShmDescriptor,
        job: tuple,
        ctx_row: dict | None = None,
    ) -> Future:
        """Dispatch one ``(key, p, engine)`` job; returns its future.

        Routed by the descriptor's canonical key: a key seen before goes
        back to its worker (whose adopted-graph cache is warm), a fresh
        key to the worker with the fewest jobs in flight.  The future
        resolves to the worker's ``(key, labels, span, engine, exact,
        seconds)`` tuple, or raises what the solve raised —
        :class:`WorkerCrashedError` when the worker died instead of
        answering.
        """
        return self._dispatch(("job", descriptor, job, ctx_row), descriptor.key)

    def probe(self, descriptor: ShmDescriptor) -> Future:
        """Dispatch a zero-copy diagnostic for ``descriptor`` (see tests)."""
        return self._dispatch(("probe", descriptor), descriptor.key)

    def _dispatch(self, message: tuple, key: str) -> Future:
        """Route, register and send one message; returns its future."""
        future: Future = Future()
        with self._lock:
            if self._closing:
                raise ReproError("pool is shut down; no new jobs")
            live = [
                i for i in range(self.workers) if not self._handles[i].dead
            ]
            if not live:
                raise WorkerCrashedError(
                    "every pool worker died before becoming ready; "
                    "the pool is broken"
                )
            index = self._route.get(key)
            if index is None or self._handles[index].dead:
                index = min(
                    live,
                    key=lambda i: (len(self._handles[i].pending),
                                   self._dispatched[i]),
                )
            else:
                self._route.pop(key)
            self._route[key] = index
            while len(self._route) > self._route_cap:
                self._route.pop(next(iter(self._route)))
            handle = self._handles[index]
            job_id = next(self._seq)
            handle.pending[job_id] = future
            self._dispatched[index] += 1
        self._m_dispatch[index].inc()
        payload = (message[0], job_id, *message[1:])
        try:
            with handle.send_lock:
                handle.conn.send(payload)
        except (OSError, ValueError):
            # the worker died between routing and send; its handler thread
            # (or this sweep) fails the future — never both
            self._settle(handle, job_id, WorkerCrashedError(
                "pool worker died before accepting the job"
            ))
        return future

    def _settle(self, handle: _WorkerHandle, job_id: int, exc: BaseException) -> None:
        """Fail one pending job exactly once (crash paths can race)."""
        with self._lock:
            future = handle.pending.pop(job_id, None)
        if future is not None:
            future.set_exception(exc)

    # ------------------------------------------------------------------
    def _handler(self, index: int) -> None:
        """Drain one worker's pipe; detect death, fail in-flight, respawn."""
        from repro.obs.trace import TRACER

        while True:
            with self._lock:
                handle = self._handles[index]
                closing = self._closing
            if closing:
                return
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                if not self._crashed(index, handle):
                    return
                continue
            if msg[0] == "ready":
                handle.ready.set()
                continue
            _, job_id, ok, payload, spans = msg
            with self._lock:
                future = handle.pending.pop(job_id, None)
            if spans:
                TRACER.ingest(list(spans))
            if future is None:
                continue  # settled by a crash sweep that raced the reply
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(payload)

    def _crashed(self, index: int, handle: _WorkerHandle) -> bool:
        """Handle one worker death: fail its jobs, respawn.  False = stop.

        A worker that died *before* its ready handshake never ran a job —
        three of those in a row mean the worker environment itself is
        broken (an import failure would otherwise respawn forever), so
        the slot is retired instead of respawned.
        """
        with self._lock:
            if self._closing:
                return False
            handle.dead = True
            orphans = list(handle.pending.values())
            handle.pending.clear()
            # drop the dead worker's routes so rerouted keys rebalance
            self._route = {
                k: i for k, i in self._route.items() if i != index
            }
            if handle.ready.is_set():
                self._early_deaths[index] = 0
            else:
                self._early_deaths[index] += 1
            respawn = self._early_deaths[index] < 3
            if respawn:
                self._handles[index] = self._spawn()
                self._restarts += 1
        if not respawn:
            for future in orphans:
                future.set_exception(
                    WorkerCrashedError(
                        "pool worker died repeatedly before becoming "
                        "ready; worker slot retired"
                    )
                )
            try:
                handle.conn.close()
            except OSError:
                pass
            return False
        _M_RESTARTS.inc()
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.proc.join(timeout=1.0)
        for future in orphans:
            future.set_exception(
                WorkerCrashedError(
                    f"pool worker {handle.proc.pid} died with "
                    f"{len(orphans)} job(s) in flight"
                )
            )
        return True

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers and fail whatever was still in flight.

        Sends each worker the stop sentinel, joins (escalating to
        terminate for a worker wedged mid-solve), then retires the
        handler threads.  Idempotent.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            handles = list(self._handles)
        for handle in handles:
            try:
                with handle.send_lock:
                    handle.conn.send(None)
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
        for handle in handles:
            try:
                handle.conn.close()
            except OSError:
                pass
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)
        self._threads = []
        leftovers: list[Future] = []
        with self._lock:
            for handle in handles:
                leftovers.extend(handle.pending.values())
                handle.pending.clear()
        for future in leftovers:
            future.set_exception(
                WorkerCrashedError("pool shut down with the job in flight")
            )

    def __enter__(self) -> "ShmWorkerPool":
        """Context manager: the running pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Stop the workers on scope exit."""
        self.shutdown()
