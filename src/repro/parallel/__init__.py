"""Process-parallel helpers: engine portfolios and parameter sweeps."""

from repro.parallel.pool import parallel_map, chunked
from repro.parallel.portfolio import portfolio_solve, sequential_portfolio

__all__ = ["parallel_map", "chunked", "portfolio_solve", "sequential_portfolio"]
