"""Delta-aware APSP repair: the kernels and the stateful engine.

Correctness rests on two classical facts about unweighted shortest paths:

1. *Insertion* of edge ``{u, v}`` can only shorten distances, and any
   strictly shorter path must cross the new edge, so
   ``d'(i, j) = min(d(i, j), d(i, u) + 1 + d(v, j), d(i, v) + 1 + d(u, j))``
   — one vectorized ``O(n^2)`` relaxation repairs the whole matrix.
2. *Deletion* of edge ``{u, v}`` can only lengthen distances, and a row
   ``i`` can change only if some shortest path from ``i`` used the edge,
   which forces ``|d(i, u) - d(i, v)| == 1`` (take ``j = v`` resp. ``u``
   in ``d(i, j) = d(i, u) + 1 + d(v, j)`` and apply the triangle
   inequality).  Rows outside that superset keep their old values; rows
   inside it are recomputed exactly by multi-source BFS on the mutated
   adjacency.

Both kernels are assert-equal to
:func:`repro.graphs.traversal.all_pairs_distances_reference` after every
delta in the property tests and ``benchmarks/bench_e13_dynamic_updates.py``.

The deletion repair degenerates when most rows are touched (small-diameter
graphs make ``|d(i,u) - d(i,v)| == 1`` common), so above
:data:`DELETE_FALLBACK_FRACTION` the engine abandons the repair and runs a
full APSP.  Every such abandonment — threshold, trimmed mutation window,
or replay desync — increments the process-wide counter behind
:func:`full_apsp_refresh_count`, the metric the perf baseline gates.
"""

from __future__ import annotations

import numpy as np

import repro.graphs.analysis as analysis_mod
from repro.graphs.analysis import (
    GraphAnalysis,
    attach_distances,
    ensure_current,
    get_analysis,
)
from repro.graphs.graph import Graph, Mutation
from repro.graphs.traversal import (
    UNREACHABLE,
    all_pairs_distances,
    distance_rows_csr,
)
from repro.obs.metrics import REGISTRY

#: Fraction of rows above which an edge-delete repair falls back to a full
#: APSP.  Touched rows cost one multi-source BFS level-sweep each, so a
#: repair touching nearly every row does the work of a full recompute plus
#: bookkeeping; below the threshold the partial sweep (which also skips
#: the adjacency-matrix rebuild the full kernel pays) wins.
DELETE_FALLBACK_FRACTION = 0.75

#: Vertex count above which :func:`distance_rows` switches from the dense
#: boolean-matmul expansion to the sparse CSR frontier kernel.  At small n
#: the matmul's fixed overhead is lower (measured ~7x at n = 48); past a
#: few hundred vertices the sparse path's edges-actually-traversed cost
#: wins by an order of magnitude.  Matches the analysis layer's
#: ``DENSE_MATERIALIZE_LIMIT`` regime switch.
CSR_ROWS_LIMIT = 256

#: Registry counter of incremental repairs abandoned for a full APSP.
_FULL_REFRESHES = REGISTRY.counter("repro_full_apsp_refresh_total")
_FULL_REFRESHES.labels()  # materialize: the exposition shows 0, not nothing


def full_apsp_refresh_count() -> int:
    """How many times delta repair fell back to a full APSP in this process.

    The ``DYNAMIC`` perf leg records this per churn stream and the
    committed baseline gates it: the count may never rise.  Delegates to
    the ``repro_full_apsp_refresh_total`` registry counter, so the legacy
    call sites and the metrics exposition share one value.
    """
    return int(_FULL_REFRESHES.value)


def _count_full_refresh() -> None:
    """Bump the process-wide abandoned-repair counter."""
    _FULL_REFRESHES.inc()


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------
def relax_insert(dist: np.ndarray, u: int, v: int) -> None:
    """Repair ``dist`` in place for the insertion of edge ``{u, v}``.

    Vectorized affected-pairs relaxation: with ``W`` the matrix under a
    finite infinity, the candidate through the new edge is
    ``W[:, u, None] + 1 + W[None, v, :]`` and its transpose covers the
    opposite orientation.  Exact for unweighted graphs, including inserts
    that merge two components.  Works in the matrix's own dtype (the
    blocked oracle hands out ``int16``), widening only the scratch array
    when ``2n + 1`` — the largest candidate sum — would overflow it.
    """
    n = dist.shape[0]
    inf = n  # any finite distance is <= n - 1
    work = dist.dtype
    if np.iinfo(work).max < 2 * n + 1:
        work = np.int32 if 2 * n + 1 <= np.iinfo(np.int32).max else np.int64
    w = dist.astype(work, copy=True)
    w[dist == UNREACHABLE] = inf
    du = w[:, u]
    dv = w[:, v]
    cand = du[:, None] + (dv[None, :] + 1)
    np.minimum(cand, cand.T, out=cand)  # d(i,v) + 1 + d(u,j) == cand.T[i,j]
    np.minimum(w, cand, out=w)
    # repaired values only shrink, so they fit back into the original dtype
    dist[...] = np.where(w >= inf, UNREACHABLE, w)


def affected_sources(dist: np.ndarray, u: int, v: int) -> np.ndarray:
    """Rows whose distances may change when edge ``{u, v}`` is deleted.

    Evaluated on the **pre-delete** matrix.  A shortest path from ``i``
    can use the edge only if ``|d(i, u) - d(i, v)| == 1`` (both finite);
    every other row is provably unchanged.
    """
    du = dist[:, u]
    dv = dist[:, v]
    reach = (du != UNREACHABLE) & (dv != UNREACHABLE)
    return np.nonzero(reach & (np.abs(du - dv) == 1))[0]


def distance_rows(
    adj: np.ndarray, sources: np.ndarray, dtype=np.int64
) -> np.ndarray:
    """Exact BFS distance rows for ``sources`` over boolean adjacency ``adj``.

    Two regimes, crossing over at :data:`CSR_ROWS_LIMIT` vertices.  Small
    graphs keep the dense expansion — one ``(k, n) @ (n, n)`` boolean
    product per BFS level, whose fixed overhead is lower than any sparse
    bookkeeping at that size.  Larger graphs delegate to the sparse CSR
    frontier kernel (:func:`~repro.graphs.traversal.distance_rows_csr`)
    after one ``np.nonzero`` pass over the dense adjacency — frontier work
    is then proportional to the edges actually traversed, which is what
    keeps large-graph delete repairs off the ``O(k n^2)`` cliff.  Rows come
    back in ``dtype`` so the engine can repair a narrow matrix without
    widening it; on the CSR path a level that would overflow promotes to
    the next wider integer type.
    """
    n = adj.shape[0]
    sources = np.asarray(sources, dtype=np.int64)
    if n > CSR_ROWS_LIMIT:
        # np.nonzero walks row-major, so tails arrive grouped by head —
        # already a valid CSR indices array under the bincount indptr
        heads, tails = np.nonzero(adj)
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(heads, minlength=n)))
        ).astype(np.int64)
        return distance_rows_csr(
            indptr, tails.astype(np.int64), sources, n, dtype=dtype
        )
    k = sources.shape[0]
    dist = np.full((k, n), UNREACHABLE, dtype=dtype)
    if k == 0 or n == 0:
        return dist
    dist[np.arange(k), sources] = 0
    reached = np.zeros((k, n), dtype=bool)
    reached[np.arange(k), sources] = True
    frontier = reached.copy()
    level = 0
    while True:
        frontier = (frontier @ adj) & ~reached
        if not frontier.any():
            break
        level += 1
        dist[frontier] = level
        reached |= frontier
    return dist


def _pad_vertex(dist: np.ndarray) -> np.ndarray:
    """Grow the matrix for one appended isolated vertex (dtype preserved)."""
    n = dist.shape[0]
    out = np.full((n + 1, n + 1), UNREACHABLE, dtype=dist.dtype)
    out[:n, :n] = dist
    out[n, n] = 0
    return out


# ---------------------------------------------------------------------------
# the stateful engine
# ---------------------------------------------------------------------------
class DeltaEngine:
    """Maintains ``(distances, adjacency)`` across a mutation stream.

    Built from a graph whose oracle is (or becomes) warm, then advanced by
    :meth:`refresh` to any same-lineage graph — the same instance mutated
    in place, or a ``copy()``-descendant whose version continuity the
    copied mutation log witnesses.  Keeping the boolean adjacency inside
    the engine makes edge updates ``O(1)`` and spares delete repairs the
    per-call adjacency rebuild that dominates the full kernel at small
    ``n``.

    >>> from repro.graphs.generators import cycle_graph
    >>> g = cycle_graph(5)
    >>> engine = DeltaEngine(g)
    >>> g.add_edge(0, 2)
    >>> int(engine.refresh(g)[0, 2])
    1
    """

    def __init__(
        self,
        graph: Graph,
        analysis: GraphAnalysis | None = None,
        delete_fallback_fraction: float = DELETE_FALLBACK_FRACTION,
    ) -> None:
        """Seed the engine from ``graph``'s (or the given) current analysis."""
        a = ensure_current(graph, analysis)
        self.dist = np.array(a.distances, copy=True)
        self.adj = graph.adjacency_matrix(dtype=np.bool_)
        self.m = graph.m
        self.version = graph.version
        self._lineage_mark = _record_suffix_at(graph, graph.version)
        self.delete_fallback_fraction = float(delete_fallback_fraction)

    @classmethod
    def _from_state(
        cls, dist: np.ndarray, adj: np.ndarray, version: int,
        lineage_mark: tuple[Mutation, ...],
    ) -> "DeltaEngine":
        """Internal: an engine over explicit state (stateless refresh path)."""
        engine = cls.__new__(cls)
        engine.dist = dist
        engine.adj = adj
        engine.m = int(adj.sum()) // 2
        engine.version = version
        engine._lineage_mark = lineage_mark
        engine.delete_fallback_fraction = DELETE_FALLBACK_FRACTION
        return engine

    @property
    def n(self) -> int:
        """Vertex count of the maintained distance matrix."""
        return self.dist.shape[0]

    # ------------------------------------------------------------------
    def refresh(self, graph: Graph) -> np.ndarray:
        """Advance to ``graph``'s current version; return the live matrix.

        Replays ``graph.mutations_since(self.version)`` through the delta
        kernels; any gap the log no longer covers, replay inconsistency,
        or over-threshold delete resyncs from a full APSP (counted by
        :func:`full_apsp_refresh_count`).  The returned array is **engine
        owned** and mutated by later refreshes — use :meth:`attach` (which
        copies) to install it as a graph's memoized oracle.
        """
        lineage_ok = (
            graph.n >= self.n and self._lineage_witnessed(graph)
        )
        if graph.version == self.version and graph.n == self.n and lineage_ok:
            return self.dist
        muts = graph.mutations_since(self.version)
        if muts is None or not lineage_ok or not self._replay(graph, muts):
            self._full_resync(graph)
        return self.dist

    def _lineage_witnessed(self, graph: Graph) -> bool:
        """Does ``graph``'s log agree with the engine's lineage mark?

        Version equality alone cannot distinguish two *divergent sibling
        copies* (the same ancestor mutated two different ways reaches the
        same version, ``n`` and ``m``), but their logs differ at the
        engine's version: a genuine descendant carries the exact records
        the engine last saw.  Comparing the newest
        :data:`_LINEAGE_SUFFIX` records at/below the engine's version is a
        **best-effort witness**, not proof — the refresh contract still
        requires same-lineage graphs; an unrelated graph whose retained
        log coincides on that whole suffix is not detected.
        """
        return _marks_agree(
            _record_suffix_at(graph, self.version), self._lineage_mark
        )

    def attach(self, graph: Graph) -> GraphAnalysis:
        """Install a copy of the maintained matrix as ``graph``'s oracle."""
        if graph.version != self.version or graph.n != self.n:
            raise ValueError(
                "DeltaEngine is not synced to this graph; call refresh first"
            )
        return attach_distances(graph, np.array(self.dist, copy=True))

    # ------------------------------------------------------------------
    def _replay(self, graph: Graph, muts: tuple[Mutation, ...]) -> bool:
        """Apply the mutation run; False means "resync from scratch".

        Per-op consistency against the engine's own adjacency (inserting
        an edge it already has, removing one it lacks, a non-appending
        vertex add) plus the final ``n``/``m`` cross-check catch most
        desyncs; the caller's :meth:`_lineage_witnessed` check covers the
        divergent-sibling case these cannot see.  None of this *proves*
        lineage — see the witness docstring.
        """
        for m in muts:
            if m.op == "add_edge":
                if not self._valid_pair(m.u, m.v) or self.adj[m.u, m.v]:
                    return False
                self.adj[m.u, m.v] = self.adj[m.v, m.u] = True
                self.m += 1
                relax_insert(self.dist, m.u, m.v)
            elif m.op == "remove_edge":
                if not self._valid_pair(m.u, m.v) or not self.adj[m.u, m.v]:
                    return False
                touched = affected_sources(self.dist, m.u, m.v)
                self.adj[m.u, m.v] = self.adj[m.v, m.u] = False
                self.m -= 1
                if len(touched) > self.delete_fallback_fraction * self.n:
                    return False  # repair would cost ~a full APSP anyway
                rows = distance_rows(self.adj, touched, dtype=self.dist.dtype)
                if rows.dtype != self.dist.dtype:
                    self.dist = self.dist.astype(rows.dtype)
                self.dist[touched, :] = rows
                self.dist[:, touched] = rows.T
            elif m.op == "add_vertex":
                if m.u != self.n:
                    return False
                self.dist = _pad_vertex(self.dist)
                self.adj = np.pad(self.adj, ((0, 1), (0, 1)))
            else:
                return False
            self.version = m.version
            self._lineage_mark = (*self._lineage_mark[1 - _LINEAGE_SUFFIX:], m)
        return (
            self.version == graph.version
            and self.n == graph.n
            and self.m == graph.m
        )

    def _valid_pair(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is a distinct in-range vertex pair."""
        return 0 <= u < self.n and 0 <= v < self.n and u != v

    def _full_resync(self, graph: Graph) -> None:
        """Abandon incremental repair: rebuild state from the graph (counted)."""
        _count_full_refresh()
        cached = graph._analysis
        if (
            cached is not None
            and cached.version == graph.version
            and cached._distances is not None
        ):
            self.dist = np.array(cached._distances, copy=True)
        elif graph.n <= analysis_mod.DENSE_MATERIALIZE_LIMIT:
            self.dist = all_pairs_distances(graph)
        else:
            # large graphs resync through the blocked oracle: the rebuilt
            # matrix is assembled from int16 row blocks and memoized on the
            # graph, instead of a dense int64 kernel run
            self.dist = np.array(get_analysis(graph).distances, copy=True)
        self.adj = graph.adjacency_matrix(dtype=np.bool_)
        self.m = graph.m
        self.version = graph.version
        self._lineage_mark = _record_suffix_at(graph, graph.version)


#: How many trailing mutation records the lineage witness compares.  One
#: record already separates divergent sibling copies (their last mutations
#: differ by construction); a longer suffix makes a *coincidental* match
#: with an unrelated graph's log practically impossible while staying O(1)
#: per refresh.
_LINEAGE_SUFFIX = 4


def _record_suffix_at(graph: Graph, version: int) -> tuple[Mutation, ...]:
    """The newest (up to ``_LINEAGE_SUFFIX``) records with version <= ``version``.

    Empty when no such record is retained — either the graph was never
    mutated (version 0) or the window has been trimmed past ``version``.
    """
    out: list[Mutation] = []
    for m in reversed(graph._mutation_log):
        if m.version <= version:
            out.append(m)
            if len(out) == _LINEAGE_SUFFIX:
                break
    return tuple(reversed(out))


def _marks_agree(a: tuple[Mutation, ...], b: tuple[Mutation, ...]) -> bool:
    """Do two lineage marks agree on their overlapping suffix?

    The sides may retain different depths (a capped log trims oldest
    records first), so only the common tail is compared.  One empty side
    against a non-empty one cannot witness anything and is rejected; both
    empty (never-mutated graphs, necessarily edgeless) is accepted.
    """
    if not a or not b:
        return a == b
    k = min(len(a), len(b))
    return a[-k:] == b[-k:]


# ---------------------------------------------------------------------------
# stateless entry points (behind GraphAnalysis.refresh / .apply_delta)
# ---------------------------------------------------------------------------
def refresh_analysis(
    graph: Graph, prior: GraphAnalysis | None = None
) -> GraphAnalysis:
    """A current, distance-warm oracle for ``graph`` by delta repair.

    ``prior`` is the analysis to repair from (default: the graph's own
    memoized one).  A prior without a computed matrix is a cold start —
    there is nothing to repair, so the ordinary oracle is returned and
    **not** counted as a fallback.  A prior bound to a different instance
    is accepted when version continuity holds (the session's
    copy-then-mutate trials); shape or replay inconsistencies fall back to
    a counted full recompute.

    The repaired matrix is installed as ``graph``'s memoized oracle, so
    every downstream layer (applicability, reduction, canonical keys,
    verification) reuses it for free.
    """
    if prior is None:
        prior = graph._analysis
    if prior is not None and prior.graph is graph and prior.is_current():
        return prior
    if prior is None or prior._distances is None:
        return get_analysis(graph)
    if prior.graph is not graph and not _marks_agree(
        _record_suffix_at(prior.graph, prior.version),
        _record_suffix_at(graph, prior.version),
    ):
        # a cross-instance prior must witness shared lineage: a genuine
        # copy retains the identical records at/below the prior's version,
        # so the suffixes agree; a divergent sibling's differ.  Like the
        # engine's witness this is best-effort — the contract still
        # requires a same-lineage target.
        return _counted_full(graph)
    muts = graph.mutations_since(prior.version)
    if muts is None or prior._distances.shape[0] + _grown(muts) != graph.n:
        return _counted_full(graph)
    if not muts:
        # same version, witnessed lineage: transplant the matrix verbatim
        return attach_distances(graph, np.array(prior._distances, copy=True))

    if any(m.op == "remove_edge" for m in muts):
        adj = _rewind_adjacency(graph, muts)
        if adj is None or adj.shape[0] != prior._distances.shape[0]:
            return _counted_full(graph)
        engine = DeltaEngine._from_state(
            np.array(prior._distances, copy=True),
            adj,
            prior.version,
            _record_suffix_at(graph, prior.version),
        )
        if not engine._replay(graph, muts):
            return _counted_full(graph)
        return attach_distances(graph, engine.dist)

    # insert/grow-only gap: no adjacency state needed at all
    dist = np.array(prior._distances, copy=True)
    for m in muts:
        if m.op == "add_vertex":
            if m.u != dist.shape[0]:
                return _counted_full(graph)
            dist = _pad_vertex(dist)
        else:
            n = dist.shape[0]
            if not (0 <= m.u < n and 0 <= m.v < n and m.u != m.v):
                return _counted_full(graph)
            relax_insert(dist, m.u, m.v)
    return attach_distances(graph, dist)


def apply_delta(prior: GraphAnalysis, mutation: Mutation) -> GraphAnalysis:
    """Advance ``prior`` by exactly one mutation of its own graph.

    The single-step flavour of :func:`refresh_analysis`: ``mutation`` must
    be the one change separating ``prior`` from its graph's current
    version (the record ``graph.add_edge``/... just appended to the
    mutation log).
    """
    graph = prior.graph
    muts = graph.mutations_since(prior.version)
    if muts != (mutation,):
        raise ValueError(
            "apply_delta: mutation is not the single change separating this "
            "analysis from its graph's current version"
        )
    return refresh_analysis(graph, prior)


def _grown(muts: tuple[Mutation, ...]) -> int:
    """How many vertex-adds a mutation window contains."""
    return sum(1 for m in muts if m.op == "add_vertex")


def _counted_full(graph: Graph) -> GraphAnalysis:
    """Counted fallback: a from-scratch, distance-warm oracle."""
    _count_full_refresh()
    analysis = get_analysis(graph)
    analysis.distances  # force the matrix: callers expect a warm oracle
    return analysis


def _rewind_adjacency(
    graph: Graph, muts: tuple[Mutation, ...]
) -> np.ndarray | None:
    """Adjacency as of the version *before* ``muts``, by reverse-applying.

    Walking the records backwards from the graph's current adjacency
    reconstructs the snapshot the prior matrix describes; any
    inconsistency (re-adding a present edge, a grown vertex that still has
    edges at its own add point) returns ``None``.
    """
    adj = graph.adjacency_matrix(dtype=np.bool_)
    for m in reversed(muts):
        n = adj.shape[0]
        if m.op == "add_edge":
            if not (0 <= m.u < n and 0 <= m.v < n) or not adj[m.u, m.v]:
                return None
            adj[m.u, m.v] = adj[m.v, m.u] = False
        elif m.op == "remove_edge":
            if not (0 <= m.u < n and 0 <= m.v < n) or adj[m.u, m.v]:
                return None
            adj[m.u, m.v] = adj[m.v, m.u] = True
        elif m.op == "add_vertex":
            if m.u != n - 1 or adj[m.u].any():
                return None
            adj = adj[:-1, :-1].copy()
        else:
            return None
    return adj
