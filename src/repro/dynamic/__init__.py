"""Incremental dynamic-graph engine: delta-aware distance-matrix repair.

Mutate-and-resolve workloads (the paper's living radio networks) used to
pay a **full APSP per mutation**: every edge flip bumps ``Graph.version``
and cold-starts the :class:`~repro.graphs.analysis.GraphAnalysis` oracle.
This package repairs the memoized distance matrix in place instead, keyed
to the per-mutation :attr:`repro.graphs.graph.Graph.mutation_log`:

- **edge insert** — vectorized affected-pairs relaxation (one ``O(n^2)``
  NumPy pass; distances only decrease, and any new shortest path crosses
  the new edge);
- **edge delete** — recompute only the rows whose shortest paths could
  have used the removed edge (``|d(i,u) - d(i,v)| == 1``), by multi-source
  frontier expansion over the maintained adjacency; falls back to a full
  APSP when the touched fraction exceeds a threshold;
- **vertex add** — pad the matrix with an unreachable row/column.

Every fallback to a full recompute is counted by
:func:`full_apsp_refresh_count`, which the perf baseline gates (the
``DYNAMIC`` workload leg's ``full_apsp_refresh_count`` may never rise).
Entry points: the stateful :class:`DeltaEngine` (sessions, churn loops)
and the stateless :func:`refresh_analysis` / :func:`apply_delta` behind
``GraphAnalysis.refresh()`` / ``GraphAnalysis.apply_delta()``.
"""

from repro.dynamic.engine import (
    DELETE_FALLBACK_FRACTION,
    DeltaEngine,
    affected_sources,
    apply_delta,
    distance_rows,
    full_apsp_refresh_count,
    refresh_analysis,
    relax_insert,
)

__all__ = [
    "DELETE_FALLBACK_FRACTION",
    "DeltaEngine",
    "affected_sources",
    "apply_delta",
    "distance_rows",
    "full_apsp_refresh_count",
    "refresh_analysis",
    "relax_insert",
]
