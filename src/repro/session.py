"""Dynamic frequency-assignment sessions.

The paper's motivating application is radio-frequency assignment; real
deployments change — transmitters come online, links appear as power is
raised.  :class:`LabelingSession` wraps the solver with mutate-and-resolve
semantics and keeps the assignment history, so the examples (and downstream
users) can model a living network instead of a frozen graph.

Re-solving goes through a shared service when one is supplied — either the
synchronous :class:`repro.service.LabelingService` or the queued
:class:`repro.service.server.ConcurrentLabelingService` (the session
detects the returned future and waits on it) — so mutate-and-resolve loops
that revisit a topology (undo, A/B probing, oscillating links) get warm
hits from the shared sharded cache, and many sessions can point at one
serving front end.  Without a service it falls back to a from-scratch
:func:`solve_labeling`.  The session's own value is bookkeeping: it
re-validates after every mutation, records span trajectories, and reports
which vertices' frequencies changed between assignments.

Re-solves take the **dynamic fast path**: a session-held
:class:`~repro.dynamic.DeltaEngine` repairs the previous version's
distance matrix across each trial copy (insert relaxation / affected-row
recompute, see :mod:`repro.dynamic`), so the applicability check, the
re-solve — including the service's canonical cache key — and verification
all reuse the repaired oracle and the mutation pays **zero** full APSP
runs.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.dynamic import DeltaEngine
from repro.errors import GraphError, ReductionNotApplicableError
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec
from repro.reduction.solver import SolveResult, solve_labeling
from repro.reduction.validation import analyze

if TYPE_CHECKING:
    from repro.service.api import LabelingService
    from repro.service.batch import ServiceResult
    from repro.service.server import ConcurrentLabelingService


@dataclass(frozen=True)
class AssignmentDelta:
    """What changed between two consecutive assignments."""

    span_before: int
    span_after: int
    relabeled: tuple[int, ...]   # pre-existing vertices whose label changed
    added: tuple[int, ...] = ()  # vertices that did not exist before

    @property
    def span_change(self) -> int:
        """Signed span delta caused by the mutation."""
        return self.span_after - self.span_before


def _diff_labels(
    old: Sequence[int], new: Sequence[int]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split a label diff into ``(relabeled, added)`` vertex tuples.

    ``relabeled`` holds vertices present in both assignments whose label
    changed; ``added`` holds vertices that exist only in the new one.  A
    fresh vertex never counts as relabeled — it had no label to change.

    >>> _diff_labels((0, 2, 4), (0, 3, 4, 6))
    ((1,), (3,))
    """
    common = min(len(old), len(new))
    relabeled = tuple(v for v in range(common) if old[v] != new[v])
    added = tuple(range(common, len(new)))
    return relabeled, added


class LabelingSession:
    """A mutable labeling workspace bound to one spec and engine.

    >>> from repro.labeling.spec import L21
    >>> from repro.graphs.generators import complete_graph
    >>> s = LabelingSession(complete_graph(3), L21, engine="held_karp")
    >>> s.span
    4
    >>> v = s.add_vertex(connect_to=[0, 1, 2])   # grow the clique
    >>> s.span
    6
    >>> len(s.history)
    2
    """

    def __init__(
        self,
        graph: Graph,
        spec: LpSpec,
        engine: str = "auto",
        service: "LabelingService | ConcurrentLabelingService | None" = None,
    ):
        """Copy the graph, bind spec/engine/service, and solve once."""
        self._graph = graph.copy()
        self.spec = spec
        self.engine = engine
        self.service = service
        self._history: list[SolveResult | ServiceResult] = []
        self._engine: DeltaEngine | None = None
        self._resolve()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """A copy of the current graph (the session owns its own)."""
        return self._graph.copy()

    @property
    def current(self) -> "SolveResult | ServiceResult":
        """The latest solve.

        A plain :class:`SolveResult`, or a :class:`ServiceResult` when the
        session routes through a service — the latter has no ``path`` or
        ``reduced`` instance (cache hits never materialize them).
        """
        return self._history[-1]

    @property
    def labeling(self) -> Labeling:
        """The current assignment."""
        return self.current.labeling

    @property
    def span(self) -> int:
        """The current assignment's span."""
        return self.current.span

    @property
    def history(self) -> "list[SolveResult | ServiceResult]":
        """Every solve so far (index 0 = initial), as a fresh list."""
        return list(self._history)

    def span_trajectory(self) -> list[int]:
        """Span after each mutation (index 0 = initial solve)."""
        return [r.span for r in self._history]

    # ------------------------------------------------------------------
    def add_vertex(self, connect_to: list[int] | None = None) -> int:
        """Add a transmitter, optionally with initial interference links.

        Returns the new vertex id.  Raises (and rolls back) if the grown
        network violates the reduction's preconditions.
        """
        trial = self._graph.copy()
        v = trial.add_vertex()
        for u in connect_to or []:
            trial.add_edge(u, v)
        self._commit(trial)
        return v

    def add_edge(self, u: int, v: int) -> AssignmentDelta:
        """Add an interference link and re-solve."""
        trial = self._graph.copy()
        trial.add_edge(u, v)
        return self._commit(trial)

    def remove_edge(self, u: int, v: int) -> AssignmentDelta:
        """Drop an interference link and re-solve.

        Removing edges can *increase* distances, so the diameter
        precondition is re-checked like any other mutation.
        """
        trial = self._graph.copy()
        trial.remove_edge(u, v)
        return self._commit(trial)

    # ------------------------------------------------------------------
    def _commit(self, trial: Graph) -> AssignmentDelta:
        """Validate, adopt and re-solve a mutated trial graph (or roll back)."""
        self._repair_oracle(trial)
        report = analyze(trial, self.spec)
        if not report.applicable:
            # the engine advanced past the rejected version; drop it and
            # rebuild lazily from the committed graph's (still warm) oracle
            self._engine = None
            raise ReductionNotApplicableError(
                f"mutation rejected: {report.reason()} (session rolled back)"
            )
        before = self.current if self._history else None
        self._graph = trial
        # the applicability check above read the repaired (or, cold, the
        # freshly computed) oracle; forward it so the re-solve computes none
        self._resolve(analysis=report.analysis)
        if before is None:
            return AssignmentDelta(self.span, self.span, ())
        relabeled, added = _diff_labels(
            before.labeling.labels, self.current.labeling.labels
        )
        return AssignmentDelta(before.span, self.span, relabeled, added)

    def _repair_oracle(self, trial: Graph) -> None:
        """Fast path: repair the previous oracle onto the trial copy.

        The trial descends from ``self._graph`` by construction (copy plus
        logged mutations), so the session's :class:`DeltaEngine` can
        replay the gap and attach the repaired matrix as the trial's
        memoized oracle — the applicability check, solver, canonical cache
        key and verification that follow then run **zero** APSP kernels.
        A cold session (first mutation after init) seeds the engine from
        the initial solve's memoized analysis.
        """
        if self._engine is None:
            warm = self._graph._analysis
            if (
                warm is None
                or not warm.is_current()
                or warm._distances is None
            ):
                return  # nothing to repair from; analyze pays the one APSP
            self._engine = DeltaEngine(self._graph, warm)
        self._engine.refresh(trial)
        self._engine.attach(trial)

    def _resolve(self, analysis=None) -> None:
        """Solve the current graph via the service (or inline) and record it."""
        if self.service is not None:
            # forward the repaired oracle explicitly: the canonical cache
            # key is derived from the same matrix the delta engine repaired
            from repro.service.protocol import SolveRequest

            result = self.service.submit(
                SolveRequest(
                    graph=self._graph,
                    spec=self.spec,
                    engine=self.engine,
                    analysis=analysis,
                )
            )
            if isinstance(result, Future):
                # a ConcurrentLabelingService answers with a future; the
                # session is synchronous by contract, so wait here (the
                # graph must not mutate while a worker may still read it)
                result = result.result()
        else:
            result = solve_labeling(
                self._graph, self.spec, engine=self.engine, analysis=analysis
            )
        self._history.append(result)


def session_for_radio_network(
    n: int,
    radius: float,
    spec: LpSpec,
    seed: int = 0,
    engine: str = "auto",
    service: "LabelingService | None" = None,
) -> tuple[LabelingSession, "object"]:
    """Convenience: a session over a random geometric deployment.

    Returns ``(session, positions)``.  Raises if the deployment violates
    the reduction preconditions (caller should densify or reseed).
    """
    from repro.graphs.generators import random_geometric_graph

    graph, pos = random_geometric_graph(n, radius, seed=seed)
    if not analyze(graph, spec).applicable:
        raise GraphError(
            "deployment not applicable (too sparse?); raise the radius"
        )
    return LabelingSession(graph, spec, engine=engine, service=service), pos
