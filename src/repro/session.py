"""Dynamic frequency-assignment sessions.

The paper's motivating application is radio-frequency assignment; real
deployments change — transmitters come online, links appear as power is
raised.  :class:`LabelingSession` wraps the solver with mutate-and-resolve
semantics and keeps the assignment history, so the examples (and downstream
users) can model a living network instead of a frozen graph.

Re-solving is from scratch (the reduction is ``O(nm)`` and the engines are
the cost anyway); the session's value is bookkeeping: it re-validates after
every mutation, records span trajectories, and reports which vertices'
frequencies changed between assignments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError, ReductionNotApplicableError
from repro.graphs.graph import Graph
from repro.labeling.labeling import Labeling
from repro.labeling.spec import LpSpec
from repro.reduction.solver import SolveResult, solve_labeling
from repro.reduction.validation import analyze


@dataclass(frozen=True)
class AssignmentDelta:
    """What changed between two consecutive assignments."""

    span_before: int
    span_after: int
    relabeled: tuple[int, ...]   # vertices whose label changed

    @property
    def span_change(self) -> int:
        return self.span_after - self.span_before


class LabelingSession:
    """A mutable labeling workspace bound to one spec and engine.

    >>> from repro.labeling.spec import L21
    >>> from repro.graphs.generators import complete_graph
    >>> s = LabelingSession(complete_graph(3), L21, engine="held_karp")
    >>> s.span
    4
    >>> v = s.add_vertex(connect_to=[0, 1, 2])   # grow the clique
    >>> s.span
    6
    >>> len(s.history)
    2
    """

    def __init__(self, graph: Graph, spec: LpSpec, engine: str = "auto"):
        self._graph = graph.copy()
        self.spec = spec
        self.engine = engine
        self._history: list[SolveResult] = []
        self._resolve()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """A copy of the current graph (the session owns its own)."""
        return self._graph.copy()

    @property
    def current(self) -> SolveResult:
        return self._history[-1]

    @property
    def labeling(self) -> Labeling:
        return self.current.labeling

    @property
    def span(self) -> int:
        return self.current.span

    @property
    def history(self) -> list[SolveResult]:
        return list(self._history)

    def span_trajectory(self) -> list[int]:
        """Span after each mutation (index 0 = initial solve)."""
        return [r.span for r in self._history]

    # ------------------------------------------------------------------
    def add_vertex(self, connect_to: list[int] | None = None) -> int:
        """Add a transmitter, optionally with initial interference links.

        Returns the new vertex id.  Raises (and rolls back) if the grown
        network violates the reduction's preconditions.
        """
        trial = self._graph.copy()
        v = trial.add_vertex()
        for u in connect_to or []:
            trial.add_edge(u, v)
        self._commit(trial)
        return v

    def add_edge(self, u: int, v: int) -> AssignmentDelta:
        """Add an interference link and re-solve."""
        trial = self._graph.copy()
        trial.add_edge(u, v)
        return self._commit(trial)

    def remove_edge(self, u: int, v: int) -> AssignmentDelta:
        """Drop an interference link and re-solve.

        Removing edges can *increase* distances, so the diameter
        precondition is re-checked like any other mutation.
        """
        trial = self._graph.copy()
        trial.remove_edge(u, v)
        return self._commit(trial)

    # ------------------------------------------------------------------
    def _commit(self, trial: Graph) -> AssignmentDelta:
        report = analyze(trial, self.spec)
        if not report.applicable:
            raise ReductionNotApplicableError(
                f"mutation rejected: {report.reason()} (session rolled back)"
            )
        before = self.current if self._history else None
        self._graph = trial
        self._resolve()
        if before is None:
            return AssignmentDelta(self.span, self.span, ())
        old = before.labeling.labels
        new = self.current.labeling.labels
        common = min(len(old), len(new))
        relabeled = tuple(
            v for v in range(common) if old[v] != new[v]
        ) + tuple(range(common, len(new)))
        return AssignmentDelta(before.span, self.span, relabeled)

    def _resolve(self) -> None:
        result = solve_labeling(self._graph, self.spec, engine=self.engine)
        self._history.append(result)


def session_for_radio_network(
    n: int, radius: float, spec: LpSpec, seed: int = 0, engine: str = "auto"
) -> tuple[LabelingSession, "object"]:
    """Convenience: a session over a random geometric deployment.

    Returns ``(session, positions)``.  Raises if the deployment violates
    the reduction preconditions (caller should densify or reseed).
    """
    from repro.graphs.generators import random_geometric_graph

    graph, pos = random_geometric_graph(n, radius, seed=seed)
    if not analyze(graph, spec).applicable:
        raise GraphError(
            "deployment not applicable (too sparse?); raise the radius"
        )
    return LabelingSession(graph, spec, engine=engine), pos
