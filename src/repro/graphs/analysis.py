"""Per-graph memoized analysis oracle — one APSP per graph version.

Every layer of this library runs on derived data of the same graph: the
reduction needs the distance matrix, applicability checks need connectivity
and the diameter, verification re-reads distances, canonicalization refines
over them, ``graph_power`` gathers them.  Before this module each consumer
recomputed from scratch, so one end-to-end solve paid for APSP three to four
times.  :class:`GraphAnalysis` computes each quantity lazily, exactly once,
and :func:`get_analysis` memoizes the whole object on the graph instance,
invalidated by the :attr:`Graph.version` mutation counter — the shared
runtime-cache discipline the ROADMAP's scaling goal calls for.

The invariant exported to the rest of the codebase:

    **a graph's distance matrix is computed at most once per graph
    version within a process** (asserted in tests via
    :func:`repro.graphs.traversal.apsp_run_count`).

Cheap scalar facts (connectivity, degrees, components) are derived without
touching the APSP, so fail-fast paths — e.g. rejecting a disconnected graph
— never pay for the full matrix.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    UNREACHABLE,
    all_pairs_distances,
    connected_components,
    distance_rows_csr,
    is_connected,
)
from repro.obs.metrics import REGISTRY

#: Largest ``n`` for which :attr:`GraphAnalysis.distances` runs the dense
#: ``int64`` APSP kernel directly.  Above it, row access goes through the
#: blocked :class:`LazyDistanceOracle` and a full matrix — if anyone still
#: asks for one — is assembled from ``int16`` row blocks (4x smaller).
#: Read at call time, so tests can monkeypatch it to force the blocked path
#: on small graphs.
DENSE_MATERIALIZE_LIMIT = 256

#: Rows per oracle block.  64 rows of ``int16`` at ``n = 2048`` is 256 KiB —
#: big enough to amortize the frontier-expansion setup, small enough that an
#: LRU budget holds many blocks.
DEFAULT_BLOCK_ROWS = 64

#: Default resident-bytes budget for one oracle's row-block LRU (32 MiB).
DEFAULT_ORACLE_BUDGET_BYTES = 32 * 2**20

_ORACLE_HITS = REGISTRY.counter("repro_oracle_block_hits_total")
_ORACLE_HITS.labels()
_ORACLE_MISSES = REGISTRY.counter("repro_oracle_block_misses_total")
_ORACLE_MISSES.labels()
_ORACLE_EVICTIONS = REGISTRY.counter("repro_oracle_block_evictions_total")
_ORACLE_EVICTIONS.labels()
_ORACLE_PEAK = REGISTRY.gauge("repro_oracle_peak_bytes")
_ORACLE_PEAK.labels()


class LazyDistanceOracle:
    """Memory-bounded row-block LRU over one graph snapshot's distances.

    Rows are materialized on demand in blocks of :attr:`block_rows` by
    multi-source frontier expansion over the graph's CSR adjacency
    (:func:`~repro.graphs.traversal.distance_rows_csr`), stored as ``int16``
    (promoted when a level overflows), and held in an LRU bounded by
    :attr:`budget_bytes`.  Resident bytes never exceed the budget unless a
    single block is itself larger — the one block being served is never
    evicted.  All blocks are read-only; hit/miss/eviction counts and the
    peak-resident-bytes high-water mark are mirrored to the
    ``repro_oracle_*`` registry metrics.
    """

    __slots__ = (
        "analysis",
        "block_rows",
        "budget_bytes",
        "_blocks",
        "resident_bytes",
        "peak_bytes",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(
        self,
        analysis: "GraphAnalysis",
        block_rows: int | None = None,
        budget_bytes: int | None = None,
    ) -> None:
        """Bind to one analysis snapshot with the given block/budget knobs."""
        self.analysis = analysis
        self.block_rows = int(block_rows or DEFAULT_BLOCK_ROWS)
        self.budget_bytes = int(budget_bytes or DEFAULT_ORACLE_BUDGET_BYTES)
        self._blocks: OrderedDict[int, np.ndarray] = OrderedDict()
        self.resident_bytes = 0
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def block_count(self) -> int:
        """Number of row blocks covering the ``n`` rows."""
        return -(-self.analysis.n // self.block_rows)

    def block(self, b: int) -> np.ndarray:
        """Row block ``b`` (rows ``b*block_rows ..``), read-only, LRU-cached."""
        blk = self._blocks.get(b)
        if blk is not None:
            self._blocks.move_to_end(b)
            self.hits += 1
            _ORACLE_HITS.inc()
            return blk
        self.misses += 1
        _ORACLE_MISSES.inc()
        a = self.analysis
        a._require_current()
        n = a.n
        lo = b * self.block_rows
        hi = min(n, lo + self.block_rows)
        indptr, indices = a.graph.csr_arrays()
        blk = distance_rows_csr(
            indptr, indices, np.arange(lo, hi, dtype=np.int64), n
        )
        blk.flags.writeable = False
        # make room first, so resident bytes stay under budget and the block
        # just materialized can never be the one evicted
        while self._blocks and self.resident_bytes + blk.nbytes > self.budget_bytes:
            _, old = self._blocks.popitem(last=False)
            self.resident_bytes -= old.nbytes
            self.evictions += 1
            _ORACLE_EVICTIONS.inc()
        self._blocks[b] = blk
        self.resident_bytes += blk.nbytes
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes
            _ORACLE_PEAK.set(float(self.peak_bytes))
        return blk

    def row(self, v: int) -> np.ndarray:
        """Distance row of vertex ``v`` as a read-only view into its block."""
        b, off = divmod(v, self.block_rows)
        return self.block(b)[off]

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``lo:hi`` — a view when one block covers them, else a copy."""
        if not (0 <= lo <= hi <= self.analysis.n):
            raise ValueError(f"row range [{lo}, {hi}) out of bounds")
        if lo == hi:
            return np.empty((0, self.analysis.n), dtype=np.int16)
        b0 = lo // self.block_rows
        b1 = (hi - 1) // self.block_rows
        if b0 == b1:
            base = b0 * self.block_rows
            return self.block(b0)[lo - base : hi - base]
        parts = []
        for b in range(b0, b1 + 1):
            base = b * self.block_rows
            blk = self.block(b)
            parts.append(blk[max(lo - base, 0) : hi - base])
        return np.concatenate(parts, axis=0)

    def stats(self) -> dict:
        """Counters + knobs snapshot: hits, misses, evictions, bytes, rate."""
        lookups = self.hits + self.misses
        return {
            "block_rows": self.block_rows,
            "budget_bytes": self.budget_bytes,
            "resident_bytes": self.resident_bytes,
            "peak_bytes": self.peak_bytes,
            "resident_blocks": len(self._blocks),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class GraphAnalysis:
    """Lazily computed, immutable-by-convention facts about one graph.

    Snapshot semantics: the analysis is bound to ``graph.version`` at
    construction.  Mutating the graph afterwards does not corrupt the
    analysis — it keeps describing the old version — but
    :func:`get_analysis` will build a fresh one.

    Eagerly built (cheap, ``O(n + m)``): CSR adjacency arrays
    (``indptr``/``indices``, neighbour lists sorted), the degree vector and
    its aggregates.  Lazily built on first access: ``distances`` (the
    vectorized APSP), ``components``, ``eccentricities`` and the
    ``diameter``/``radius`` scalars.

    >>> from repro.graphs.generators import cycle_graph
    >>> a = get_analysis(cycle_graph(5))
    >>> a.diameter, a.radius, a.component_count
    (2, 2, 1)
    >>> a.distances[0].tolist()
    [0, 1, 2, 2, 1]
    """

    __slots__ = (
        "graph",
        "version",
        "n",
        "m",
        "degrees",
        "_indptr",
        "_indices",
        "_distances",
        "_components",
        "_connected",
        "_eccentricities",
        "_oracle",
    )

    def __init__(self, graph: Graph) -> None:
        """Bind to ``graph`` at its current version; all caches start lazy."""
        self.graph = graph
        self.version = graph.version
        self.n = graph.n
        self.m = graph.m
        eu, ev = graph.edge_arrays()
        self.degrees = np.bincount(eu, minlength=self.n).astype(
            np.int64
        ) + np.bincount(ev, minlength=self.n)
        self._indptr: np.ndarray | None = None
        self._indices: np.ndarray | None = None
        self._distances: np.ndarray | None = None
        self._components: list[list[int]] | None = None
        self._connected: bool | None = None
        self._eccentricities: np.ndarray | None = None
        self._oracle: LazyDistanceOracle | None = None

    # ------------------------------------------------------------------
    # freshness
    # ------------------------------------------------------------------
    def is_current(self) -> bool:
        """True while the underlying graph has not been mutated since."""
        return self.version == self.graph.version

    def refresh(self) -> "GraphAnalysis":
        """A current analysis for this graph, by incremental delta repair.

        Returns ``self`` while current.  After mutations, delegates to the
        dynamic layer (:func:`repro.dynamic.refresh_analysis`, imported
        lazily — the one deliberate upward edge in the layer map), which
        repairs this analysis's distance matrix through the graph's
        mutation log instead of recomputing it, falling back to a full
        APSP only when the gap is unrepairable.  The result is installed
        as the graph's memoized oracle.
        """
        if self.is_current():
            return self
        from repro.dynamic import refresh_analysis

        return refresh_analysis(self.graph, prior=self)

    def apply_delta(self, mutation) -> "GraphAnalysis":
        """Advance this analysis past exactly one logged mutation.

        ``mutation`` must be the single :class:`~repro.graphs.graph.
        Mutation` separating this snapshot from the graph's current
        version; see :func:`repro.dynamic.apply_delta`.
        """
        from repro.dynamic import apply_delta

        return apply_delta(self, mutation)

    def _require_current(self) -> None:
        """Lazy computations must not read a graph that moved on.

        Cached values stay servable after a mutation (they still describe
        the snapshot version), but deriving *new* facts from the mutated
        adjacency would silently mix versions.
        """
        if not self.is_current():
            raise ValueError(
                "GraphAnalysis is stale: the graph was mutated after this "
                "analysis was built (use get_analysis for a fresh one)"
            )

    # ------------------------------------------------------------------
    # degree statistics (no traversal needed)
    # ------------------------------------------------------------------
    @property
    def max_degree(self) -> int:
        """Δ — the maximum degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self.n else 0

    def degree_histogram(self) -> np.ndarray:
        """``h[d]`` = number of vertices of degree ``d``."""
        if self.n == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.degrees, minlength=self.max_degree + 1)

    # ------------------------------------------------------------------
    # CSR adjacency (lazy; only the stats paths read it)
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers: ``indices[indptr[v]:indptr[v+1]]`` is ``N(v)``."""
        if self._indptr is None:
            self._indptr = np.concatenate(
                ([0], np.cumsum(self.degrees))
            ).astype(np.int64)
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices; each vertex's neighbour run is sorted."""
        if self._indices is None:
            self._require_current()
            self._indices = self.graph.csr_arrays()[1]
        return self._indices

    def neighbors_array(self, v: int) -> np.ndarray:
        """``N(v)`` as a sorted array view into the CSR ``indices``."""
        self.graph._check_vertex(v)
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    # ------------------------------------------------------------------
    # connectivity (single BFS — never triggers the APSP)
    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        """One-component check from a single BFS (cached)."""
        if self._connected is None:
            if self._distances is not None:
                self._connected = bool(
                    np.all(self._distances != UNREACHABLE)
                )
            else:
                self._require_current()
                self._connected = is_connected(self.graph)
        return self._connected

    @property
    def components(self) -> list[list[int]]:
        """Connected components, each sorted, in order of smallest member."""
        if self._components is None:
            self._require_current()
            self._components = connected_components(self.graph)
            if self._connected is None:
                self._connected = len(self._components) <= 1
        return self._components

    @property
    def component_count(self) -> int:
        """Number of connected components."""
        return len(self.components)

    # ------------------------------------------------------------------
    # distances (the one-per-version APSP, blocked above the dense limit)
    # ------------------------------------------------------------------
    @property
    def distances(self) -> np.ndarray:
        """The full ``n x n`` distance matrix, computed on first access.

        At ``n <= DENSE_MATERIALIZE_LIMIT`` this is the dense ``int64``
        vectorized APSP, unchanged.  Above the limit the matrix is
        assembled from the lazy oracle's ``int16`` row blocks — 4x smaller,
        and any blocks already resident are reused rather than recomputed.
        Prefer :meth:`row` / :meth:`rows` / :meth:`iter_row_blocks` on
        large graphs; full materialization defeats the byte budget.
        """
        if self._distances is None:
            self._require_current()
            if self.n <= DENSE_MATERIALIZE_LIMIT:
                self._distances = all_pairs_distances(self.graph)
            else:
                self._distances = self._assemble_from_blocks()
        return self._distances

    def _assemble_from_blocks(self) -> np.ndarray:
        """Dense matrix from oracle row blocks (widening if any promoted)."""
        out = np.full((self.n, self.n), UNREACHABLE, dtype=np.int16)
        for lo, hi, blk in self.iter_row_blocks():
            if np.promote_types(out.dtype, blk.dtype) != out.dtype:
                out = out.astype(blk.dtype)
            out[lo:hi] = blk
        return out

    @property
    def dense_preferred(self) -> bool:
        """True when full-matrix access is the right call for this snapshot.

        Either a dense matrix already exists (computed, attached or
        adopted) or ``n`` is under :data:`DENSE_MATERIALIZE_LIMIT`.
        Consumers branch on this to pick whole-matrix vs row-block access.
        """
        return self._distances is not None or self.n <= DENSE_MATERIALIZE_LIMIT

    def _ensure_oracle(self) -> LazyDistanceOracle:
        """The snapshot's lazy oracle, created with defaults on first use."""
        if self._oracle is None:
            self._oracle = LazyDistanceOracle(self)
        return self._oracle

    def configure_oracle(
        self,
        block_rows: int | None = None,
        budget_bytes: int | None = None,
    ) -> LazyDistanceOracle:
        """Install a fresh oracle with explicit knobs (drops cached blocks).

        Tuning belongs before the first row access; reconfiguring later
        only costs re-materialization of whatever was resident.
        """
        self._oracle = LazyDistanceOracle(
            self, block_rows=block_rows, budget_bytes=budget_bytes
        )
        return self._oracle

    def row(self, v: int) -> np.ndarray:
        """Distance row of vertex ``v`` without materializing the matrix.

        Serves a view of the dense matrix when one exists (or when ``n``
        is under the dense limit); otherwise a read-only view into the
        oracle's LRU-resident row block.
        """
        self.graph._check_vertex(v)
        if self.dense_preferred:
            return self.distances[v]
        return self._ensure_oracle().row(v)

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """Distance rows ``lo:hi`` (view when possible, else a copy)."""
        if self.dense_preferred:
            if not (0 <= lo <= hi <= self.n):
                raise ValueError(f"row range [{lo}, {hi}) out of bounds")
            return self.distances[lo:hi]
        return self._ensure_oracle().rows(lo, hi)

    def iter_row_blocks(self):
        """Yield ``(lo, hi, block)`` row slices covering the whole matrix.

        The streaming substrate for whole-matrix consumers (requirement
        matrices, eccentricities, edge-weight gathers): one block is
        resident at a time on large graphs, while small or already-dense
        analyses yield the full matrix as a single pseudo-block — callers
        need no dense/blocked case split.
        """
        if self.dense_preferred:
            yield 0, self.n, self.distances
            return
        oracle = self._ensure_oracle()
        for b in range(oracle.block_count):
            lo = b * oracle.block_rows
            hi = min(self.n, lo + oracle.block_rows)
            yield lo, hi, oracle.block(b)

    def oracle_stats(self) -> dict:
        """The lazy oracle's counters (zeros if no oracle was ever needed)."""
        if self._oracle is None:
            return LazyDistanceOracle(self).stats()
        return self._oracle.stats()

    @property
    def eccentricities(self) -> np.ndarray:
        """Per-vertex eccentricity vector; raises when disconnected.

        The connectivity pre-check is a single BFS, so disconnected input
        fails before any APSP is spent.  On large graphs without a dense
        matrix the maxima are streamed per row block — ``O(block)`` extra
        memory, never ``O(n^2)``.
        """
        if self._eccentricities is None:
            if not self.is_connected:
                raise DisconnectedGraphError(
                    "eccentricity undefined: graph is disconnected"
                )
            if self.n == 0:
                self._eccentricities = np.zeros(0, dtype=np.int64)
            elif self.dense_preferred:
                self._eccentricities = self.distances.max(axis=1).astype(
                    np.int64
                )
            else:
                ecc = np.empty(self.n, dtype=np.int64)
                for lo, hi, blk in self.iter_row_blocks():
                    ecc[lo:hi] = blk.max(axis=1)
                self._eccentricities = ecc
        return self._eccentricities

    @property
    def diameter(self) -> int:
        """``max_v ecc(v)``; 0 for at most one vertex, raises if disconnected."""
        if self.n <= 1:
            return 0
        return int(self.eccentricities.max())

    @property
    def radius(self) -> int:
        """``min_v ecc(v)``; 0 for at most one vertex, raises if disconnected."""
        if self.n <= 1:
            return 0
        return int(self.eccentricities.min())


def get_analysis(graph: Graph) -> GraphAnalysis:
    """The memoized :class:`GraphAnalysis` for the graph's current version.

    Returns the cached instance while the graph is unmutated; builds (and
    caches) a fresh one after any ``add_edge``/``remove_edge``/``add_vertex``.

    >>> from repro.graphs.generators import path_graph
    >>> g = path_graph(4)
    >>> get_analysis(g) is get_analysis(g)
    True
    >>> a = get_analysis(g); g.add_edge(0, 3)
    >>> get_analysis(g) is a
    False
    """
    cached = graph._analysis
    if cached is not None and cached.version == graph.version:
        return cached
    analysis = GraphAnalysis(graph)
    graph._analysis = analysis
    return analysis


def ensure_current(
    graph: Graph, analysis: GraphAnalysis | None
) -> GraphAnalysis:
    """Validate a forwarded analysis, or fetch the graph's memoized one.

    Entry points that accept an ``analysis=`` parameter route through this
    so a stale or foreign analysis can never silently feed a solve *and*
    its verification — the failure mode a shared matrix would otherwise
    make undetectable.
    """
    if analysis is None:
        return get_analysis(graph)
    if analysis.graph is not graph or not analysis.is_current():
        raise ValueError(
            "forwarded GraphAnalysis is stale or belongs to a different graph"
        )
    return analysis


def export_buffers(analysis: GraphAnalysis) -> dict[str, np.ndarray]:
    """The analysis's heavy arrays, keyed by field name, copy-free.

    ``distances`` (the ``n x n`` APSP matrix), plus the CSR adjacency pair
    ``indptr``/``indices`` — exactly the payload worth publishing into
    shared memory once per canonical graph instead of pickling per
    request.  Returns the live arrays (no copy); the caller treats them as
    read-only, same as every other consumer of the oracle.
    """
    return {
        "distances": analysis.distances,
        "indptr": analysis.indptr,
        "indices": analysis.indices,
    }


def adopt_buffers(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    distances: np.ndarray,
) -> Graph:
    """Rebuild a graph + seeded analysis from exported buffers, copy-free.

    The inverse of :func:`export_buffers` on the far side of a process
    boundary: the adjacency structure is reconstructed from the CSR pair,
    and the returned graph's memoized :class:`GraphAnalysis` holds the
    *given arrays themselves* — when they are views into a shared-memory
    segment, every downstream consumer (reduction, verify, refinement)
    reads the segment directly and the worker never materializes its own
    ``O(n^2)`` matrix.  The caller vouches for consistency between the
    CSR pair and the matrix; shapes are checked, content is trusted.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    distances = np.asarray(distances)
    if distances.dtype.kind != "i":
        distances = distances.astype(np.int64)
    if indptr.shape != (n + 1,):
        raise ValueError(f"indptr shape {indptr.shape} does not match n={n}")
    if distances.shape != (n, n):
        raise ValueError(
            f"distance matrix shape {distances.shape} does not match n={n}"
        )
    edges = [
        (v, int(w))
        for v in range(n)
        for w in indices[indptr[v]:indptr[v + 1]]
        if v < w
    ]
    graph = Graph(n, edges)
    analysis = GraphAnalysis(graph)
    analysis._indptr = indptr
    analysis._indices = indices
    analysis._distances = distances
    graph._analysis = analysis
    return graph


def attach_distances(graph: Graph, distances: np.ndarray) -> GraphAnalysis:
    """Seed the graph's oracle with an externally derived distance matrix.

    For callers that *already know* the matrix — e.g. the batch service,
    whose canonical graph's distances are a permutation of the request
    graph's — this installs it so downstream layers (reduction, verify)
    never recompute.  The caller vouches for correctness; shape is checked,
    content is trusted.
    """
    distances = np.asarray(distances)
    if distances.dtype.kind != "i":
        distances = distances.astype(np.int64)
    if distances.shape != (graph.n, graph.n):
        raise ValueError(
            f"distance matrix shape {distances.shape} does not match n={graph.n}"
        )
    analysis = GraphAnalysis(graph)
    analysis._distances = distances
    graph._analysis = analysis
    return analysis
