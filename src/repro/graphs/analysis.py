"""Per-graph memoized analysis oracle — one APSP per graph version.

Every layer of this library runs on derived data of the same graph: the
reduction needs the distance matrix, applicability checks need connectivity
and the diameter, verification re-reads distances, canonicalization refines
over them, ``graph_power`` gathers them.  Before this module each consumer
recomputed from scratch, so one end-to-end solve paid for APSP three to four
times.  :class:`GraphAnalysis` computes each quantity lazily, exactly once,
and :func:`get_analysis` memoizes the whole object on the graph instance,
invalidated by the :attr:`Graph.version` mutation counter — the shared
runtime-cache discipline the ROADMAP's scaling goal calls for.

The invariant exported to the rest of the codebase:

    **a graph's distance matrix is computed at most once per graph
    version within a process** (asserted in tests via
    :func:`repro.graphs.traversal.apsp_run_count`).

Cheap scalar facts (connectivity, degrees, components) are derived without
touching the APSP, so fail-fast paths — e.g. rejecting a disconnected graph
— never pay for the full matrix.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    UNREACHABLE,
    all_pairs_distances,
    connected_components,
    is_connected,
)


class GraphAnalysis:
    """Lazily computed, immutable-by-convention facts about one graph.

    Snapshot semantics: the analysis is bound to ``graph.version`` at
    construction.  Mutating the graph afterwards does not corrupt the
    analysis — it keeps describing the old version — but
    :func:`get_analysis` will build a fresh one.

    Eagerly built (cheap, ``O(n + m)``): CSR adjacency arrays
    (``indptr``/``indices``, neighbour lists sorted), the degree vector and
    its aggregates.  Lazily built on first access: ``distances`` (the
    vectorized APSP), ``components``, ``eccentricities`` and the
    ``diameter``/``radius`` scalars.

    >>> from repro.graphs.generators import cycle_graph
    >>> a = get_analysis(cycle_graph(5))
    >>> a.diameter, a.radius, a.component_count
    (2, 2, 1)
    >>> a.distances[0].tolist()
    [0, 1, 2, 2, 1]
    """

    __slots__ = (
        "graph",
        "version",
        "n",
        "m",
        "degrees",
        "_indptr",
        "_indices",
        "_distances",
        "_components",
        "_connected",
        "_eccentricities",
    )

    def __init__(self, graph: Graph) -> None:
        """Bind to ``graph`` at its current version; all caches start lazy."""
        self.graph = graph
        self.version = graph.version
        self.n = graph.n
        self.m = graph.m
        self.degrees = np.fromiter(
            (len(s) for s in graph._adj), dtype=np.int64, count=self.n
        )
        self._indptr: np.ndarray | None = None
        self._indices: np.ndarray | None = None
        self._distances: np.ndarray | None = None
        self._components: list[list[int]] | None = None
        self._connected: bool | None = None
        self._eccentricities: np.ndarray | None = None

    # ------------------------------------------------------------------
    # freshness
    # ------------------------------------------------------------------
    def is_current(self) -> bool:
        """True while the underlying graph has not been mutated since."""
        return self.version == self.graph.version

    def refresh(self) -> "GraphAnalysis":
        """A current analysis for this graph, by incremental delta repair.

        Returns ``self`` while current.  After mutations, delegates to the
        dynamic layer (:func:`repro.dynamic.refresh_analysis`, imported
        lazily — the one deliberate upward edge in the layer map), which
        repairs this analysis's distance matrix through the graph's
        mutation log instead of recomputing it, falling back to a full
        APSP only when the gap is unrepairable.  The result is installed
        as the graph's memoized oracle.
        """
        if self.is_current():
            return self
        from repro.dynamic import refresh_analysis

        return refresh_analysis(self.graph, prior=self)

    def apply_delta(self, mutation) -> "GraphAnalysis":
        """Advance this analysis past exactly one logged mutation.

        ``mutation`` must be the single :class:`~repro.graphs.graph.
        Mutation` separating this snapshot from the graph's current
        version; see :func:`repro.dynamic.apply_delta`.
        """
        from repro.dynamic import apply_delta

        return apply_delta(self, mutation)

    def _require_current(self) -> None:
        """Lazy computations must not read a graph that moved on.

        Cached values stay servable after a mutation (they still describe
        the snapshot version), but deriving *new* facts from the mutated
        adjacency would silently mix versions.
        """
        if not self.is_current():
            raise ValueError(
                "GraphAnalysis is stale: the graph was mutated after this "
                "analysis was built (use get_analysis for a fresh one)"
            )

    # ------------------------------------------------------------------
    # degree statistics (no traversal needed)
    # ------------------------------------------------------------------
    @property
    def max_degree(self) -> int:
        """Δ — the maximum degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self.n else 0

    def degree_histogram(self) -> np.ndarray:
        """``h[d]`` = number of vertices of degree ``d``."""
        if self.n == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.degrees, minlength=self.max_degree + 1)

    # ------------------------------------------------------------------
    # CSR adjacency (lazy; only the stats paths read it)
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers: ``indices[indptr[v]:indptr[v+1]]`` is ``N(v)``."""
        if self._indptr is None:
            self._indptr = np.concatenate(
                ([0], np.cumsum(self.degrees))
            ).astype(np.int64)
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices; each vertex's neighbour run is sorted."""
        if self._indices is None:
            self._require_current()
            indptr = self.indptr
            indices = np.empty(2 * self.m, dtype=np.int64)
            for v, nbrs in enumerate(self.graph._adj):
                indices[indptr[v]:indptr[v + 1]] = sorted(nbrs)
            self._indices = indices
        return self._indices

    def neighbors_array(self, v: int) -> np.ndarray:
        """``N(v)`` as a sorted array view into the CSR ``indices``."""
        self.graph._check_vertex(v)
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    # ------------------------------------------------------------------
    # connectivity (single BFS — never triggers the APSP)
    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        """One-component check from a single BFS (cached)."""
        if self._connected is None:
            if self._distances is not None:
                self._connected = bool(
                    np.all(self._distances != UNREACHABLE)
                )
            else:
                self._require_current()
                self._connected = is_connected(self.graph)
        return self._connected

    @property
    def components(self) -> list[list[int]]:
        """Connected components, each sorted, in order of smallest member."""
        if self._components is None:
            self._require_current()
            self._components = connected_components(self.graph)
            if self._connected is None:
                self._connected = len(self._components) <= 1
        return self._components

    @property
    def component_count(self) -> int:
        """Number of connected components."""
        return len(self.components)

    # ------------------------------------------------------------------
    # distances (the one-per-version APSP)
    # ------------------------------------------------------------------
    @property
    def distances(self) -> np.ndarray:
        """The full ``n x n`` distance matrix, computed on first access."""
        if self._distances is None:
            self._require_current()
            self._distances = all_pairs_distances(self.graph)
        return self._distances

    @property
    def eccentricities(self) -> np.ndarray:
        """Per-vertex eccentricity vector; raises when disconnected.

        The connectivity pre-check is a single BFS, so disconnected input
        fails before any APSP is spent.
        """
        if self._eccentricities is None:
            if not self.is_connected:
                raise DisconnectedGraphError(
                    "eccentricity undefined: graph is disconnected"
                )
            if self.n == 0:
                self._eccentricities = np.zeros(0, dtype=np.int64)
            else:
                self._eccentricities = self.distances.max(axis=1)
        return self._eccentricities

    @property
    def diameter(self) -> int:
        """``max_v ecc(v)``; 0 for at most one vertex, raises if disconnected."""
        if self.n <= 1:
            return 0
        return int(self.eccentricities.max())

    @property
    def radius(self) -> int:
        """``min_v ecc(v)``; 0 for at most one vertex, raises if disconnected."""
        if self.n <= 1:
            return 0
        return int(self.eccentricities.min())


def get_analysis(graph: Graph) -> GraphAnalysis:
    """The memoized :class:`GraphAnalysis` for the graph's current version.

    Returns the cached instance while the graph is unmutated; builds (and
    caches) a fresh one after any ``add_edge``/``remove_edge``/``add_vertex``.

    >>> from repro.graphs.generators import path_graph
    >>> g = path_graph(4)
    >>> get_analysis(g) is get_analysis(g)
    True
    >>> a = get_analysis(g); g.add_edge(0, 3)
    >>> get_analysis(g) is a
    False
    """
    cached = graph._analysis
    if cached is not None and cached.version == graph.version:
        return cached
    analysis = GraphAnalysis(graph)
    graph._analysis = analysis
    return analysis


def ensure_current(
    graph: Graph, analysis: GraphAnalysis | None
) -> GraphAnalysis:
    """Validate a forwarded analysis, or fetch the graph's memoized one.

    Entry points that accept an ``analysis=`` parameter route through this
    so a stale or foreign analysis can never silently feed a solve *and*
    its verification — the failure mode a shared matrix would otherwise
    make undetectable.
    """
    if analysis is None:
        return get_analysis(graph)
    if analysis.graph is not graph or not analysis.is_current():
        raise ValueError(
            "forwarded GraphAnalysis is stale or belongs to a different graph"
        )
    return analysis


def export_buffers(analysis: GraphAnalysis) -> dict[str, np.ndarray]:
    """The analysis's heavy arrays, keyed by field name, copy-free.

    ``distances`` (the ``n x n`` APSP matrix), plus the CSR adjacency pair
    ``indptr``/``indices`` — exactly the payload worth publishing into
    shared memory once per canonical graph instead of pickling per
    request.  Returns the live arrays (no copy); the caller treats them as
    read-only, same as every other consumer of the oracle.
    """
    return {
        "distances": analysis.distances,
        "indptr": analysis.indptr,
        "indices": analysis.indices,
    }


def adopt_buffers(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    distances: np.ndarray,
) -> Graph:
    """Rebuild a graph + seeded analysis from exported buffers, copy-free.

    The inverse of :func:`export_buffers` on the far side of a process
    boundary: the adjacency structure is reconstructed from the CSR pair,
    and the returned graph's memoized :class:`GraphAnalysis` holds the
    *given arrays themselves* — when they are views into a shared-memory
    segment, every downstream consumer (reduction, verify, refinement)
    reads the segment directly and the worker never materializes its own
    ``O(n^2)`` matrix.  The caller vouches for consistency between the
    CSR pair and the matrix; shapes are checked, content is trusted.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    distances = np.asarray(distances, dtype=np.int64)
    if indptr.shape != (n + 1,):
        raise ValueError(f"indptr shape {indptr.shape} does not match n={n}")
    if distances.shape != (n, n):
        raise ValueError(
            f"distance matrix shape {distances.shape} does not match n={n}"
        )
    edges = [
        (v, int(w))
        for v in range(n)
        for w in indices[indptr[v]:indptr[v + 1]]
        if v < w
    ]
    graph = Graph(n, edges)
    analysis = GraphAnalysis(graph)
    analysis._indptr = indptr
    analysis._indices = indices
    analysis._distances = distances
    graph._analysis = analysis
    return graph


def attach_distances(graph: Graph, distances: np.ndarray) -> GraphAnalysis:
    """Seed the graph's oracle with an externally derived distance matrix.

    For callers that *already know* the matrix — e.g. the batch service,
    whose canonical graph's distances are a permutation of the request
    graph's — this installs it so downstream layers (reduction, verify)
    never recompute.  The caller vouches for correctness; shape is checked,
    content is trusted.
    """
    distances = np.asarray(distances, dtype=np.int64)
    if distances.shape != (graph.n, graph.n):
        raise ValueError(
            f"distance matrix shape {distances.shape} does not match n={graph.n}"
        )
    analysis = GraphAnalysis(graph)
    analysis._distances = distances
    graph._analysis = analysis
    return analysis
