"""Plain-text graph serialization.

Two formats:

* **edge list** — first line ``n m``, then one ``u v`` pair per line.  The
  natural interchange format for the CLI and examples.
* **DIMACS-like** — ``c`` comment lines, one ``p edge n m`` problem line and
  ``e u v`` lines with 1-based vertices, as used by the coloring/labeling
  benchmark community the paper's experiments would target.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Iterator, TextIO

from repro.errors import GraphError
from repro.graphs.graph import Graph


def write_edge_list(graph: Graph, target: TextIO | str | Path) -> None:
    """Write ``n m`` then one edge per line."""
    own, fh = _open(target, "w")
    try:
        fh.write(f"{graph.n} {graph.m}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
    finally:
        if own:
            fh.close()


def read_edge_list(source: TextIO | str | Path) -> Graph:
    """Inverse of :func:`write_edge_list`."""
    own, fh = _open(source, "r")
    try:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphError(f"bad edge-list header: {header!r}")
        n, m = int(header[0]), int(header[1])
        g = Graph(n)
        for line in fh:
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 2:
                raise GraphError(f"bad edge line: {line!r}")
            g.add_edge(int(parts[0]), int(parts[1]))
        if g.m != m:
            raise GraphError(f"edge count mismatch: header says {m}, read {g.m}")
        return g
    finally:
        if own:
            fh.close()


def read_edge_list_stream(source: TextIO | str | Path) -> "Iterator[Graph]":
    """Yield graphs from concatenated edge-list blocks until EOF.

    The stream format is simply :func:`write_edge_list` outputs back to
    back: each block is one ``n m`` header followed by exactly ``m`` edge
    lines.  Blank lines between blocks are tolerated.  This is the CLI
    ``batch`` subcommand's stdin format, so many graphs can be piped through
    one process.
    """
    own, fh = _open(source, "r")
    try:
        while True:
            header = fh.readline()
            if not header:
                return
            parts = header.split()
            if not parts:
                continue
            if len(parts) != 2:
                raise GraphError(f"bad edge-list header: {header!r}")
            n, m = int(parts[0]), int(parts[1])
            g = Graph(n)
            read = 0
            while read < m:
                line = fh.readline()
                if not line:
                    raise GraphError(
                        f"stream truncated: header promised {m} edges, got {read}"
                    )
                edge = line.split()
                if not edge:
                    continue
                if len(edge) != 2:
                    raise GraphError(f"bad edge line: {line!r}")
                g.add_edge(int(edge[0]), int(edge[1]))
                read += 1
            if g.m != m:
                raise GraphError(
                    f"edge count mismatch: header says {m}, read {g.m}"
                )
            yield g
    finally:
        if own:
            fh.close()


def write_dimacs(graph: Graph, target: TextIO | str | Path, comment: str = "") -> None:
    """Write DIMACS ``p edge`` format (1-based vertices)."""
    own, fh = _open(target, "w")
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p edge {graph.n} {graph.m}\n")
        for u, v in graph.edges():
            fh.write(f"e {u + 1} {v + 1}\n")
    finally:
        if own:
            fh.close()


def read_dimacs(source: TextIO | str | Path) -> Graph:
    """Read DIMACS ``p edge`` format (1-based vertices)."""
    own, fh = _open(source, "r")
    try:
        g: Graph | None = None
        declared_m = 0
        for line in fh:
            parts = line.split()
            if not parts or parts[0] == "c":
                continue
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] not in ("edge", "edges", "col"):
                    raise GraphError(f"bad DIMACS problem line: {line!r}")
                g = Graph(int(parts[2]))
                declared_m = int(parts[3])
            elif parts[0] == "e":
                if g is None:
                    raise GraphError("DIMACS edge line before problem line")
                g.add_edge(int(parts[1]) - 1, int(parts[2]) - 1)
            else:
                raise GraphError(f"unrecognized DIMACS line: {line!r}")
        if g is None:
            raise GraphError("DIMACS input had no problem line")
        if g.m != declared_m:
            raise GraphError(
                f"edge count mismatch: problem line says {declared_m}, read {g.m}"
            )
        return g
    finally:
        if own:
            fh.close()


def to_edge_list_string(graph: Graph) -> str:
    """Edge-list serialization into a string (see :func:`write_edge_list`)."""
    buf = _io.StringIO()
    write_edge_list(graph, buf)
    return buf.getvalue()


def from_edge_list_string(text: str) -> Graph:
    """Parse a string produced by :func:`to_edge_list_string`."""
    return read_edge_list(_io.StringIO(text))


def _open(target: TextIO | str | Path, mode: str) -> tuple[bool, TextIO]:
    """Return ``(owns_handle, file)`` for a path or passthrough stream."""
    if isinstance(target, (str, Path)):
        return True, open(target, mode, encoding="utf-8")
    return False, target
