"""Structured graph families for richer small-diameter workloads.

Several classical families are *guaranteed* diameter-2 — exactly the regime
of Corollary 2 — with tunable structure:

* **Paley graphs** — self-complementary, strongly regular, diameter 2;
* **Turán graphs** — complete multipartite with balanced parts, diameter 2;
* **circulant graphs** — vertex-transitive with adjustable connection sets;
* **Kneser graphs** — e.g. Petersen = K(5, 2);
* **barbell / lollipop** — classic "hard for greedy" shapes (larger
  diameter; used as negative controls for the applicability checks).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.errors import GraphError
from repro.graphs.graph import Graph


def circulant_graph(n: int, connections: Sequence[int]) -> Graph:
    """Circulant ``C_n(S)``: ``i ~ j`` iff ``(i - j) mod n ∈ ±S``.

    >>> circulant_graph(5, [1]).m   # the 5-cycle
    5
    """
    if n < 1:
        raise GraphError(f"circulant needs n >= 1, got {n}")
    conns = sorted({c % n for c in connections if c % n != 0})
    if not conns and connections:
        raise GraphError("all connections reduce to 0 mod n")
    g = Graph(n)
    for v in range(n):
        for c in conns:
            u = (v + c) % n
            if u != v and not g.has_edge(v, u):
                g.add_edge(v, u)
    return g


def paley_graph(q: int) -> Graph:
    """Paley graph on ``q`` vertices (``q`` prime, ``q ≡ 1 mod 4``).

    Vertices are ``Z_q``; ``i ~ j`` iff ``i - j`` is a non-zero quadratic
    residue.  Self-complementary and strongly regular; diameter 2 for
    ``q >= 5``.
    """
    if q < 5:
        raise GraphError(f"paley graph needs q >= 5, got {q}")
    if q % 4 != 1:
        raise GraphError(f"paley graph needs q ≡ 1 (mod 4), got {q}")
    if not _is_prime(q):
        raise GraphError(f"paley graph implemented for prime q only, got {q}")
    residues = {(x * x) % q for x in range(1, q)}
    g = Graph(q)
    for i in range(q):
        for j in range(i + 1, q):
            if (i - j) % q in residues:
                g.add_edge(i, j)
    return g


def turan_graph(n: int, r: int) -> Graph:
    """Turán graph ``T(n, r)``: complete multipartite, parts as equal as possible."""
    if r < 1 or r > n:
        raise GraphError(f"turan needs 1 <= r <= n, got r={r}, n={n}")
    base, extra = divmod(n, r)
    sizes = [base + 1] * extra + [base] * (r - extra)
    from repro.graphs.generators import complete_multipartite_graph
    return complete_multipartite_graph(sizes)


def kneser_graph(n: int, k: int) -> Graph:
    """Kneser graph ``K(n, k)``: k-subsets of [n], adjacent iff disjoint.

    >>> from repro.graphs.generators import petersen_graph
    >>> kneser_graph(5, 2) == petersen_graph()   # up to labelling
    False
    >>> kneser_graph(5, 2).m
    15
    """
    if k < 1 or 2 * k > n:
        raise GraphError(f"kneser needs 1 <= k <= n/2, got n={n}, k={k}")
    subsets = [frozenset(c) for c in itertools.combinations(range(n), k)]
    g = Graph(len(subsets))
    for i in range(len(subsets)):
        for j in range(i + 1, len(subsets)):
            if not (subsets[i] & subsets[j]):
                g.add_edge(i, j)
    return g


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two ``K_clique``s joined by a ``bridge``-edge path."""
    if clique < 3:
        raise GraphError(f"barbell needs cliques >= 3, got {clique}")
    from repro.graphs.generators import complete_graph
    from repro.graphs.operations import disjoint_union

    g = disjoint_union(complete_graph(clique), complete_graph(clique))
    left_anchor, right_anchor = clique - 1, clique
    prev = left_anchor
    for _ in range(bridge):
        v = g.add_vertex()
        g.add_edge(prev, v)
        prev = v
    g.add_edge(prev, right_anchor)
    return g


def lollipop_graph(clique: int, tail: int) -> Graph:
    """A ``K_clique`` with a ``tail``-vertex path hanging off it."""
    if clique < 3:
        raise GraphError(f"lollipop needs clique >= 3, got {clique}")
    from repro.graphs.generators import complete_graph

    g = complete_graph(clique)
    prev = 0
    for _ in range(tail):
        v = g.add_vertex()
        g.add_edge(prev, v)
        prev = v
    return g


def _is_prime(x: int) -> bool:
    """Trial-division primality check (inputs are small)."""
    if x < 2:
        return False
    d = 2
    while d * d <= x:
        if x % d == 0:
            return False
        d += 1
    return True
