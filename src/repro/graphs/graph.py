"""Undirected simple graph on vertices ``0 .. n-1``.

The class is a thin, fast adjacency-set structure.  Vertices are always the
integers ``0..n-1``; generators and operations preserve this convention so
that distance matrices, DP tables and permutations can be plain NumPy arrays
indexed by vertex id (the hot paths in this library are all array-shaped).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from repro.errors import GraphError

#: How many :class:`Mutation` records a graph retains.  The dynamic layer
#: (:mod:`repro.dynamic`) only ever replays short gaps — one mutate-and-
#: resolve step, or a handful of edits on a session trial copy — so a
#: bounded window keeps edge-by-edge construction of large graphs O(1)
#: extra memory.  When a requested gap falls off the window,
#: :meth:`Graph.mutations_since` returns ``None`` and callers fall back to
#: a full recompute.
MUTATION_LOG_CAPACITY = 512


class Mutation(NamedTuple):
    """One structural change, recorded in :attr:`Graph.mutation_log`.

    ``version`` is the graph version *after* the change (versions bump by
    exactly one per mutation, so consecutive records have consecutive
    versions).  For ``add_vertex`` records, ``u`` is the new vertex id and
    ``v`` is ``-1``.
    """

    version: int
    op: str          # "add_edge" | "remove_edge" | "add_vertex"
    u: int
    v: int


class Graph:
    """An undirected simple graph with integer vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        duplicate edges are silently coalesced (the structure is a simple
        graph).

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.n, g.m
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_n",
        "_adj",
        "_m",
        "_version",
        "_analysis",
        "_mutation_log",
        "_eu",
        "_ev",
        "_csr",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        """Build a graph on ``n`` vertices with an optional edge iterable."""
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._n = int(n)
        self._adj: list[set[int]] = [set() for _ in range(self._n)]
        self._m = 0
        self._version = 0
        self._analysis = None     # memoized GraphAnalysis (see graphs.analysis)
        self._mutation_log: deque[Mutation] = deque(maxlen=MUTATION_LOG_CAPACITY)
        # numpy edge arrays: slot i holds edge (eu[i], ev[i]) with eu < ev.
        # Capacity-doubled on append; only the first _m slots are live.  The
        # CSR form is derived from these (never from the python sets), so
        # the array-shaped hot paths — adjacency matrices, frontier
        # expansion, degree stats — stay off python dict iteration.
        self._eu = np.empty(8, dtype=np.int32)
        self._ev = np.empty(8, dtype=np.int32)
        self._csr: tuple[int, np.ndarray, np.ndarray] | None = None
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph whose vertex count is ``1 + max vertex id`` seen.

        >>> Graph.from_edges([(0, 2)]).n
        3
        """
        edge_list = [(int(u), int(v)) for u, v in edges]
        n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list)

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray) -> "Graph":
        """Build a graph from a square boolean/0-1 adjacency matrix."""
        a = np.asarray(matrix)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {a.shape}")
        if not np.array_equal(a, a.T):
            raise GraphError("adjacency matrix must be symmetric")
        if np.any(np.diagonal(a)):
            raise GraphError("adjacency matrix must have zero diagonal")
        us, vs = np.nonzero(np.triu(a, k=1))
        return cls(a.shape[0], zip(us.tolist(), vs.tolist()))

    def copy(self) -> "Graph":
        """A deep, independent copy of the graph.

        The copy carries over :attr:`version` and the mutation log (it is
        the same structural snapshot), but starts with a **cold** analysis
        oracle — memoization is per instance.  Version continuity is what
        lets the dynamic layer repair an ancestor's distance matrix across
        a copy-then-mutate step (see :mod:`repro.dynamic`).
        """
        g = Graph(self._n)
        g._adj = [set(s) for s in self._adj]
        g._m = self._m
        g._version = self._version
        g._mutation_log = self._mutation_log.copy()
        g._eu = self._eu[: self._m].copy()
        g._ev = self._ev[: self._m].copy()
        return g

    # ------------------------------------------------------------------
    # mutation (builder phase)
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; duplicates are no-ops, loops are errors."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            a, b = (u, v) if u < v else (v, u)
            if self._m == len(self._eu):
                cap = max(8, 2 * len(self._eu))
                self._eu = np.resize(self._eu, cap)
                self._ev = np.resize(self._ev, cap)
            self._eu[self._m] = a
            self._ev[self._m] = b
            self._m += 1
            self._version += 1
            self._mutation_log.append(Mutation(self._version, "add_edge", a, b))

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises if it is absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        a, b = (u, v) if u < v else (v, u)
        m = self._m
        pos = int(np.nonzero((self._eu[:m] == a) & (self._ev[:m] == b))[0][0])
        # swap-delete: edge-array slot order carries no meaning
        self._eu[pos] = self._eu[m - 1]
        self._ev[pos] = self._ev[m - 1]
        self._m = m - 1
        self._version += 1
        self._mutation_log.append(Mutation(self._version, "remove_edge", a, b))

    def add_vertex(self) -> int:
        """Append an isolated vertex and return its id."""
        self._adj.append(set())
        self._n += 1
        self._version += 1
        self._mutation_log.append(
            Mutation(self._version, "add_vertex", self._n - 1, -1)
        )
        return self._n - 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every structural change.

        :func:`repro.graphs.analysis.get_analysis` memoizes derived data
        (APSP, eccentricities, components) against this counter, so a stale
        analysis can never be served after an ``add_edge``/``remove_edge``.
        """
        return self._version

    @property
    def mutation_log(self) -> tuple[Mutation, ...]:
        """The retained window of structural changes, oldest first.

        Bounded by :data:`MUTATION_LOG_CAPACITY`; each record's ``version``
        is the graph version *after* that change.  The dynamic layer keys
        incremental distance-matrix repair to this log.
        """
        return tuple(self._mutation_log)

    def mutations_since(self, version: int) -> tuple[Mutation, ...] | None:
        """Every mutation after ``version``, or ``None`` if out of window.

        Returns the (possibly empty) run of records with
        ``record.version > version`` when the log still covers the whole
        gap ``version+1 .. self.version``; returns ``None`` when the
        oldest needed record has been trimmed (callers must then fall back
        to a full recompute) or when ``version`` is ahead of this graph.

        >>> g = Graph(3)
        >>> v0 = g.version
        >>> g.add_edge(0, 1); g.add_edge(1, 2)
        >>> [m.op for m in g.mutations_since(v0)]
        ['add_edge', 'add_edge']
        """
        if version > self._version:
            return None
        gap = self._version - version
        if gap == 0:
            return ()
        log = self._mutation_log
        # records are consecutive (every bump is logged), so the window
        # covers the gap iff it holds at least `gap` records
        if gap > len(log):
            return None
        if gap == 1:  # the mutate-and-resolve hot path
            return (log[-1],)
        return tuple(itertools.islice(log, len(log) - gap, None))

    def vertices(self) -> range:
        """The vertex ids ``0..n-1``."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def neighbors(self, v: int) -> frozenset[int]:
        """The open neighbourhood ``N(v)`` as an immutable set."""
        self._check_vertex(v)
        return frozenset(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def degrees(self) -> list[int]:
        """Degree of every vertex, indexed by vertex id."""
        m = self._m
        counts = np.bincount(self._eu[:m], minlength=self._n)
        counts += np.bincount(self._ev[:m], minlength=self._n)
        return counts.tolist()

    def max_degree(self) -> int:
        """The maximum degree Δ (0 for the empty graph)."""
        return max((len(s) for s in self._adj), default=0)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each edge once, as ``(u, v)`` with ``u < v``, sorted."""
        for u in range(self._n):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The live edge slots as two read-only ``int32`` arrays.

        Slot ``i`` holds edge ``(eu[i], ev[i])`` with ``eu[i] < ev[i]``;
        slot order is arbitrary (removals swap-delete).  The views alias
        the graph's internal storage — treat them as a snapshot valid only
        until the next mutation.
        """
        eu = self._eu[: self._m]
        ev = self._ev[: self._m]
        eu.flags.writeable = False
        ev.flags.writeable = False
        return eu, ev

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, indices)``, cached per graph version.

        ``indices[indptr[v]:indptr[v + 1]]`` is the sorted neighbourhood of
        ``v``.  Built vectorized from the edge arrays (bincount + lexsort),
        so no python-level adjacency iteration happens on the hot path; the
        cache key is :attr:`version`, so a mutation can never serve a stale
        structure.  Both arrays are read-only ``int64``.
        """
        cached = self._csr
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        m = self._m
        heads = np.concatenate((self._eu[:m], self._ev[:m])).astype(np.int64)
        tails = np.concatenate((self._ev[:m], self._eu[:m])).astype(np.int64)
        deg = np.bincount(heads, minlength=self._n)
        indptr = np.concatenate(([0], np.cumsum(deg)))
        order = np.lexsort((tails, heads))
        indices = tails[order]
        indptr.flags.writeable = False
        indices.flags.writeable = False
        self._csr = (self._version, indptr, indices)
        return indptr, indices

    def adjacency_matrix(self, dtype=np.bool_) -> np.ndarray:
        """Dense ``n x n`` adjacency matrix."""
        a = np.zeros((self._n, self._n), dtype=dtype)
        m = self._m
        if m:
            eu, ev = self._eu[:m], self._ev[:m]
            a[eu, ev] = 1
            a[ev, eu] = 1
        return a

    def adjacency_sets(self) -> list[frozenset[int]]:
        """Immutable snapshot of the adjacency structure."""
        return [frozenset(s) for s in self._adj]

    def density(self) -> float:
        """Edge density ``m / C(n, 2)`` (0.0 for graphs with < 2 vertices)."""
        if self._n < 2:
            return 0.0
        return 2.0 * self._m / (self._n * (self._n - 1))

    def is_complete(self) -> bool:
        """True iff every vertex pair is adjacent."""
        return self._m == self._n * (self._n - 1) // 2

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex count and edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:  # content hash; graphs are small in practice
        """Content hash of the adjacency structure."""
        return hash((self._n, tuple(tuple(sorted(s)) for s in self._adj)))

    def __repr__(self) -> str:
        """Compact ``Graph(n=..., m=...)`` form."""
        return f"Graph(n={self._n}, m={self._m})"

    def __len__(self) -> int:
        """Vertex count."""
        return self._n

    def __contains__(self, v: int) -> bool:
        """Whether ``v`` is a valid vertex id."""
        return 0 <= v < self._n

    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        """Raise :class:`GraphError` unless ``v`` is in range."""
        if not (0 <= v < self._n):
            raise GraphError(f"vertex {v} out of range [0, {self._n})")
