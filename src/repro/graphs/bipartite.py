"""Maximum bipartite matching (Hopcroft–Karp).

Substrate for the Chang–Kuo tree algorithm in :mod:`repro.labeling.trees`:
deciding whether a tree admits an ``L(2,1)``-labeling of span ``Δ + 1``
reduces to a sequence of bipartite matching feasibility questions (children
of a vertex vs. available labels).

Implemented over explicit adjacency lists, ``O(E sqrt(V))``.
"""

from __future__ import annotations

from collections import deque

INF = float("inf")


def hopcroft_karp(
    n_left: int, n_right: int, edges: list[tuple[int, int]]
) -> tuple[int, list[int]]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two sides; vertices are ``0..n_left-1`` and
        ``0..n_right-1`` in their own numberings.
    edges:
        ``(u, v)`` pairs with ``u`` on the left, ``v`` on the right.

    Returns
    -------
    ``(size, match_left)`` where ``match_left[u]`` is the right-vertex
    matched to ``u`` or ``-1``.

    >>> hopcroft_karp(2, 2, [(0, 0), (0, 1), (1, 0)])[0]
    2
    """
    adj: list[list[int]] = [[] for _ in range(n_left)]
    for u, v in edges:
        adj[u].append(v)

    match_l = [-1] * n_left
    match_r = [-1] * n_right
    dist = [0.0] * n_left

    def bfs() -> bool:
        """Layer the free left vertices; True while augmenting paths exist."""
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        """Try to extend an augmenting path from left vertex ``u``."""
        for v in adj[u]:
            w = match_r[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    size = 0
    while bfs():
        for u in range(n_left):
            if match_l[u] == -1 and dfs(u):
                size += 1
    return size, match_l


def has_perfect_left_matching(
    n_left: int, n_right: int, edges: list[tuple[int, int]]
) -> bool:
    """True iff every left vertex can be matched."""
    size, _ = hopcroft_karp(n_left, n_right, edges)
    return size == n_left
