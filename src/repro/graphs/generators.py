"""Graph generators for workloads, tests and the paper's examples.

Families relevant to the paper:

* paths / cycles / wheels / complete graphs — the classes whose ``L(2,1)``
  spans have closed forms (used as exactness oracles),
* diameter-bounded random graphs — the instances Theorem 2 applies to,
* cographs / cluster graphs / complete multipartite — small modular-width
  families for the Corollary 2 / Theorem 4 experiments,
* random geometric graphs — the radio-network motivation of the introduction.

All random generators take an explicit ``rng`` (``numpy.random.Generator``)
or ``seed``; nothing reads global random state, so every workload is
reproducible from its parameters.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import diameter, is_connected


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or pass through a Generator) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# deterministic families
# ---------------------------------------------------------------------------
def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices."""
    return Graph(n)


def complete_graph(n: int) -> Graph:
    """``K_n``."""
    return Graph(n, itertools.combinations(range(n), 2))


def path_graph(n: int) -> Graph:
    """``P_n``: vertices ``0..n-1`` in a line."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n_leaves: int) -> Graph:
    """``K_{1,n}``: centre 0 plus ``n_leaves`` leaves."""
    return Graph(n_leaves + 1, ((0, i) for i in range(1, n_leaves + 1)))


def wheel_graph(n_rim: int) -> Graph:
    """Wheel ``W_n``: a hub (vertex 0) joined to an ``n_rim``-cycle."""
    if n_rim < 3:
        raise GraphError(f"wheel needs rim >= 3, got {n_rim}")
    g = Graph(n_rim + 1)
    for i in range(n_rim):
        g.add_edge(0, 1 + i)
        g.add_edge(1 + i, 1 + (i + 1) % n_rim)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    return Graph(a + b, ((u, a + v) for u in range(a) for v in range(b)))


def complete_multipartite_graph(part_sizes: Sequence[int]) -> Graph:
    """Complete multipartite graph with the given part sizes."""
    if any(s < 0 for s in part_sizes):
        raise GraphError("part sizes must be non-negative")
    offsets = np.concatenate([[0], np.cumsum(part_sizes)])
    n = int(offsets[-1])
    g = Graph(n)
    for i in range(len(part_sizes)):
        for j in range(i + 1, len(part_sizes)):
            for u in range(offsets[i], offsets[i + 1]):
                for v in range(offsets[j], offsets[j + 1]):
                    g.add_edge(int(u), int(v))
    return g


def cluster_graph(clique_sizes: Sequence[int]) -> Graph:
    """Disjoint union of cliques (a "cluster graph")."""
    g = Graph(int(sum(clique_sizes)))
    offset = 0
    for s in clique_sizes:
        for u in range(offset, offset + s):
            for v in range(u + 1, offset + s):
                g.add_edge(u, v)
        offset += s
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` king-less grid (4-neighbour lattice)."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def hypercube_graph(d: int) -> Graph:
    """The ``d``-dimensional hypercube ``Q_d``."""
    n = 1 << d
    g = Graph(n)
    for v in range(n):
        for bit in range(d):
            u = v ^ (1 << bit)
            if v < u:
                g.add_edge(v, u)
    return g


def petersen_graph() -> Graph:
    """The Petersen graph (10 vertices, diameter 2) — a classic test case."""
    g = Graph(10)
    for i in range(5):
        g.add_edge(i, (i + 1) % 5)          # outer 5-cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5)  # inner pentagram
        g.add_edge(i, 5 + i)                # spokes
    return g


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A path of length ``spine`` with ``legs_per_vertex`` leaves per spine node."""
    g = path_graph(spine)
    for v in range(spine):
        for _ in range(legs_per_vertex):
            w = g.add_vertex()
            g.add_edge(v, w)
    return g


# ---------------------------------------------------------------------------
# random families
# ---------------------------------------------------------------------------
def random_gnp(n: int, p: float, seed: int | np.random.Generator | None = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``."""
    if not (0.0 <= p <= 1.0):
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = Graph(n)
    if n >= 2 and p > 0:
        upper = np.triu_indices(n, k=1)
        mask = rng.random(len(upper[0])) < p
        for u, v in zip(upper[0][mask].tolist(), upper[1][mask].tolist()):
            g.add_edge(u, v)
    return g


def random_connected_gnp(
    n: int,
    p: float,
    seed: int | np.random.Generator | None = None,
    max_tries: int = 200,
) -> Graph:
    """``G(n, p)`` conditioned on connectivity (retry, then spanning-tree patch).

    If ``max_tries`` samples all come out disconnected, the last sample is
    patched with a random spanning tree, which preserves the family's flavour
    while guaranteeing termination.
    """
    rng = _rng(seed)
    g = Graph(0)
    for _ in range(max_tries):
        g = random_gnp(n, p, rng)
        if is_connected(g):
            return g
    tree = random_tree(n, rng)
    for u, v in tree.edges():
        g.add_edge(u, v)
    return g


def random_tree(n: int, seed: int | np.random.Generator | None = None) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    if n <= 0:
        raise GraphError(f"tree needs n >= 1, got {n}")
    if n == 1:
        return Graph(1)
    if n == 2:
        return Graph(2, [(0, 1)])
    rng = _rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    return tree_from_prufer(prufer.tolist())


def tree_from_prufer(prufer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into its labelled tree."""
    n = len(prufer) + 2
    degree = np.ones(n, dtype=np.int64)
    for v in prufer:
        if not (0 <= v < n):
            raise GraphError(f"prufer symbol {v} out of range for n={n}")
        degree[v] += 1
    g = Graph(n)
    # classic decoding: repeatedly match the smallest leaf with the next symbol
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, int(v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, int(v))
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    g.add_edge(u, w)
    return g


def random_graph_with_diameter_at_most(
    n: int,
    k: int,
    seed: int | np.random.Generator | None = None,
    max_tries: int = 400,
) -> Graph:
    """A connected random graph with ``diam(G) <= k`` (and ``>= 2`` for n >= 3).

    The sampler walks an edge-probability schedule from sparse to dense and
    returns the first draw meeting the bound; as a last resort it returns a
    graph that provably satisfies it (universal-vertex augmentation for
    ``k >= 2``).  Instances Theorem 2 accepts are exactly these.
    """
    if k < 1:
        raise GraphError(f"diameter bound must be >= 1, got {k}")
    rng = _rng(seed)
    if n <= 2 or k == 1:
        return complete_graph(n)
    schedule = np.linspace(min(1.0, 2.2 * np.log(max(n, 2)) / n), 1.0, num=12)
    tries_per_p = max(1, max_tries // len(schedule))
    for p in schedule:
        for _ in range(tries_per_p):
            g = random_gnp(n, float(p), rng)
            if is_connected(g) and diameter(g) <= k:
                return g
    # guaranteed fallback: hub + random extra edges has diameter <= 2 <= k
    g = star_graph(n - 1)
    extra = random_gnp(n, 0.3, rng)
    for u, v in extra.edges():
        g.add_edge(u, v)
    return g


def random_diameter2_graph(
    n: int, density: float = 0.5, seed: int | np.random.Generator | None = None
) -> Graph:
    """A random graph with diameter exactly <= 2 (Corollary 2 instances)."""
    return random_graph_with_diameter_at_most(n, 2, seed=_rng(seed))


def random_geometric_graph(
    n: int,
    radius: float,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
    max_tries: int = 100,
) -> tuple[Graph, np.ndarray]:
    """Unit-square random geometric graph; returns ``(graph, positions)``.

    This is the radio-network workload from the paper's motivation: vertices
    are transmitters, edges join transmitters within interference range.
    """
    rng = _rng(seed)
    for _ in range(max_tries):
        pos = rng.random((n, 2))
        diff = pos[:, None, :] - pos[None, :, :]
        close = (diff**2).sum(axis=2) <= radius * radius
        np.fill_diagonal(close, False)
        g = Graph.from_adjacency_matrix(close)
        if not ensure_connected or is_connected(g):
            return g, pos
    # densify: connect each vertex to its nearest neighbour to force connectivity
    d2 = (diff**2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    for v in range(n):
        g2 = int(np.argmin(d2[v]))
        if not g.has_edge(v, g2):
            g.add_edge(v, g2)
    return g, pos


def random_split_graph(
    n_clique: int, n_independent: int, p: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """A split graph: a clique, an independent set, random edges between."""
    rng = _rng(seed)
    n = n_clique + n_independent
    g = Graph(n)
    for u in range(n_clique):
        for v in range(u + 1, n_clique):
            g.add_edge(u, v)
    for u in range(n_clique):
        for v in range(n_clique, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_regular_ish_graph(
    n: int, d: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """An approximately ``d``-regular graph via a configuration-model sweep.

    Multi-edges/loops produced by the pairing are dropped, so a few vertices
    may fall short of degree ``d`` — fine for workload purposes.
    """
    if d >= n:
        raise GraphError(f"degree {d} must be < n={n}")
    rng = _rng(seed)
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    g = Graph(n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def paper_figure1_graph() -> Graph:
    """The 5-vertex, diameter-3 example of Figure 1.

    Vertices ``a..e`` are mapped to ``0..4``.  Edges: a-b, b-c, c-e, e-d
    (a 4-path with a chord pattern giving the distances used in the figure)
    plus a-c.  The figure's weight pattern on H uses distances
    1 (p1), 2 (p2) and 3 (p3); this graph realizes exactly that: it is the
    5-cycle-free "C" shape with diam = 3.
    """
    # a=0, b=1, c=2, d=3, e=4 — path a-b-c-e-d plus chord a-c: diam(a..d)=3
    return Graph(5, [(0, 1), (1, 2), (2, 4), (4, 3), (0, 2)])


def paper_figure2_graph() -> Graph:
    """The 9-vertex diameter-2 example of Figure 2 (vertices v1..v9 → 0..8).

    The figure needs a diameter-2 graph in which the permutation
    ``v1..v9`` decomposes into runs P1=(v1,v2,v3), P2=(v4), P3=(v5,v6),
    P4=(v7,v8), P5=(v9): consecutive pairs *inside* runs are edges of G,
    pairs *between* runs are non-edges.  We realize one such graph by taking
    those run edges and adding a dominating vertex pattern that keeps the
    diameter at 2 without joining any consecutive inter-run pair.
    """
    forbidden = {(2, 3), (3, 4), (5, 6), (7, 8)}  # consecutive inter-run pairs
    g = Graph(9)
    for u in range(9):
        for v in range(u + 1, 9):
            if (u, v) not in forbidden:
                g.add_edge(u, v)
    return g
