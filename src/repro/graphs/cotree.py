"""Cotrees and cographs.

Cographs (graphs of clique-width at most 2, built from single vertices by
disjoint union and join) show up in the paper as a tractable class for
``L(2,1)``-labeling and as the base case of modular decomposition.  We model
them with explicit cotrees so that workloads can generate cographs with known
structure and tests can verify modular-width behaviour (a non-trivial cograph
has modular-width 2 by convention ``mw <= 2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operations import disjoint_union, join


@dataclass(frozen=True)
class Cotree:
    """A cotree node: a leaf, or a union/join over children.

    ``kind`` is ``"leaf"``, ``"union"`` or ``"join"``.  Leaves carry no
    children; internal nodes need at least two.
    """

    kind: Literal["leaf", "union", "join"]
    children: tuple["Cotree", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        """Validate the leaf/internal shape invariants."""
        if self.kind == "leaf":
            if self.children:
                raise GraphError("cotree leaf cannot have children")
        else:
            if len(self.children) < 2:
                raise GraphError(f"cotree {self.kind} node needs >= 2 children")

    @property
    def n_leaves(self) -> int:
        """Number of leaves (= vertices of the represented cograph)."""
        if self.kind == "leaf":
            return 1
        return sum(c.n_leaves for c in self.children)

    def to_graph(self) -> Graph:
        """Evaluate the cotree into the cograph it denotes."""
        if self.kind == "leaf":
            return Graph(1)
        graphs = [c.to_graph() for c in self.children]
        acc = graphs[0]
        for g in graphs[1:]:
            acc = disjoint_union(acc, g) if self.kind == "union" else join(acc, g)
        return acc


def leaf() -> Cotree:
    """A single-vertex cotree leaf."""
    return Cotree("leaf")


def union_node(*children: Cotree) -> Cotree:
    """A disjoint-union cotree node over the given children."""
    return Cotree("union", tuple(children))


def join_node(*children: Cotree) -> Cotree:
    """A join cotree node over the given children."""
    return Cotree("join", tuple(children))


def random_cotree(
    n_leaves: int, seed: int | np.random.Generator | None = None, join_bias: float = 0.6
) -> Cotree:
    """A random cotree with ``n_leaves`` leaves.

    ``join_bias`` is the probability an internal node is a join; biasing
    toward joins keeps the resulting cographs connected and small-diameter,
    which is the regime the paper's reduction targets.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if n_leaves < 1:
        raise GraphError("cotree needs at least one leaf")
    if n_leaves == 1:
        return leaf()
    # split leaves into 2..min(4, n) groups and recurse
    n_groups = int(rng.integers(2, min(4, n_leaves) + 1))
    cuts = np.sort(rng.choice(np.arange(1, n_leaves), size=n_groups - 1, replace=False))
    sizes = np.diff(np.concatenate([[0], cuts, [n_leaves]]))
    children = tuple(random_cotree(int(s), rng, join_bias) for s in sizes)
    kind = "join" if rng.random() < join_bias else "union"
    return Cotree(kind, children)


def random_cograph(
    n: int, seed: int | np.random.Generator | None = None, join_bias: float = 0.6
) -> Graph:
    """A random ``n``-vertex cograph (evaluated random cotree)."""
    return random_cotree(n, seed, join_bias).to_graph()


def random_connected_cograph(
    n: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """A random connected cograph: force the root to be a join node."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if n == 1:
        return Graph(1)
    split = int(rng.integers(1, n))
    left = random_cotree(split, rng)
    right = random_cotree(n - split, rng)
    return join_node(left, right).to_graph()


def is_cograph(graph: Graph) -> bool:
    """Cograph recognition: no induced ``P_4``.

    Uses the characterization that ``G`` is a cograph iff every induced
    subgraph on >= 2 vertices is disconnected or has disconnected complement
    (checked recursively by splitting on components / co-components).  Runs in
    polynomial time; fine for test-scale graphs.
    """
    from repro.graphs.operations import complement, induced_subgraph
    from repro.graphs.traversal import connected_components

    def rec(g: Graph) -> bool:
        """Recursively check that every induced quotient is union/join."""
        if g.n <= 2:
            return True
        comps = connected_components(g)
        if len(comps) > 1:
            return all(rec(induced_subgraph(g, c)) for c in comps)
        co_comps = connected_components(complement(g))
        if len(co_comps) > 1:
            return all(rec(induced_subgraph(g, c)) for c in co_comps)
        return False  # connected with connected complement => contains a P4

    return rec(graph)
