"""Graph operations used throughout the paper's constructions.

``complement`` and ``graph_power`` are load-bearing: Corollary 2 solves
``L(p,q)`` with ``p > q`` via PARTITION INTO PATHS on the complement, and
Theorem 4 solves ``L(1,...,1)`` via COLORING on ``G^k``.  ``add_universal_vertex``
and ``add_false_twin`` are the gadget moves of Theorems 1 and 3.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph


def complement(graph: Graph) -> Graph:
    """The complement graph: same vertices, exactly the missing edges.

    >>> from repro.graphs.generators import path_graph
    >>> complement(path_graph(3)).m   # P3 has 2 of the 3 possible edges
    1
    """
    g = Graph(graph.n)
    adj = graph.adjacency_sets()
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if v not in adj[u]:
                g.add_edge(u, v)
    return g


def graph_power(graph: Graph, k: int) -> Graph:
    """The ``k``-th power ``G^k``: join vertices at distance ``1..k``.

    Pairs in different components stay non-adjacent (their distance is
    infinite).  ``k >= 1`` is required.
    """
    if k < 1:
        raise GraphError(f"graph power requires k >= 1, got {k}")
    dist = get_analysis(graph).distances
    within = (dist >= 1) & (dist <= k)
    return Graph.from_adjacency_matrix(within)


def disjoint_union(a: Graph, b: Graph) -> Graph:
    """Disjoint union; vertices of ``b`` are shifted by ``a.n``."""
    g = Graph(a.n + b.n)
    for u, v in a.edges():
        g.add_edge(u, v)
    for u, v in b.edges():
        g.add_edge(u + a.n, v + a.n)
    return g


def join(a: Graph, b: Graph) -> Graph:
    """Graph join: disjoint union plus every edge between the two sides."""
    g = disjoint_union(a, b)
    for u in range(a.n):
        for v in range(b.n):
            g.add_edge(u, a.n + v)
    return g


def induced_subgraph(graph: Graph, vertices: Sequence[int]) -> Graph:
    """``G[S]`` with vertices renumbered ``0..len(S)-1`` in the given order.

    Raises on duplicate vertices.
    """
    order = list(vertices)
    if len(set(order)) != len(order):
        raise GraphError("induced_subgraph: duplicate vertices in selection")
    index = {v: i for i, v in enumerate(order)}
    g = Graph(len(order))
    adj = graph.adjacency_sets()
    for v in order:
        graph._check_vertex(v)
    for i, v in enumerate(order):
        for w in adj[v]:
            j = index.get(w)
            if j is not None and i < j:
                g.add_edge(i, j)
    return g


def relabel(graph: Graph, permutation: Sequence[int]) -> Graph:
    """Apply a vertex permutation: new id of vertex ``v`` is ``permutation[v]``."""
    perm = list(permutation)
    if sorted(perm) != list(range(graph.n)):
        raise GraphError("relabel: not a permutation of the vertex set")
    g = Graph(graph.n)
    for u, v in graph.edges():
        g.add_edge(perm[u], perm[v])
    return g


def add_universal_vertex(graph: Graph) -> tuple[Graph, int]:
    """Return ``(G + x, x)`` where ``x`` is adjacent to every old vertex.

    This is the second step of the Griggs–Yeh construction used in Theorem 3.
    """
    g = graph.copy()
    x = g.add_vertex()
    for v in range(graph.n):
        g.add_edge(v, x)
    return g, x


def add_false_twin(graph: Graph, v: int) -> tuple[Graph, int]:
    """Return ``(G', v')`` where ``v'`` is a new non-adjacent twin of ``v``.

    ``v'`` gets exactly the neighbourhood ``N(v)``; the Theorem 1 gadget uses
    this to split a Hamiltonian cycle through ``v`` into a path.
    """
    graph._check_vertex(v)
    g = graph.copy()
    twin = g.add_vertex()
    for w in graph.neighbors(v):
        g.add_edge(twin, w)
    return g, twin


def add_leaf(graph: Graph, v: int) -> tuple[Graph, int]:
    """Return ``(G', w)`` with a fresh degree-1 vertex ``w`` attached to ``v``."""
    graph._check_vertex(v)
    g = graph.copy()
    w = g.add_vertex()
    g.add_edge(v, w)
    return g, w


def edge_subdivision(graph: Graph, u: int, v: int) -> Graph:
    """Replace edge ``{u, v}`` by a length-2 path through a new vertex."""
    if not graph.has_edge(u, v):
        raise GraphError(f"edge ({u}, {v}) not present")
    g = graph.copy()
    g.remove_edge(u, v)
    w = g.add_vertex()
    g.add_edge(u, w)
    g.add_edge(w, v)
    return g


def is_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff the given vertices are pairwise adjacent."""
    vs = list(vertices)
    adj = graph.adjacency_sets()
    return all(vs[j] in adj[vs[i]] for i in range(len(vs)) for j in range(i + 1, len(vs)))


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff the given vertices are pairwise non-adjacent."""
    vs = list(vertices)
    adj = graph.adjacency_sets()
    return all(
        vs[j] not in adj[vs[i]] for i in range(len(vs)) for j in range(i + 1, len(vs))
    )


def degree_histogram(graph: Graph) -> np.ndarray:
    """``h[d]`` = number of vertices of degree ``d`` (length ``max_degree+1``)."""
    degs = graph.degrees()
    h = np.zeros(max(degs, default=0) + 1, dtype=np.int64)
    for d in degs:
        h[d] += 1
    return h
