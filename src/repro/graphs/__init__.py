"""Graph substrate: data structure, traversal, generators, operations, IO.

Everything in this subpackage is written from scratch on top of the standard
library and NumPy; ``networkx`` is used only in the test-suite as an oracle.
"""

from repro.graphs.graph import Graph
from repro.graphs.analysis import GraphAnalysis, get_analysis
from repro.graphs.traversal import (
    bfs_distances,
    all_pairs_distances,
    all_pairs_distances_reference,
    connected_components,
    is_connected,
    eccentricity,
    eccentricities,
    diameter,
    radius,
)
from repro.graphs.operations import (
    complement,
    graph_power,
    disjoint_union,
    join,
    induced_subgraph,
    add_universal_vertex,
    add_false_twin,
    relabel,
)
from repro.graphs import generators
from repro.graphs import io

__all__ = [
    "Graph",
    "GraphAnalysis",
    "get_analysis",
    "bfs_distances",
    "all_pairs_distances",
    "all_pairs_distances_reference",
    "connected_components",
    "is_connected",
    "eccentricity",
    "eccentricities",
    "diameter",
    "radius",
    "complement",
    "graph_power",
    "disjoint_union",
    "join",
    "induced_subgraph",
    "add_universal_vertex",
    "add_false_twin",
    "relabel",
    "generators",
    "io",
]
