"""Breadth-first traversal, distances, connectivity, diameter.

The all-pairs routine is the substrate for the Theorem-2 reduction: the paper
builds the distance matrix of ``G`` by one BFS per vertex, i.e. ``O(nm)``
total.  We keep exactly that algorithm (it is optimal for unweighted graphs)
but run each BFS over adjacency sets and store rows in a pre-allocated NumPy
matrix so the reduction's hot loop stays array-shaped.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph

#: Sentinel distance for unreachable vertex pairs.
UNREACHABLE: int = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Distances from ``source`` to every vertex (``UNREACHABLE`` if none).

    Runs in ``O(n + m)`` time.

    >>> from repro.graphs.generators import path_graph
    >>> bfs_distances(path_graph(4), 0).tolist()
    [0, 1, 2, 3]
    """
    graph._check_vertex(source)
    dist = np.full(graph.n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    adj = graph._adj  # intentional: hot loop, avoid frozenset copies
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(v)
    return dist


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """The full ``n x n`` distance matrix, one BFS per vertex (``O(nm)``).

    Unreachable pairs hold ``UNREACHABLE``.
    """
    n = graph.n
    dist = np.empty((n, n), dtype=np.int64)
    for s in range(n):
        dist[s] = bfs_distances(graph, s)
    return dist


def connected_components(graph: Graph) -> list[list[int]]:
    """Vertex lists of the connected components, each sorted, in id order."""
    seen = np.zeros(graph.n, dtype=bool)
    components: list[list[int]] = []
    for s in range(graph.n):
        if seen[s]:
            continue
        dist = bfs_distances(graph, s)
        members = np.nonzero(dist != UNREACHABLE)[0]
        seen[members] = True
        components.append(members.tolist())
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has one component (empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return bool(np.all(bfs_distances(graph, 0) != UNREACHABLE))


def eccentricity(graph: Graph, v: int) -> int:
    """Largest distance from ``v``; raises on disconnected graphs."""
    dist = bfs_distances(graph, v)
    if np.any(dist == UNREACHABLE):
        raise DisconnectedGraphError("eccentricity undefined: graph is disconnected")
    return int(dist.max())


def diameter(graph: Graph) -> int:
    """``max_{u,v} dist(u, v)``; 0 for graphs with at most one vertex.

    Raises :class:`DisconnectedGraphError` on disconnected input, matching the
    paper's standing assumption that ``G`` is connected.
    """
    if graph.n <= 1:
        return 0
    dist = all_pairs_distances(graph)
    if np.any(dist == UNREACHABLE):
        raise DisconnectedGraphError("diameter undefined: graph is disconnected")
    return int(dist.max())


def radius(graph: Graph) -> int:
    """``min_v ecc(v)``; 0 for graphs with at most one vertex."""
    if graph.n <= 1:
        return 0
    dist = all_pairs_distances(graph)
    if np.any(dist == UNREACHABLE):
        raise DisconnectedGraphError("radius undefined: graph is disconnected")
    return int(dist.max(axis=1).min())
