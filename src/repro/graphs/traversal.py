"""Breadth-first traversal, distances, connectivity, diameter.

The all-pairs routine is the substrate for the Theorem-2 reduction.  It used
to run one Python ``deque`` BFS per source; it is now a **vectorized
multi-source frontier expansion**: all ``n`` BFS trees advance one level per
iteration through a boolean frontier-matrix × adjacency-matrix product.  On
the paper's regime (``diam(G) <= k``, tiny) that is ``O(diam)`` NumPy passes
total — a large constant-factor win over ``n`` interpreted BFS loops.  The
per-source implementation is kept as :func:`all_pairs_distances_reference`,
the correctness oracle for the property tests and the benchmark baseline.

Whole-graph queries (``diameter``/``radius``/``eccentricities``) route
through the memoized :mod:`repro.graphs.analysis` oracle so the distance
matrix is computed at most once per graph version.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.graph import Graph
from repro.obs.metrics import REGISTRY

#: Sentinel distance for unreachable vertex pairs.
UNREACHABLE: int = -1

#: Registry counter of full APSP kernel runs in this process.  The analysis
#: oracle's contract — "at most one APSP per graph version" — is asserted in
#: tests by snapshotting this counter around end-to-end solves; the perf
#: baseline gates it per scenario.
_APSP_RUNS = REGISTRY.counter("repro_apsp_runs_total")
_APSP_RUNS.labels()  # materialize: the exposition shows 0, not nothing


def apsp_run_count() -> int:
    """How many times the APSP kernel has run in this process.

    Delegates to the ``repro_apsp_runs_total`` registry counter — the
    legacy call sites and the metrics exposition can never disagree.
    """
    return int(_APSP_RUNS.value)


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Distances from ``source`` to every vertex (``UNREACHABLE`` if none).

    Runs in ``O(n + m)`` time.

    >>> from repro.graphs.generators import path_graph
    >>> bfs_distances(path_graph(4), 0).tolist()
    [0, 1, 2, 3]
    """
    graph._check_vertex(source)
    dist = np.full(graph.n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    adj = graph._adj  # intentional: hot loop, avoid frozenset copies
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(v)
    return dist


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """The full ``n x n`` distance matrix by multi-source frontier expansion.

    Level ``d+1`` of every BFS tree is one boolean matmul: rows of
    ``frontier`` are the per-source level-``d`` sets, so ``frontier @ adj``
    marks every vertex adjacent to the current frontier, and masking out
    already-reached vertices leaves exactly level ``d+1``.  The loop runs
    once per distinct distance value (``diam(G)`` times on connected
    graphs).  Unreachable pairs hold ``UNREACHABLE``.

    Prefer :func:`repro.graphs.analysis.get_analysis` over calling this
    directly — the oracle memoizes the result per graph version.
    """
    _APSP_RUNS.inc()
    n = graph.n
    dist = np.full((n, n), UNREACHABLE, dtype=np.int64)
    if n == 0:
        return dist
    np.fill_diagonal(dist, 0)
    adj = graph.adjacency_matrix(dtype=np.bool_)
    reached = np.eye(n, dtype=bool)
    frontier = reached.copy()
    level = 0
    while True:
        frontier = (frontier @ adj) & ~reached
        if not frontier.any():
            break
        level += 1
        dist[frontier] = level
        reached |= frontier
    return dist


#: Promotion chain for the blocked kernel's level counter: when a BFS level
#: would overflow the block dtype, the block widens one step and continues.
_WIDER = {
    np.dtype(np.int8): np.int16,
    np.dtype(np.int16): np.int32,
    np.dtype(np.int32): np.int64,
}

_ORACLE_PROMOTIONS = REGISTRY.counter("repro_oracle_promotions_total")
_ORACLE_PROMOTIONS.labels()  # materialize: the exposition shows 0, not nothing


def distance_rows_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    n: int,
    dtype=np.int16,
) -> np.ndarray:
    """BFS distance rows for ``sources`` over a CSR adjacency.

    The row-block substrate of the lazy distance oracle: all ``len(sources)``
    BFS trees advance one level per iteration, with the frontier kept as a
    sparse ``(row, vertex)`` pair list instead of the dense boolean matrix
    :func:`all_pairs_distances` uses — memory is ``O(block_rows * n)``, not
    ``O(n^2)``.  Rows come back in ``dtype`` (default ``int16``); if a level
    would overflow it, the block promotes to the next wider integer type and
    ``repro_oracle_promotions_total`` is incremented.  Unreachable pairs
    hold :data:`UNREACHABLE`.  Does not count toward
    :func:`apsp_run_count` — the gate for *full* materializations.
    """
    sources = np.asarray(sources, dtype=np.int64)
    b = sources.shape[0]
    dist = np.full((b, n), UNREACHABLE, dtype=np.dtype(dtype))
    if b == 0 or n == 0:
        return dist
    dist[np.arange(b), sources] = 0
    rows = np.arange(b, dtype=np.int64)
    cols = sources.copy()
    level = 0
    while rows.size:
        level += 1
        if level > np.iinfo(dist.dtype).max:
            dist = dist.astype(_WIDER[dist.dtype])
            _ORACLE_PROMOTIONS.inc()
        counts = indptr[cols + 1] - indptr[cols]
        live = counts > 0
        rows, cols, counts = rows[live], cols[live], counts[live]
        if rows.size == 0:
            break
        # multi-range gather: one cumsum builds the concatenation of every
        # frontier vertex's CSR slice without a python loop
        starts = indptr[cols]
        cum = np.cumsum(counts)
        deltas = np.ones(cum[-1], dtype=np.int64)
        deltas[cum[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
        deltas[0] = starts[0]
        nbr = indices[np.cumsum(deltas)]
        nbr_rows = np.repeat(rows, counts)
        # drop already-visited candidates first (the bulk of the gather
        # once the BFS waves collide), then dedupe the survivors (several
        # frontier vertices can share a neighbour) with one sort — far
        # cheaper than hashing the full gather via np.unique
        fresh = dist[nbr_rows, nbr] == UNREACHABLE
        flat = nbr_rows[fresh] * n + nbr[fresh]
        if flat.size:
            flat.sort()
            keep = np.empty(flat.size, dtype=bool)
            keep[0] = True
            np.not_equal(flat[1:], flat[:-1], out=keep[1:])
            flat = flat[keep]
        rows, cols = flat // n, flat % n
        dist[rows, cols] = level
    return dist


def all_pairs_distances_reference(graph: Graph) -> np.ndarray:
    """One Python BFS per source (``O(nm)``) — the pre-vectorization kernel.

    Kept as the independent correctness oracle for the vectorized routine
    (property tests assert bit-identical matrices) and as the benchmark
    baseline.  Does not count toward :func:`apsp_run_count`.
    """
    n = graph.n
    dist = np.empty((n, n), dtype=np.int64)
    for s in range(n):
        dist[s] = bfs_distances(graph, s)
    return dist


def connected_components(graph: Graph) -> list[list[int]]:
    """Vertex lists of the connected components, each sorted, in id order."""
    seen = np.zeros(graph.n, dtype=bool)
    components: list[list[int]] = []
    for s in range(graph.n):
        if seen[s]:
            continue
        dist = bfs_distances(graph, s)
        members = np.nonzero(dist != UNREACHABLE)[0]
        seen[members] = True
        components.append(members.tolist())
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has one component (empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return bool(np.all(bfs_distances(graph, 0) != UNREACHABLE))


def eccentricity(graph: Graph, v: int) -> int:
    """Largest distance from ``v``; raises on disconnected graphs."""
    graph._check_vertex(v)
    from repro.graphs.analysis import get_analysis

    return int(get_analysis(graph).eccentricities[v])


def eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex as one vector (oracle-backed).

    Raises :class:`DisconnectedGraphError` on disconnected input — detected
    by a single-BFS pre-check, before any APSP is spent.
    """
    from repro.graphs.analysis import get_analysis

    return get_analysis(graph).eccentricities


def diameter(graph: Graph) -> int:
    """``max_{u,v} dist(u, v)``; 0 for graphs with at most one vertex.

    Raises :class:`DisconnectedGraphError` on disconnected input, matching
    the paper's standing assumption that ``G`` is connected.  Served from
    the per-graph analysis oracle, so repeated structural queries on the
    same graph version share one distance matrix.
    """
    from repro.graphs.analysis import get_analysis

    return get_analysis(graph).diameter


def radius(graph: Graph) -> int:
    """``min_v ecc(v)``; 0 for graphs with at most one vertex."""
    from repro.graphs.analysis import get_analysis

    return get_analysis(graph).radius
