"""The distance-constraint vector ``p`` and its derived quantities.

``LpSpec(p)`` models the ``p = (p_1, ..., p_k)`` of the paper: a labeling is
feasible iff ``|l(u) - l(v)| >= p_d`` for every pair at distance ``d <= k``.
``L21`` and ``L11`` are the two specs every survey cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import ReproError


@dataclass(frozen=True)
class LpSpec:
    """An ``L(p_1, ..., p_k)`` constraint vector.

    Entries must be non-negative integers and at least one must be positive
    (otherwise the problem is vacuous — the paper's NP-hardness statement is
    "for every non-zero p").

    >>> LpSpec((2, 1)).k
    2
    >>> LpSpec((2, 1)).reduction_applicable
    True
    >>> LpSpec((3, 1)).reduction_applicable   # 3 > 2*1
    False
    """

    p: tuple[int, ...]

    def __post_init__(self) -> None:
        """Validate the constraint vector (non-empty, positive entries)."""
        if not self.p:
            raise ReproError("p must have at least one entry")
        if any((not isinstance(x, int)) or x < 0 for x in self.p):
            raise ReproError(f"p entries must be non-negative ints, got {self.p}")
        if all(x == 0 for x in self.p):
            raise ReproError("p must be non-zero")

    @classmethod
    def of(cls, *entries: int) -> "LpSpec":
        """Convenience constructor: ``LpSpec.of(2, 1)``."""
        return cls(tuple(int(e) for e in entries))

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Dimension of ``p`` — the distance horizon of the constraints."""
        return len(self.p)

    @cached_property
    def pmin(self) -> int:
        """Smallest constraint entry."""
        return min(self.p)

    @cached_property
    def pmax(self) -> int:
        """Largest constraint entry."""
        return max(self.p)

    @property
    def reduction_applicable(self) -> bool:
        """Theorem 2's weight condition: ``p_max <= 2 * p_min``.

        (The other precondition, ``diam(G) <= k``, depends on the graph and
        is checked by :mod:`repro.reduction.validation`.)
        """
        return self.pmin >= 1 and self.pmax <= 2 * self.pmin

    def requirement(self, distance: int) -> int:
        """Minimum label gap for a pair at the given distance (0 if > k)."""
        if distance < 1:
            raise ReproError(f"distance must be >= 1, got {distance}")
        if distance > self.k:
            return 0
        return self.p[distance - 1]

    def scaled(self, c: int) -> "LpSpec":
        """``c * p`` — used by Corollary 3's identity ``λ_{cp} = c λ_p``."""
        if c < 1:
            raise ReproError(f"scale factor must be >= 1, got {c}")
        return LpSpec(tuple(c * x for x in self.p))

    def __str__(self) -> str:
        """The conventional ``L(p1, p2, ...)`` notation."""
        return f"L({', '.join(map(str, self.p))})"


#: The frequency-assignment classic.
L21 = LpSpec((2, 1))

#: Coloring of the square (distance-2 coloring).
L11 = LpSpec((1, 1))


def all_ones(k: int) -> LpSpec:
    """``L(1, ..., 1)`` with ``k`` ones — the Theorem 4 spec."""
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    return LpSpec((1,) * k)
