"""Closed-form ``L(2,1)`` spans for the classic graph families.

The paper's introduction lists paths, cycles and wheels as classes solvable
by "straightforward" algorithms; these Griggs–Yeh formulas are the answers.
They serve as independent oracles: the TSP pipeline must reproduce each one
exactly (covered by the test-suite and experiment E3).

References: Griggs & Yeh, SIAM J. Discrete Math. 5(4), 1992.
"""

from __future__ import annotations

from repro.errors import ReproError


def l21_span_path(n: int) -> int:
    """``λ_{2,1}(P_n)``: 0, 2, 3, 3, 4, 4, ... (Griggs–Yeh Thm 3.1)."""
    if n < 1:
        raise ReproError(f"path needs n >= 1, got {n}")
    if n == 1:
        return 0
    if n == 2:
        return 2
    if n in (3, 4):
        return 3
    return 4


def l21_span_cycle(n: int) -> int:
    """``λ_{2,1}(C_n) = 4`` for every ``n >= 3`` (Griggs–Yeh Thm 3.2)."""
    if n < 3:
        raise ReproError(f"cycle needs n >= 3, got {n}")
    return 4


def l21_span_complete(n: int) -> int:
    """``λ_{2,1}(K_n) = 2(n - 1)``: all pairs adjacent, gaps of 2."""
    if n < 1:
        raise ReproError(f"complete graph needs n >= 1, got {n}")
    return 2 * (n - 1)


def l21_span_star(n_leaves: int) -> int:
    """``λ_{2,1}(K_{1,n}) = n + 1`` for ``n >= 1``.

    Leaves are pairwise at distance 2 (distinct labels), the centre needs a
    gap of 2 from each leaf; centre at 0, leaves at 2..n+1 is optimal.
    """
    if n_leaves < 1:
        raise ReproError(f"star needs >= 1 leaf, got {n_leaves}")
    return n_leaves + 1


def l21_span_wheel(n_rim: int) -> int:
    """``λ_{2,1}(W_n) = n + 1`` for rim size ``n >= 5``; 6 for rims 3 and 4.

    Lower bound: the hub is adjacent to all ``n`` rim vertices and the rim is
    pairwise within distance 2, so all ``n + 1`` labels are distinct and the
    hub's label excludes a 3-wide window — at least ``n + 2`` values, i.e.
    span ``>= n + 1``.  Upper bound: hub at 0, rim on ``{2, ..., n+1}``
    arranged even-then-odd around the cycle (adjacent gaps >= 2), which works
    for ``n >= 5``.  For ``n = 3`` (= K_4) and ``n = 4`` the cyclic
    arrangement fails and the optimum is 6 (verified by exhaustive search in
    the test-suite, as are all rims up to 8).
    """
    if n_rim < 3:
        raise ReproError(f"wheel needs rim >= 3, got {n_rim}")
    if n_rim in (3, 4):
        return 6
    return n_rim + 1


def l21_span_complete_bipartite(a: int, b: int) -> int:
    """``λ_{2,1}(K_{a,b}) = a + b`` (Griggs–Yeh; diameter 2 for a,b >= 1)."""
    if a < 1 or b < 1:
        raise ReproError(f"complete bipartite needs both sides >= 1, got {a},{b}")
    return a + b
