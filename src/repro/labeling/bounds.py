"""Lower and upper bounds on the optimum span.

Used to start the exact solver's iterative deepening, to sanity-check every
solver's output in tests (``lower <= span <= upper``), and to report
optimality gaps in the harness tables.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec


def lower_bound(graph: Graph, spec: LpSpec, dist: np.ndarray | None = None) -> int:
    """A cheap valid lower bound on ``λ_p(G)``.

    Combines three arguments:

    * **all-pairs**: if every pair is within distance ``k`` (``diam <= k``)
      and every ``p_d >= 1``, all labels are distinct with pairwise gaps at
      least ``min_d p_d``, so ``λ >= (n-1) * min_d p_d`` — this is exactly
      the ``p_min <= w`` side of the paper's reduction;
    * **star**: a vertex of degree ``Δ`` forces its closed neighbourhood
      onto ``Δ+1`` labels with gaps at least ``min(p_1, p_2)`` between
      neighbours (they are within distance 2) and ``p_1`` to the centre;
    * **edge**: any edge forces ``λ >= p_1``.
    """
    n = graph.n
    if n <= 1:
        return 0
    best = 0

    if graph.m > 0:
        best = max(best, spec.p[0])

    # max positive distance; streamed per row block when no matrix exists
    # (positive entries exist iff the global max is positive — entries are
    # -1, 0 or a path length).  An unreachable pair (-1) voids the
    # all-pairs argument: "every pair within distance k" is false, so the
    # (n-1)*pmin bound would overshoot the optimum on disconnected graphs.
    unreachable = False
    if dist is not None:
        d = np.asarray(dist)
        dmax = int(d.max()) if d.size else 0
        unreachable = bool((d < 0).any())
    else:
        dmax = 0
        for _lo, _hi, blk in get_analysis(graph).iter_row_blocks():
            if blk.size:
                dmax = max(dmax, int(blk.max()))
                unreachable = unreachable or bool((blk < 0).any())
    if not unreachable and dmax >= 1 and dmax <= spec.k and spec.pmin >= 1:
        best = max(best, (n - 1) * spec.pmin)

    delta = graph.max_degree()
    if delta >= 1 and spec.k >= 2:
        gap2 = min(spec.p[0], spec.p[1])
        if gap2 >= 1:
            # Δ neighbours pairwise >= gap2 apart spans (Δ-1)*gap2; the centre
            # adds at least p_1 - gap2 more when it sits at an end (never
            # negative when p1 >= gap2, which holds since gap2 <= p1).
            best = max(best, (delta - 1) * gap2 + spec.p[0])
    elif delta >= 1:
        best = max(best, spec.p[0])

    return best


def trivial_upper_bound(graph: Graph, spec: LpSpec) -> int:
    """``(n - 1) * p_max`` — spread labels ``0, p_max, 2 p_max, ...``.

    Feasible whenever it assigns all-distinct labels with gaps >= p_max,
    which dominates every requirement.
    """
    if graph.n <= 1:
        return 0
    return (graph.n - 1) * spec.pmax
