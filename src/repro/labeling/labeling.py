"""Labeling value object with feasibility verification.

Every solver in this library returns a :class:`Labeling`; the constructor is
cheap and verification is explicit (``is_feasible`` / ``violations`` /
``require_feasible``) so the harness can re-verify *every* engine's output —
an end-to-end safety net the paper's correctness claims are tested through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec


def requirement_matrix(spec: LpSpec, dist: np.ndarray) -> np.ndarray:
    """``req[u, v]`` = required label gap for the pair (0 when unconstrained).

    One vectorized gather ``p[dist - 1]`` over the whole matrix: pairs at
    distance ``1..k`` pick up their ``p_d``, the diagonal (distance 0),
    pairs beyond ``k`` and unreachable pairs all fall to 0.  Shared by the
    feasibility checks here and the exact/greedy solvers.
    """
    d = np.asarray(dist)
    p = np.asarray(spec.p, dtype=np.int64)
    in_range = (d >= 1) & (d <= spec.k)
    return np.where(in_range, p[np.clip(d, 1, spec.k) - 1], 0)


@dataclass(frozen=True)
class Labeling:
    """An assignment ``l : V -> N ∪ {0}`` stored as a tuple indexed by vertex."""

    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        """Reject negative or non-integer labels at construction."""
        if any((not isinstance(x, (int, np.integer))) or x < 0 for x in self.labels):
            raise ReproError("labels must be non-negative integers")
        object.__setattr__(self, "labels", tuple(int(x) for x in self.labels))

    @classmethod
    def from_sequence(cls, labels: Sequence[int]) -> "Labeling":
        """Build from any integer sequence (values are coerced to int)."""
        return cls(tuple(int(x) for x in labels))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of labeled vertices."""
        return len(self.labels)

    @property
    def span(self) -> int:
        """The maximum label (0 for the empty labeling)."""
        return max(self.labels, default=0)

    def __getitem__(self, v: int) -> int:
        """Label of vertex ``v``."""
        return self.labels[v]

    def __iter__(self) -> Iterator[int]:
        """Iterate labels in vertex order."""
        return iter(self.labels)

    def __len__(self) -> int:
        """Number of labeled vertices."""
        return len(self.labels)

    # ------------------------------------------------------------------
    def violations(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> list[tuple[int, int, int, int]]:
        """All violated pairs as ``(u, v, distance, required_gap)``.

        ``dist`` may be passed to reuse a precomputed distance matrix; the
        default comes from the graph's memoized analysis oracle.  The whole
        check is one vectorized gather-and-compare (no Python loop over
        distance classes); the list is ordered by distance class, then by
        ``(u, v)`` row-major — identical to the historical per-class scan.
        """
        if graph.n != self.n:
            raise ReproError(
                f"labeling covers {self.n} vertices but graph has {graph.n}"
            )
        if dist is None:
            dist = get_analysis(graph).distances
        lab = np.asarray(self.labels, dtype=np.int64)
        gaps = np.abs(lab[:, None] - lab[None, :])
        req = requirement_matrix(spec, dist)
        bad_u, bad_v = np.nonzero(np.triu(req > 0, k=1) & (gaps < req))
        bad_d = np.asarray(dist)[bad_u, bad_v]
        bad_req = req[bad_u, bad_v]
        order = np.lexsort((bad_v, bad_u, bad_d))
        return [
            (int(bad_u[i]), int(bad_v[i]), int(bad_d[i]), int(bad_req[i]))
            for i in order
        ]

    def is_feasible(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> bool:
        """Fast vectorized feasibility check (no violation list built)."""
        if graph.n != self.n:
            return False
        if dist is None:
            dist = get_analysis(graph).distances
        lab = np.asarray(self.labels, dtype=np.int64)
        gaps = np.abs(lab[:, None] - lab[None, :])
        req = requirement_matrix(spec, dist)
        return not bool(np.any((req > 0) & (gaps < req)))

    def require_feasible(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> "Labeling":
        """Assert feasibility; raises with the first few violations listed.

        ``dist`` may be passed to reuse a precomputed distance matrix.
        """
        bad = self.violations(graph, spec, dist=dist)
        if bad:
            head = ", ".join(
                f"({u},{v}) d={d} needs {req}" for u, v, d, req in bad[:5]
            )
            raise ReproError(f"infeasible labeling: {len(bad)} violations: {head}")
        return self

    # ------------------------------------------------------------------
    def normalized(self) -> "Labeling":
        """Shift labels down so the minimum used label is 0.

        Any feasible labeling can be shifted without changing feasibility
        (only gaps matter); optimal labelings always use label 0 (the paper's
        observation before Claim 1).
        """
        if not self.labels:
            return self
        lo = min(self.labels)
        return Labeling(tuple(x - lo for x in self.labels))
