"""Labeling value object with feasibility verification.

Every solver in this library returns a :class:`Labeling`; the constructor is
cheap and verification is explicit (``is_feasible`` / ``violations`` /
``require_feasible``) so the harness can re-verify *every* engine's output —
an end-to-end safety net the paper's correctness claims are tested through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.labeling.spec import LpSpec


def requirement_matrix(spec: LpSpec, dist: np.ndarray) -> np.ndarray:
    """``req[u, v]`` = required label gap for the pair (0 when unconstrained).

    One vectorized gather ``p[dist - 1]`` over the whole matrix: pairs at
    distance ``1..k`` pick up their ``p_d``, the diagonal (distance 0),
    pairs beyond ``k`` and unreachable pairs all fall to 0.  Shared by the
    feasibility checks here and the exact/greedy solvers.
    """
    d = np.asarray(dist)
    p = np.asarray(spec.p, dtype=np.int64)
    in_range = (d >= 1) & (d <= spec.k)
    return np.where(in_range, p[np.clip(d, 1, spec.k) - 1], 0)


def _iter_dist_blocks(graph: Graph, dist: np.ndarray | None):
    """Yield ``(lo, hi, rows)`` distance slices for the feasibility checks.

    A forwarded matrix is served as one pseudo-block; otherwise the graph's
    analysis streams row blocks, so verification on large graphs never
    materializes an ``O(n^2)`` matrix (see
    :meth:`repro.graphs.analysis.GraphAnalysis.iter_row_blocks`).
    """
    if dist is not None:
        yield 0, graph.n, np.asarray(dist)
        return
    yield from get_analysis(graph).iter_row_blocks()


@dataclass(frozen=True)
class Labeling:
    """An assignment ``l : V -> N ∪ {0}`` stored as a tuple indexed by vertex."""

    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        """Reject negative or non-integer labels at construction."""
        if any((not isinstance(x, (int, np.integer))) or x < 0 for x in self.labels):
            raise ReproError("labels must be non-negative integers")
        object.__setattr__(self, "labels", tuple(int(x) for x in self.labels))

    @classmethod
    def from_sequence(cls, labels: Sequence[int]) -> "Labeling":
        """Build from any integer sequence (values are coerced to int)."""
        return cls(tuple(int(x) for x in labels))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of labeled vertices."""
        return len(self.labels)

    @property
    def span(self) -> int:
        """The maximum label (0 for the empty labeling)."""
        return max(self.labels, default=0)

    def __getitem__(self, v: int) -> int:
        """Label of vertex ``v``."""
        return self.labels[v]

    def __iter__(self) -> Iterator[int]:
        """Iterate labels in vertex order."""
        return iter(self.labels)

    def __len__(self) -> int:
        """Number of labeled vertices."""
        return len(self.labels)

    # ------------------------------------------------------------------
    def violations(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> list[tuple[int, int, int, int]]:
        """All violated pairs as ``(u, v, distance, required_gap)``.

        ``dist`` may be passed to reuse a precomputed distance matrix; the
        default comes from the graph's memoized analysis oracle.  The whole
        check is one vectorized gather-and-compare (no Python loop over
        distance classes); the list is ordered by distance class, then by
        ``(u, v)`` row-major — identical to the historical per-class scan.
        """
        if graph.n != self.n:
            raise ReproError(
                f"labeling covers {self.n} vertices but graph has {graph.n}"
            )
        lab = np.asarray(self.labels, dtype=np.int64)
        cols = np.arange(graph.n)
        found: list[np.ndarray] = []
        for lo, hi, blk in _iter_dist_blocks(graph, dist):
            req = requirement_matrix(spec, blk)
            gaps = np.abs(lab[lo:hi, None] - lab[None, :])
            upper = cols[None, :] > np.arange(lo, hi)[:, None]
            u, v = np.nonzero(upper & (req > 0) & (gaps < req))
            if u.size:
                found.append(
                    np.stack(
                        (
                            u + lo,
                            v,
                            np.asarray(blk, dtype=np.int64)[u, v],
                            req[u, v],
                        )
                    )
                )
        if not found:
            return []
        bad_u, bad_v, bad_d, bad_req = np.concatenate(found, axis=1)
        order = np.lexsort((bad_v, bad_u, bad_d))
        return [
            (int(bad_u[i]), int(bad_v[i]), int(bad_d[i]), int(bad_req[i]))
            for i in order
        ]

    def is_feasible(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> bool:
        """Fast vectorized feasibility check (no violation list built)."""
        if graph.n != self.n:
            return False
        lab = np.asarray(self.labels, dtype=np.int64)
        for lo, hi, blk in _iter_dist_blocks(graph, dist):
            req = requirement_matrix(spec, blk)
            gaps = np.abs(lab[lo:hi, None] - lab[None, :])
            if bool(np.any((req > 0) & (gaps < req))):
                return False
        return True

    def require_feasible(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> "Labeling":
        """Assert feasibility; raises with the first few violations listed.

        ``dist`` may be passed to reuse a precomputed distance matrix.
        """
        bad = self.violations(graph, spec, dist=dist)
        if bad:
            head = ", ".join(
                f"({u},{v}) d={d} needs {req}" for u, v, d, req in bad[:5]
            )
            raise ReproError(f"infeasible labeling: {len(bad)} violations: {head}")
        return self

    # ------------------------------------------------------------------
    def normalized(self) -> "Labeling":
        """Shift labels down so the minimum used label is 0.

        Any feasible labeling can be shifted without changing feasibility
        (only gaps matter); optimal labelings always use label 0 (the paper's
        observation before Claim 1).
        """
        if not self.labels:
            return self
        lo = min(self.labels)
        return Labeling(tuple(x - lo for x in self.labels))
