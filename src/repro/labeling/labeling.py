"""Labeling value object with feasibility verification.

Every solver in this library returns a :class:`Labeling`; the constructor is
cheap and verification is explicit (``is_feasible`` / ``violations`` /
``require_feasible``) so the harness can re-verify *every* engine's output —
an end-to-end safety net the paper's correctness claims are tested through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.labeling.spec import LpSpec


@dataclass(frozen=True)
class Labeling:
    """An assignment ``l : V -> N ∪ {0}`` stored as a tuple indexed by vertex."""

    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if any((not isinstance(x, (int, np.integer))) or x < 0 for x in self.labels):
            raise ReproError("labels must be non-negative integers")
        object.__setattr__(self, "labels", tuple(int(x) for x in self.labels))

    @classmethod
    def from_sequence(cls, labels: Sequence[int]) -> "Labeling":
        return cls(tuple(int(x) for x in labels))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.labels)

    @property
    def span(self) -> int:
        """The maximum label (0 for the empty labeling)."""
        return max(self.labels, default=0)

    def __getitem__(self, v: int) -> int:
        return self.labels[v]

    def __iter__(self) -> Iterator[int]:
        return iter(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    # ------------------------------------------------------------------
    def violations(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> list[tuple[int, int, int, int]]:
        """All violated pairs as ``(u, v, distance, required_gap)``.

        ``dist`` may be passed to reuse a precomputed distance matrix.
        """
        if graph.n != self.n:
            raise ReproError(
                f"labeling covers {self.n} vertices but graph has {graph.n}"
            )
        if dist is None:
            dist = all_pairs_distances(graph)
        lab = np.asarray(self.labels, dtype=np.int64)
        gaps = np.abs(lab[:, None] - lab[None, :])
        out: list[tuple[int, int, int, int]] = []
        for d in range(1, spec.k + 1):
            req = spec.p[d - 1]
            if req == 0:
                continue
            bad_u, bad_v = np.nonzero(np.triu(dist == d, k=1) & (gaps < req))
            out.extend(
                (int(u), int(v), d, req) for u, v in zip(bad_u, bad_v)
            )
        return out

    def is_feasible(
        self, graph: Graph, spec: LpSpec, dist: np.ndarray | None = None
    ) -> bool:
        """Fast vectorized feasibility check (no violation list built)."""
        if graph.n != self.n:
            return False
        if dist is None:
            dist = all_pairs_distances(graph)
        lab = np.asarray(self.labels, dtype=np.int64)
        gaps = np.abs(lab[:, None] - lab[None, :])
        for d in range(1, spec.k + 1):
            req = spec.p[d - 1]
            if req == 0:
                continue
            if np.any((dist == d) & (gaps < req) & ~np.eye(self.n, dtype=bool)):
                return False
        return True

    def require_feasible(self, graph: Graph, spec: LpSpec) -> "Labeling":
        """Assert feasibility; raises with the first few violations listed."""
        bad = self.violations(graph, spec)
        if bad:
            head = ", ".join(
                f"({u},{v}) d={d} needs {req}" for u, v, d, req in bad[:5]
            )
            raise ReproError(f"infeasible labeling: {len(bad)} violations: {head}")
        return self

    # ------------------------------------------------------------------
    def normalized(self) -> "Labeling":
        """Shift labels down so the minimum used label is 0.

        Any feasible labeling can be shifted without changing feasibility
        (only gaps matter); optimal labelings always use label 0 (the paper's
        observation before Claim 1).
        """
        if not self.labels:
            return self
        lo = min(self.labels)
        return Labeling(tuple(x - lo for x in self.labels))
