"""Greedy first-fit labeling — the cheap upper bound.

Processes vertices in a chosen order and gives each the smallest label
compatible with already-labeled vertices.  Used as the branch-and-bound
incumbent, as a baseline engine in the harness tables, and as the
"no-theory" comparison point for the TSP pipeline.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.errors import ReproError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.labeling.labeling import Labeling, requirement_matrix
from repro.labeling.spec import LpSpec

Order = Literal["degree", "bfs", "id", "random"]


def greedy_labeling(
    graph: Graph,
    spec: LpSpec,
    order: Order | Sequence[int] = "degree",
    seed: int | np.random.Generator | None = None,
) -> Labeling:
    """First-fit labeling along the given vertex order.

    ``order`` may be one of the named strategies or an explicit permutation.

    >>> from repro.graphs.generators import path_graph
    >>> from repro.labeling.spec import L21
    >>> greedy_labeling(path_graph(3), L21).is_feasible(path_graph(3), L21)
    True
    """
    n = graph.n
    if n == 0:
        return Labeling(())
    analysis = get_analysis(graph)
    # small graphs keep the one-gather dense requirement matrix; large ones
    # fetch one requirement row per vertex through the blocked oracle, so
    # first-fit never holds O(n^2) memory
    req = (
        requirement_matrix(spec, analysis.distances)
        if analysis.dense_preferred
        else None
    )

    perm = _resolve_order(graph, order, seed)
    labels = np.full(n, -1, dtype=np.int64)
    for v in perm:
        rv = req[v] if req is not None else requirement_matrix(
            spec, analysis.row(v)
        )
        constraining = np.nonzero((rv > 0) & (labels >= 0))[0]
        x = 0
        while True:
            gaps = np.abs(labels[constraining] - x)
            bad = gaps < rv[constraining]
            if not bad.any():
                break
            # jump past the tightest blocking window instead of x += 1
            u = constraining[bad][0]
            x = int(labels[u] + rv[u])
        labels[v] = x
    return Labeling(tuple(int(x) for x in labels))


def greedy_span(
    graph: Graph,
    spec: LpSpec,
    order: Order | Sequence[int] = "degree",
    seed: int | np.random.Generator | None = None,
) -> int:
    """Span of the first-fit labeling (see :func:`greedy_labeling`)."""
    return greedy_labeling(graph, spec, order=order, seed=seed).span


def best_greedy_labeling(
    graph: Graph, spec: LpSpec, restarts: int = 20, seed: int | None = 0
) -> Labeling:
    """Best of the named orders plus ``restarts`` random orders."""
    rng = np.random.default_rng(seed)
    best: Labeling | None = None
    for order in ("degree", "bfs", "id"):
        cand = greedy_labeling(graph, spec, order=order)  # type: ignore[arg-type]
        if best is None or cand.span < best.span:
            best = cand
    for _ in range(restarts):
        cand = greedy_labeling(graph, spec, order="random", seed=rng)
        if cand.span < best.span:  # type: ignore[union-attr]
            best = cand
    assert best is not None
    return best


def _resolve_order(
    graph: Graph,
    order: Order | Sequence[int],
    seed: int | np.random.Generator | None,
) -> list[int]:
    """Materialize a named strategy or explicit sequence into an order."""
    n = graph.n
    if not isinstance(order, str):
        perm = [int(v) for v in order]
        if sorted(perm) != list(range(n)):
            raise ReproError("explicit order is not a permutation of the vertices")
        return perm
    if order == "id":
        return list(range(n))
    if order == "degree":
        return sorted(range(n), key=lambda v: (-graph.degree(v), v))
    if order == "bfs":
        if n == 0:
            return []
        root = max(range(n), key=graph.degree)
        dist = bfs_distances(graph, root)
        far = int(dist.max()) + 1
        # unreachable vertices go last, otherwise by BFS layer then id
        return sorted(range(n), key=lambda v: (dist[v] if dist[v] >= 0 else far, v))
    if order == "random":
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        return rng.permutation(n).tolist()
    raise ReproError(f"unknown order strategy {order!r}")
