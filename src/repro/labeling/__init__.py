"""Distance-constrained labeling: specifications, labelings, solvers, bounds."""

from repro.labeling.spec import LpSpec
from repro.labeling.labeling import Labeling
from repro.labeling.exact import exact_span, exact_labeling
from repro.labeling.greedy import greedy_labeling, greedy_span
from repro.labeling.special import (
    l21_span_path,
    l21_span_cycle,
    l21_span_complete,
    l21_span_star,
    l21_span_wheel,
    l21_span_complete_bipartite,
)
from repro.labeling.bounds import lower_bound, trivial_upper_bound

__all__ = [
    "LpSpec",
    "Labeling",
    "exact_span",
    "exact_labeling",
    "greedy_labeling",
    "greedy_span",
    "l21_span_path",
    "l21_span_cycle",
    "l21_span_complete",
    "l21_span_star",
    "l21_span_wheel",
    "l21_span_complete_bipartite",
    "lower_bound",
    "trivial_upper_bound",
]
