"""Reference exact ``L(p)``-labeling by branch-and-bound.

This solver is deliberately *independent of the paper's reduction*: it
searches label assignments directly, so agreement between this oracle and
the TSP pipeline is genuine evidence for Theorem 2 (the two computations
share no code beyond the distance matrix).

Strategy: iterative deepening on the span ``λ`` starting from a lower bound;
for each candidate ``λ``, a DFS assigns labels in a high-degree-first vertex
order with forward checking.  Exponential, as it must be (the problem is
NP-hard); intended for ``n <= ~10`` cross-checks, which is where the
benchmark suite certifies exactness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleInstanceError, ReproError
from repro.graphs.analysis import get_analysis
from repro.graphs.graph import Graph
from repro.labeling.bounds import lower_bound
from repro.labeling.greedy import greedy_labeling
from repro.labeling.labeling import Labeling, requirement_matrix
from repro.labeling.spec import LpSpec

#: direct search explodes beyond this many vertices
MAX_EXACT_N = 12


def exact_labeling(graph: Graph, spec: LpSpec, max_n: int = MAX_EXACT_N) -> Labeling:
    """An optimal labeling (minimum span), by iterative-deepening DFS."""
    n = graph.n
    if n > max_n:
        raise ReproError(
            f"exact labeling capped at n={max_n} (got {n}); "
            "use the TSP pipeline for larger small-diameter instances"
        )
    if n == 0:
        return Labeling(())
    if n == 1:
        return Labeling((0,))

    dist = get_analysis(graph).rows(0, n)
    req = requirement_matrix(spec, dist)

    # vertex order: decreasing constraint mass; ties by id for determinism
    order = sorted(range(n), key=lambda v: (-int(req[v].sum()), v))

    ub_labeling = greedy_labeling(graph, spec)
    ub = ub_labeling.span
    lb = lower_bound(graph, spec, dist=dist)

    for lam in range(lb, ub):
        found = _search(req, order, lam)
        if found is not None:
            return Labeling(tuple(found)).require_feasible(graph, spec)
    return ub_labeling  # greedy was already optimal


def exact_span(graph: Graph, spec: LpSpec, max_n: int = MAX_EXACT_N) -> int:
    """Minimum span ``λ_p(G)``."""
    return exact_labeling(graph, spec, max_n=max_n).span


def _search(req: np.ndarray, order: list[int], lam: int) -> list[int] | None:
    """DFS for a feasible labeling with all labels in ``0..lam``."""
    n = req.shape[0]
    labels = [-1] * n

    # symmetry breaking: the first vertex may take labels 0..floor(lam/2)
    # (a labeling can always be mirrored x -> lam - x).
    def dfs(i: int) -> bool:
        """Backtracking assignment of vertex ``i`` under the span budget."""
        if i == n:
            return True
        v = order[i]
        hi = lam // 2 if i == 0 else lam
        assigned = [u for u in order[:i] if req[v][u] > 0]
        for x in range(hi + 1):
            ok = True
            for u in assigned:
                if abs(x - labels[u]) < req[v][u]:
                    ok = False
                    break
            if ok:
                labels[v] = x
                if dfs(i + 1):
                    return True
                labels[v] = -1
        return False

    if dfs(0):
        return labels
    return None


def exact_span_or_fail(graph: Graph, spec: LpSpec, span_budget: int) -> Labeling:
    """Find a labeling with span <= ``span_budget`` or raise.

    Used by the Theorem-3 equivalence tests, which need the *decision*
    version ("is λ_{2,1} <= n?").
    """
    n = graph.n
    if n == 0:
        return Labeling(())
    dist = get_analysis(graph).rows(0, n)
    req = requirement_matrix(spec, dist)
    order = sorted(range(n), key=lambda v: (-int(req[v].sum()), v))
    found = _search(req, order, span_budget)
    if found is None:
        raise InfeasibleInstanceError(
            f"no {spec} labeling with span <= {span_budget}"
        )
    return Labeling(tuple(found))
