"""Chang–Kuo style exact ``L(2,1)``-labeling of trees.

The paper's introduction contrasts its generic TSP framework with
class-specific algorithms: trees are polynomial-time solvable but the
algorithm is "quite involved" (Chang & Kuo 1996; linear-time by Hasunuma et
al.).  This module implements the matching-based Chang–Kuo decision
procedure, both as a faithful piece of the landscape and as another
independent oracle for the test-suite.

Theory: for any tree ``T`` with maximum degree ``Δ >= 1``,
``λ_{2,1}(T) ∈ {Δ + 1, Δ + 2}``.  Deciding which one holds reduces to a
rooted DP where the feasibility of labeling ``v`` with ``b`` under a parent
labeled ``a`` requires a *perfect matching* between the children of ``v``
and the available labels — computed by Hopcroft–Karp
(:mod:`repro.graphs.bipartite`).  Memoized over ``(v, a, b)``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import GraphError, ReproError
from repro.graphs.bipartite import hopcroft_karp
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.labeling.labeling import Labeling
from repro.labeling.spec import L21

#: sentinel "no parent" label, far enough to never constrain
NO_PARENT = -10


def is_tree(graph: Graph) -> bool:
    """Connected with exactly ``n - 1`` edges."""
    return graph.n >= 1 and graph.m == graph.n - 1 and is_connected(graph)


def l21_tree_span(tree: Graph) -> int:
    """``λ_{2,1}`` of a tree, by the Chang–Kuo decision procedure.

    >>> from repro.graphs.generators import star_graph, path_graph
    >>> l21_tree_span(star_graph(5))     # Δ+1 = 6
    6
    >>> l21_tree_span(path_graph(2))
    2
    """
    if not is_tree(tree):
        raise GraphError("l21_tree_span requires a tree")
    n = tree.n
    if n == 1:
        return 0
    delta = tree.max_degree()
    if _feasible_span(tree, delta + 1):
        return delta + 1
    # Griggs–Yeh: Δ+2 always suffices for trees; assert rather than trust.
    if not _feasible_span(tree, delta + 2):  # pragma: no cover - theory guard
        raise ReproError("tree rejected span Δ+2, contradicting Griggs–Yeh")
    return delta + 2


def l21_tree_labeling(tree: Graph) -> Labeling:
    """An optimal ``L(2,1)``-labeling of a tree, with certificate replay.

    Runs the decision DP, then walks the tree top-down re-solving the child
    matchings and committing label choices.  The result is re-verified.
    """
    if not is_tree(tree):
        raise GraphError("l21_tree_labeling requires a tree")
    if tree.n == 1:
        return Labeling((0,))
    span = l21_tree_span(tree)
    labeling = _construct(tree, span)
    return labeling.require_feasible(tree, L21)


# ---------------------------------------------------------------------------
# decision DP
# ---------------------------------------------------------------------------
def _rooted(tree: Graph) -> tuple[int, list[list[int]], list[int]]:
    """Root at a max-degree vertex; return (root, children lists, order)."""
    root = max(range(tree.n), key=tree.degree)
    children: list[list[int]] = [[] for _ in range(tree.n)]
    parent = [-1] * tree.n
    order = [root]
    seen = [False] * tree.n
    seen[root] = True
    stack = [root]
    while stack:
        v = stack.pop()
        for u in sorted(tree.neighbors(v)):
            if not seen[u]:
                seen[u] = True
                parent[u] = v
                children[v].append(u)
                order.append(u)
                stack.append(u)
    return root, children, order


def _feasible_span(tree: Graph, lam: int) -> bool:
    """Whether the tree admits an L(2,1) labeling of span ``lam``."""
    root, children, _ = _rooted(tree)

    @lru_cache(maxsize=None)
    def feasible(v: int, a: int, b: int) -> bool:
        """Subtree of v labelable with l(v)=b, parent labeled a."""
        if a != NO_PARENT and abs(a - b) < 2:
            return False
        kids = children[v]
        if not kids:
            return True
        # candidate labels for children: != a (distance 2 via v... the
        # child's distance to v's parent is 2), gap >= 2 from b
        labels = [
            c for c in range(lam + 1)
            if c != a and abs(c - b) >= 2
        ]
        if len(labels) < len(kids):
            return False
        edges = [
            (i, j)
            for i, kid in enumerate(kids)
            for j, c in enumerate(labels)
            if feasible(kid, b, c)
        ]
        size, _ = hopcroft_karp(len(kids), len(labels), edges)
        return size == len(kids)

    return any(feasible(root, NO_PARENT, b) for b in range(lam + 1))


def _construct(tree: Graph, lam: int) -> Labeling:
    """Build a span-``lam`` tree labeling from the feasibility DP."""
    root, children, _ = _rooted(tree)

    @lru_cache(maxsize=None)
    def feasible(v: int, a: int, b: int) -> bool:
        """DP: can ``v`` take label ``b`` under parent label ``a``?"""
        if a != NO_PARENT and abs(a - b) < 2:
            return False
        kids = children[v]
        if not kids:
            return True
        labels = [c for c in range(lam + 1) if c != a and abs(c - b) >= 2]
        if len(labels) < len(kids):
            return False
        edges = [
            (i, j)
            for i, kid in enumerate(kids)
            for j, c in enumerate(labels)
            if feasible(kid, b, c)
        ]
        size, _ = hopcroft_karp(len(kids), len(labels), edges)
        return size == len(kids)

    out = [-1] * tree.n
    root_label = next(
        (b for b in range(lam + 1) if feasible(root, NO_PARENT, b)), None
    )
    if root_label is None:
        raise ReproError(f"no labeling with span {lam} exists")
    out[root] = root_label

    def assign(v: int, a: int) -> None:
        """Top-down: commit labels to ``v``'s children given parent ``a``."""
        b = out[v]
        kids = children[v]
        if not kids:
            return
        labels = [c for c in range(lam + 1) if c != a and abs(c - b) >= 2]
        edges = [
            (i, j)
            for i, kid in enumerate(kids)
            for j, c in enumerate(labels)
            if feasible(kid, b, c)
        ]
        size, match = hopcroft_karp(len(kids), len(labels), edges)
        if size != len(kids):  # pragma: no cover - DP consistency guard
            raise ReproError("construction matching failed")
        for i, kid in enumerate(kids):
            out[kid] = labels[match[i]]
            assign(kid, b)

    assign(root, NO_PARENT)
    return Labeling(tuple(out))
