"""Layer-DP exact ``L(2,1)``-labeling — the related-work baseline.

The paper's introduction surveys exact exponential algorithms specialized to
``L(2,1)`` (Junosza-Szaniawski et al., ``O(2.6488^n)``; Cygan & Kowalik's
channel assignment in ``O*((max p + 1)^n)``).  This module implements the
*layer* formulation those algorithms refine: process labels ``0, 1, 2, …``
in order; the DP state is ``(S, A)`` where ``S`` is the set of already
labeled vertices and ``A ⊆ S`` the set holding the current label.

Transitions to label ``t+1`` choose the next layer ``B ⊆ V \\ S`` with

* ``B`` independent in ``G²``  (same-label vertices must be > distance 2), and
* no ``G``-edge between ``B`` and ``A`` (consecutive labels differ by 1 < 2).

``B = ∅`` (skipping a label) is allowed and resets the adjacency constraint.
The minimum final label over states with ``S = V`` is ``λ_{2,1}(G)``.

This is the *ablation baseline* for experiment EA3: on small-diameter graphs
the paper's TSP route solves the same instances orders of magnitude faster,
because the reduction collapses the layer structure into a permutation.

State space is ``O(3^n)`` — capped accordingly.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.operations import graph_power

#: the BFS over (S, A) states explodes as 3^n
MAX_LAYER_DP_N = 13


def l21_layer_dp_span(graph: Graph, max_n: int = MAX_LAYER_DP_N) -> int:
    """``λ_{2,1}(G)`` via the layer DP (exact, any graph, exponential).

    >>> from repro.graphs.generators import cycle_graph
    >>> l21_layer_dp_span(cycle_graph(5))
    4
    """
    n = graph.n
    if n > max_n:
        raise ReproError(f"layer DP capped at n={max_n} (got {n})")
    if n == 0:
        return 0
    if n == 1:
        return 0

    # bitmask adjacency: nbr1 = G-neighbours, nbr2 = within distance 2
    # (graph_power pulls distances from the shared analysis oracle, so the
    # APSP here is the same matrix any earlier stage already computed)
    nbr1 = [0] * n
    for u, v in graph.edges():
        nbr1[u] |= 1 << v
        nbr1[v] |= 1 << u
    g2 = graph_power(graph, 2)
    nbr2 = [0] * n
    for u, v in g2.edges():
        nbr2[u] |= 1 << v
        nbr2[v] |= 1 << u

    full = (1 << n) - 1

    def independent_subsets(pool: int):
        """All G²-independent subsets of ``pool`` (including empty)."""
        # recursive enumeration with the lowest-bit branching rule
        out = [0]
        stack = [(pool, 0)]
        while stack:
            avail, chosen = stack.pop()
            if not avail:
                continue
            v = (avail & -avail).bit_length() - 1
            rest = avail & ~(1 << v)
            # branch 1: skip v
            stack.append((rest, chosen))
            # branch 2: take v (exclude its G²-neighbours)
            new_chosen = chosen | (1 << v)
            out.append(new_chosen)
            stack.append((rest & ~nbr2[v], new_chosen))
        return out

    # BFS over (S, A); depth = current label value.
    # Start: label 0 holds any non-empty G²-independent set (empty start is
    # pointless: shifting down gives another optimal labeling using label 0).
    seen: set[tuple[int, int]] = set()
    frontier: deque[tuple[int, int]] = deque()
    for b in independent_subsets(full):
        if b:
            state = (b, b)
            if state not in seen:
                seen.add(state)
                frontier.append(state)

    label = 0
    while frontier:
        next_frontier: deque[tuple[int, int]] = deque()
        for s, a in frontier:
            if s == full:
                return label
            blocked = 0
            m = a
            while m:
                v = (m & -m).bit_length() - 1
                blocked |= nbr1[v]
                m &= m - 1
            pool = full & ~s & ~blocked
            for b in independent_subsets(pool):
                # include b == 0 (skip the label); dedupe via `seen`
                state = (s | b, b)
                if state not in seen:
                    seen.add(state)
                    next_frontier.append(state)
        frontier = next_frontier
        label += 1
    raise ReproError("layer DP exhausted without covering V")  # pragma: no cover
