"""Degraded-mode approximate labeling: one-pass solve, certified gap."""

from repro.approx.solver import APPROX_ENGINE, ApproxResult, approx_labeling

__all__ = ["APPROX_ENGINE", "ApproxResult", "approx_labeling"]
