"""Stack-based simplify/select approximate labeling with a certified gap.

The degraded-mode tier of the serving stack: when the QoS router decides a
request cannot afford an exact (or heuristic-pipeline) solve, this module
answers in one pass — no branch-and-bound, no engine ladder — and certifies
how far the answer can be from optimal.

The algorithm is the register-allocation classic adapted to distance
constraints:

1. **Simplify** — repeatedly remove the vertex with the fewest remaining
   *requirement neighbours* (vertices within the spec's distance horizon,
   i.e. a positive entry in its requirement row from the lazy distance
   oracle) and push it on a stack.  Degrees update as vertices leave, so
   the stack bottom holds the loosely-constrained periphery and the top
   the tightly-constrained core.
2. **Select** — pop the stack (most-constrained vertices first) and give
   each vertex the smallest label compatible with the already-labeled
   ones, using the same jump-past-the-blocking-window first fit as
   :func:`repro.labeling.greedy.greedy_labeling`.

Feasibility is by construction: select never places a label inside a
forbidden window.  The **certified gap** comes from the existing
:func:`repro.labeling.bounds.lower_bound` machinery: ``lower_bound <=
optimum <= span``, so ``gap = span - lower_bound`` bounds the true
optimality loss and ``ratio = span / lower_bound`` is a per-instance
approximation certificate — no exact solve needed to trust it.

Large graphs never materialize an O(n^2) requirement matrix: both passes
fetch one requirement row per vertex through the graph's blocked oracle
(:meth:`~repro.graphs.analysis.GraphAnalysis.row`).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import GraphAnalysis, get_analysis
from repro.graphs.graph import Graph
from repro.labeling.bounds import lower_bound
from repro.labeling.labeling import Labeling, requirement_matrix
from repro.labeling.spec import LpSpec
from repro.obs.metrics import REGISTRY

#: The engine name the approx tier reports in responses and cache entries.
APPROX_ENGINE = "approx"

_M_SOLVES = REGISTRY.counter("repro_approx_solves_total")
_M_SOLVES.labels()  # materialize: the exposition shows 0, not nothing
_M_GAP = REGISTRY.gauge("repro_approx_gap")
_M_GAP.labels()
_M_RATIO = REGISTRY.gauge("repro_approx_ratio")
_M_RATIO.labels()


@dataclass(frozen=True)
class ApproxResult:
    """One approximate solve plus its optimality certificate.

    ``lower_bound <= optimum <= span`` always holds, so ``gap`` and
    ``ratio`` are sound without ever running an exact engine.
    """

    labeling: Labeling
    span: int
    lower_bound: int
    #: ``span - lower_bound`` — certified upper bound on the loss.
    gap: int
    #: ``span / max(lower_bound, 1)`` (1.0 for unconstrained instances).
    ratio: float
    #: Solve wall time, for the serving layer's accounting.
    seconds: float


def approx_labeling(
    graph: Graph,
    spec: LpSpec,
    analysis: GraphAnalysis | None = None,
    seed: int = 0,
) -> ApproxResult:
    """Simplify/select labeling with a certified optimality gap.

    Deterministic for a fixed ``seed``: elimination ties are broken by a
    seeded permutation, everything else is order-stable, so two calls with
    the same arguments return bit-identical labelings.

    >>> from repro.graphs.generators import cycle_graph
    >>> from repro.labeling.spec import L21
    >>> r = approx_labeling(cycle_graph(6), L21)
    >>> r.labeling.is_feasible(cycle_graph(6), L21)
    True
    >>> r.gap == r.span - r.lower_bound
    True
    """
    t0 = time.perf_counter()
    n = graph.n
    if n == 0:
        return _record(Labeling(()), 0, time.perf_counter() - t0)
    analysis = analysis if analysis is not None else get_analysis(graph)
    # Small graphs gather the requirement matrix once; large ones fetch one
    # requirement row per vertex per pass through the blocked oracle, so the
    # approx tier inherits the oracle's memory bound.
    req = (
        requirement_matrix(spec, analysis.distances)
        if analysis.dense_preferred
        else None
    )

    def row_of(v: int) -> np.ndarray:
        return (
            req[v]
            if req is not None
            else requirement_matrix(spec, analysis.row(v))
        )

    if req is not None:
        degrees = (req > 0).sum(axis=1).astype(np.int64)
    else:
        degrees = np.zeros(n, dtype=np.int64)
        for lo, hi, blk in analysis.iter_row_blocks():
            degrees[lo:hi] = (requirement_matrix(spec, blk) > 0).sum(axis=1)

    tiebreak = np.random.default_rng(seed).permutation(n)
    stack = _simplify(n, degrees, row_of, tiebreak)
    labels = _select(n, stack, row_of)

    lb = lower_bound(
        graph, spec, dist=analysis.distances if req is not None else None
    )
    labeling = Labeling(tuple(int(x) for x in labels))
    return _record(labeling, lb, time.perf_counter() - t0)


def _simplify(n, degrees, row_of, tiebreak) -> list[int]:
    """Chaitin-style elimination: min remaining requirement-degree first.

    A lazy heap holds ``(degree, tiebreak, vertex)`` triples; stale entries
    (the vertex left, or its degree has since dropped) are skipped on pop,
    which keeps the loop ``O(total pushes * log)`` without a decrease-key.
    """
    deg = degrees.copy()
    remaining = np.ones(n, dtype=bool)
    heap = [(int(deg[v]), int(tiebreak[v]), v) for v in range(n)]
    heapq.heapify(heap)
    stack: list[int] = []
    while heap:
        d, _t, v = heapq.heappop(heap)
        if not remaining[v] or d != deg[v]:
            continue
        remaining[v] = False
        stack.append(v)
        rv = row_of(v)
        nbrs = np.nonzero((rv > 0) & remaining)[0]
        if nbrs.size:
            deg[nbrs] -= 1
            for u in nbrs:
                heapq.heappush(heap, (int(deg[u]), int(tiebreak[u]), int(u)))
    return stack


def _select(n, stack, row_of) -> np.ndarray:
    """Pop the stack and first-fit each vertex (jump past blocking windows)."""
    labels = np.full(n, -1, dtype=np.int64)
    for v in reversed(stack):
        rv = row_of(v)
        constraining = np.nonzero((rv > 0) & (labels >= 0))[0]
        x = 0
        while True:
            gaps = np.abs(labels[constraining] - x)
            bad = gaps < rv[constraining]
            if not bad.any():
                break
            u = constraining[bad][0]
            x = int(labels[u] + rv[u])
        labels[v] = x
    return labels


def _record(labeling: Labeling, lb: int, seconds: float) -> ApproxResult:
    """Assemble the result and mirror the certificate into the registry."""
    span = labeling.span
    gap = span - lb
    ratio = (span / lb) if lb > 0 else 1.0
    _M_SOLVES.inc()
    _M_GAP.set(gap)
    _M_RATIO.set(round(ratio, 4))
    return ApproxResult(
        labeling=labeling,
        span=span,
        lower_bound=lb,
        gap=gap,
        ratio=ratio,
        seconds=seconds,
    )
