"""Perf-trajectory subsystem: BENCH_*.json emission and regression gates.

``repro.perf`` turns the repo's scattered perf asserts into one tracked
trajectory: :mod:`~repro.perf.suite` re-measures the E-series perf claims
over the named workload matrix, :mod:`~repro.perf.schema` serializes them
as schema-versioned ``BENCH_<k>.json`` files with environment provenance,
and :mod:`~repro.perf.baseline` renders a noise-aware regression verdict
against the committed ``benchmarks/baseline.json``.  Entry points:
``repro-label perf run|compare|baseline`` and ``make perf`` /
``make perf-quick``.
"""

from repro.perf.baseline import (
    DEFAULT_TOLERANCE,
    ComparisonReport,
    Verdict,
    compare,
    load_baseline,
    write_baseline,
)
from repro.perf.environment import environment_provenance
from repro.perf.schema import (
    SCHEMA_VERSION,
    PerfRecord,
    Trajectory,
    latest_bench_path,
    load_trajectory,
    next_bench_path,
    validate_trajectory,
    write_trajectory,
)
from repro.perf.suite import run_perf_suite

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "PerfRecord",
    "Trajectory",
    "Verdict",
    "ComparisonReport",
    "compare",
    "environment_provenance",
    "latest_bench_path",
    "load_baseline",
    "load_trajectory",
    "next_bench_path",
    "run_perf_suite",
    "validate_trajectory",
    "write_baseline",
    "write_trajectory",
]
