"""Schema-versioned perf-trajectory records (``BENCH_<k>.json``).

A *trajectory* is one run of the perf suite: an environment stamp
(python/numpy versions, CPU count, git SHA, a calibration time — see
:mod:`repro.perf.environment`) plus one :class:`PerfRecord` per scenario.
Each record carries every repeat's wall time and a flat dict of numeric
scenario metrics (spans, ratios, oracle counters such as
``apsp_run_count``, cache-hit stats).  Files are plain JSON so any later
session — or a CI artifact reader — can regenerate and diff them; the
``schema_version`` field lets future formats evolve without guessing.
"""

from __future__ import annotations

import json
import re
import statistics
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Bump when the BENCH_*.json layout changes incompatibly.
SCHEMA_VERSION = 1

#: Trajectory kinds: ``full``/``quick`` come from the perf suite,
#: ``bench`` from the pytest ``--perf-record`` hook in benchmarks/conftest.py.
KINDS = ("full", "quick", "bench")

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class PerfRecord:
    """One scenario's measurement: all repeats plus scenario metrics."""

    experiment: str
    wall_seconds: tuple[float, ...]
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def median_seconds(self) -> float:
        """Median over repeats — the noise-resistant central value the
        baseline comparator gates on."""
        return float(statistics.median(self.wall_seconds))

    def to_json(self) -> dict:
        """JSON form of one scenario record (walls rounded to microseconds)."""
        return {
            "experiment": self.experiment,
            "wall_seconds": [round(s, 6) for s in self.wall_seconds],
            "median_seconds": round(self.median_seconds, 6),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    @classmethod
    def from_json(cls, data: dict) -> "PerfRecord":
        """Parse one record; values are coerced to their schema types."""
        return cls(
            experiment=str(data["experiment"]),
            wall_seconds=tuple(float(s) for s in data["wall_seconds"]),
            # keep ints as ints: counters like apsp_run_count must not churn
            # to 1.0 on every load -> promote round trip of the baseline
            metrics={
                str(k): v if isinstance(v, int) else float(v)
                for k, v in data.get("metrics", {}).items()
            },
        )


@dataclass
class Trajectory:
    """One perf-suite run: environment provenance plus scenario records."""

    environment: dict
    records: list[PerfRecord]
    kind: str = "full"
    schema_version: int = SCHEMA_VERSION

    def record_map(self) -> dict[str, PerfRecord]:
        """Records keyed by experiment name."""
        return {r.experiment: r for r in self.records}

    def to_json(self) -> dict:
        """JSON form of the whole trajectory (schema-versioned)."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "environment": self.environment,
            "records": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Trajectory":
        """Parse and validate a trajectory payload (raises on problems)."""
        problems = validate_trajectory(data)
        if problems:
            raise ReproError(
                "invalid trajectory: " + "; ".join(problems)
            )
        return cls(
            environment=dict(data["environment"]),
            records=[PerfRecord.from_json(r) for r in data["records"]],
            kind=str(data["kind"]),
            schema_version=int(data["schema_version"]),
        )


def validate_trajectory(data: object) -> list[str]:
    """All schema problems in ``data`` (empty list == valid).

    Unknown extra keys are allowed (the baseline file rides a
    ``tolerances`` map on the same payload); missing/ill-typed required
    fields are not.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}"
        )
    if data.get("kind") not in KINDS:
        problems.append(f"kind must be one of {KINDS}, got {data.get('kind')!r}")
    if not isinstance(data.get("environment"), dict):
        problems.append("environment must be an object")
    records = data.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records must be a non-empty list")
        return problems
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(rec.get("experiment"), str) or not rec.get("experiment"):
            problems.append(f"{where}.experiment must be a non-empty string")
        walls = rec.get("wall_seconds")
        if (
            not isinstance(walls, list)
            or not walls
            or not all(isinstance(w, (int, float)) and w >= 0 for w in walls)
        ):
            problems.append(
                f"{where}.wall_seconds must be a non-empty list of non-negative numbers"
            )
        metrics = rec.get("metrics", {})
        if not isinstance(metrics, dict) or not all(
            isinstance(k, str) and isinstance(v, (int, float))
            for k, v in metrics.items()
        ):
            problems.append(f"{where}.metrics must map strings to numbers")
    return problems


# ---------------------------------------------------------------------------
# BENCH_<k>.json file management
# ---------------------------------------------------------------------------
def bench_paths(directory: str | Path = ".") -> list[Path]:
    """All ``BENCH_<k>.json`` files under ``directory``, ordered by ``k``."""
    root = Path(directory)
    found = [
        (int(m.group(1)), p)
        for p in root.glob("BENCH_*.json")
        if (m := _BENCH_RE.match(p.name))
    ]
    return [p for _, p in sorted(found)]


def next_bench_path(directory: str | Path = ".") -> Path:
    """The first unused ``BENCH_<k>.json`` slot under ``directory``."""
    existing = bench_paths(directory)
    k = int(_BENCH_RE.match(existing[-1].name).group(1)) + 1 if existing else 0
    return Path(directory) / f"BENCH_{k}.json"


def latest_bench_path(directory: str | Path = ".") -> Path | None:
    """The highest-numbered ``BENCH_<k>.json``, or ``None`` if none exist."""
    existing = bench_paths(directory)
    return existing[-1] if existing else None


def write_trajectory(
    trajectory: Trajectory,
    path: str | Path | None = None,
    directory: str | Path = ".",
) -> Path:
    """Serialize ``trajectory`` to ``path`` (default: the next BENCH slot)."""
    out = Path(path) if path is not None else next_bench_path(directory)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trajectory.to_json(), indent=2) + "\n")
    return out


def load_trajectory(path: str | Path) -> Trajectory:
    """Parse and schema-validate one trajectory file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read trajectory {path}: {exc}") from exc
    return Trajectory.from_json(data)
