"""Environment provenance for perf trajectories.

Wall times are only comparable *on the machine that produced them*, so every
trajectory carries the stamp of where it ran — interpreter and NumPy
versions, CPU count, platform, git SHA — plus a **calibration time**: the
wall time of a fixed, dependency-free kernel (the per-source BFS reference
APSP on a pinned graph).  The baseline comparator divides scenario medians
by this calibration, so a uniformly slower machine (CI runner vs laptop)
moves both sides of the ratio and cancels out, while a genuine code
regression moves only the scenario.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time

import numpy as np

from repro.parallel.pool import effective_cpu_count

#: Calibration kernel input: pinned so the workload is bit-identical across
#: machines and sessions.  n=48 keeps it ~tens of milliseconds.
_CALIBRATION_N = 48
_CALIBRATION_SEED = 0
#: Vectorized-kernel iterations per calibration pass, sized so the NumPy
#: half of the blend weighs about as much as the Python-loop half.
_CALIBRATION_VEC_ITERS = 25


def git_sha() -> str | None:
    """HEAD SHA of the checkout this package runs from, or ``None``.

    Resolved relative to the package source, not the process cwd — a CLI
    invocation from some unrelated directory (itself possibly a git repo)
    must not stamp that repo's SHA into the trajectory's provenance.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def calibration_seconds(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the pinned calibration blend.

    The blend sums two kernels on the same pinned graph: the
    interpreter-bound reference APSP (per-source ``deque`` BFS, tracking
    Python-loop speed) and the vectorized multi-source APSP repeated enough
    to carry similar weight (tracking NumPy/BLAS throughput).  Gated
    scenarios sit somewhere between those regimes, so normalizing by the
    blend keeps cross-machine ratios stable even when a machine's
    interpreter-vs-BLAS balance differs from the baseline machine's.
    """
    from repro.graphs import generators as gen
    from repro.graphs.traversal import (
        all_pairs_distances,
        all_pairs_distances_reference,
    )

    g = gen.random_graph_with_diameter_at_most(
        _CALIBRATION_N, 2, seed=_CALIBRATION_SEED
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        all_pairs_distances_reference(g)
        for _ in range(_CALIBRATION_VEC_ITERS):
            all_pairs_distances(g)
        best = min(best, time.perf_counter() - t0)
    return best


def environment_provenance(calibrate: bool = True) -> dict:
    """The provenance stamp written into every trajectory."""
    env: dict = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        # Effective CPUs (affinity/cgroup mask), not the host's logical
        # count: a trajectory from a pinned CI leg must record the cores
        # the run could actually use, or scaling numbers are misread.
        "cpu_count": effective_cpu_count(),
        "logical_cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha(),
        "argv": list(sys.argv),
    }
    if calibrate:
        env["calibration_seconds"] = round(calibration_seconds(), 6)
    return env
