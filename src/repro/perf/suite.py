"""The perf suite: scenario runners behind ``repro-label perf run``.

Each scenario re-measures one perf claim the repo has already paid for —
the vectorized-APSP win and the one-APSP-per-solve invariant (E12), the
service cache's duplicate-stream speedup (E11), the dynamic engine's
churn-stream win (E13), the concurrent front end's serving throughput
over the SERVICE hot/cold streams (E14), the Theorem-2 reduction
and end-to-end engine cost over the named workload matrix — and returns a
:class:`~repro.perf.schema.PerfRecord` with per-repeat wall times plus the
scenario's counters (``apsp_run_count``, cache-hit stats, spans/ratios).
``run_perf_suite`` strings the records into a schema-versioned
:class:`~repro.perf.schema.Trajectory` ready to be written as
``BENCH_<k>.json`` and gated by :mod:`repro.perf.baseline`.

Every scenario copies its graphs before timing: ``GraphAnalysis`` memoizes
on the instance, so a shared fixture would make the second repeat free and
the median meaningless.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
import time

import numpy as np

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.graphs.operations import relabel
from repro.graphs.traversal import (
    all_pairs_distances,
    all_pairs_distances_reference,
    apsp_run_count,
)
from repro.dynamic import full_apsp_refresh_count
from repro.harness.runner import run_engines
from repro.harness.workloads import (
    DYNAMIC,
    MATRIX,
    SERVICE,
    churn_maintain,
    churn_recompute,
    churn_stream,
    matrix_sweep,
    service_stream,
)
from repro.labeling.spec import L21
from repro.perf.environment import environment_provenance
from repro.perf.schema import PerfRecord, Trajectory
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.service.api import LabelingService
from repro.service.protocol import SolveRequest

#: Matrix legs a ``--quick`` run sweeps, per the CI perf-gate: one
#: reduction leg plus the n=512 blocked-oracle smoke.
QUICK_LEGS = ("diam2-small", "large-512")


def _timed_repeats(fn, repeats: int, min_seconds: float = 0.0) -> tuple[float, ...]:
    """Per-call wall times over ``repeats``, batching tiny kernels.

    Sub-millisecond kernels timed one call at a time are dominated by
    scheduler noise; when ``min_seconds`` is set, a warm-up call sizes an
    iteration batch so each repeat measures at least that much work, and
    the recorded value is the per-call average over the batch.  The
    warm-up also keeps first-call effects (allocator, caches) out of the
    measured repeats.
    """
    t0 = time.perf_counter()
    fn()
    t_once = time.perf_counter() - t0
    iters = 1
    if min_seconds > 0:
        iters = max(1, math.ceil(min_seconds / max(t_once, 1e-9)))
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        walls.append((time.perf_counter() - t0) / iters)
    return tuple(walls)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
def apsp_oracle_scenario(quick: bool, repeats: int) -> PerfRecord:
    """E12's two claims as trajectory metrics.

    Times the vectorized APSP kernel; records its speedup over the
    per-source BFS reference and — the invariant counter — how many kernel
    runs one cold end-to-end service solve costs (``apsp_run_count``,
    expected 1).
    """
    n = 60 if quick else 100
    g = gen.random_graph_with_diameter_at_most(n, 2, seed=0)
    walls = _timed_repeats(lambda: all_pairs_distances(g), repeats, min_seconds=0.05)
    t_ref = min(
        _timed_repeats(lambda: all_pairs_distances_reference(g), max(2, repeats))
    )

    solve_n = 32 if quick else 60
    solve_g = gen.random_graph_with_diameter_at_most(
        solve_n, 2, seed=1
    ).copy()  # cold oracle
    before = apsp_run_count()
    LabelingService().submit(SolveRequest(solve_g, L21, engine="lk"))
    runs_per_solve = apsp_run_count() - before

    return PerfRecord(
        # size-suffixed: quick and full runs measure different n and must
        # never be compared against each other's baseline entry
        experiment=f"apsp_oracle:n={n}",
        wall_seconds=walls,
        metrics={
            "n": n,
            "solve_n": solve_n,  # the invariant counter's graph, not the timed one
            "apsp_speedup": round(t_ref / min(walls), 2) if min(walls) > 0 else 0.0,
            "apsp_run_count": runs_per_solve,
        },
    )


def service_cache_scenario(quick: bool, repeats: int) -> PerfRecord:
    """E11's duplicate-stream claim: a 90%-dup stream through the service.

    Each repeat rebuilds the service cold (fresh cache, fresh graph copies)
    and times one batch; metrics carry the cache counters of the last
    repeat plus the speedup over per-request from-scratch solving.
    """
    n = 20 if quick else 28
    total = 10 if quick else 16
    unique = max(1, round(total * 0.1))
    engine = "lk"

    def make_stream() -> list[SolveRequest]:
        """Fresh 90%-dup request stream (relabeled copies of few bases)."""
        bases = [
            gen.random_graph_with_diameter_at_most(n, 2, seed=17 * s)
            for s in range(unique)
        ]
        return [
            SolveRequest(
                relabel(bases[i % unique], np.random.default_rng(1000 + i)
                        .permutation(n).tolist()),
                L21,
                engine=engine,
            )
            for i in range(total)
        ]

    svc: LabelingService | None = None

    def run_batch() -> None:
        """One timed repeat: cold service, one batch of the stream."""
        nonlocal svc
        svc = LabelingService(workers=1)
        svc.submit_many(make_stream())

    walls = _timed_repeats(run_batch, repeats)

    # no-cache baseline: what every request would cost solved from scratch.
    # Regenerates its stream inside the timed region exactly like run_batch,
    # and gets the same warm-up + median-of-repeats treatment so the
    # speedup metric isn't one cold sample against a warmed median.
    from repro.reduction.solver import solve_labeling

    def run_nocache() -> None:
        """Baseline: every stream request solved from scratch."""
        for req in make_stream():
            solve_labeling(req.graph, req.spec, engine=engine)

    t_nocache = statistics.median(_timed_repeats(run_nocache, repeats))

    stats = svc.stats()
    median = statistics.median(walls)
    return PerfRecord(
        experiment=f"service_cache:n={n}",
        wall_seconds=walls,
        metrics={
            "n": n,
            "requests": total,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "cache_hit_rate": round(stats.hit_rate, 4),
            "nocache_speedup": round(t_nocache / median, 2) if median > 0 else 0.0,
        },
    )


def reduction_leg_scenario(leg_name: str, repeats: int) -> PerfRecord:
    """Theorem-2 reduction wall time over one matrix leg (E3's kernel)."""
    from repro.labeling.spec import LpSpec

    workloads = matrix_sweep(leg_name)
    spec = LpSpec(MATRIX[leg_name].spec)

    def run_leg() -> None:
        """Reduce every workload of the leg once (fresh graph copies)."""
        for wl in workloads:
            reduce_to_path_tsp(wl.graph.copy(), spec)

    walls = _timed_repeats(run_leg, repeats, min_seconds=0.05)
    return PerfRecord(
        experiment=f"reduce:{leg_name}",
        wall_seconds=walls,
        metrics={
            "graphs": len(workloads),
            "total_n": sum(wl.n for wl in workloads),
            "total_m": sum(wl.graph.m for wl in workloads),
        },
    )


def oracle_scaling_scenario(leg_name: str, repeats: int) -> PerfRecord:
    """The blocked-oracle leg: end-to-end labeling at sizes with no matrix.

    One timed pass over a ``reduction=False`` matrix leg: cold graph copy,
    streamed eccentricities (one full row-block sweep through the
    :class:`~repro.graphs.analysis.LazyDistanceOracle`), then a greedy
    L(2,1) labeling via per-vertex requirement rows and a blocked
    feasibility check.  The dense int64 matrix is never materialized.

    Metrics carry the two gated signals — ``oracle_peak_bytes`` (the
    resident row-block high-water mark, which the baseline comparator
    never allows to rise at fixed n) and ``row_block_hit_rate`` (which
    must not fall) — plus ``dense_fraction``, the peak as a fraction of
    the ``n^2 * 8`` dense-int64 footprint the oracle replaced (the
    acceptance bound is <= 0.25: full int16 residency).
    """
    from repro.graphs.analysis import get_analysis
    from repro.labeling.greedy import greedy_labeling
    from repro.labeling.spec import LpSpec

    leg = MATRIX[leg_name]
    wl = matrix_sweep(leg_name)[0]
    spec = LpSpec(leg.spec)

    stats: dict = {}

    def run_pass() -> None:
        """One cold pass: eccentricities + greedy labeling + verification."""
        nonlocal stats
        g = wl.graph.copy()  # cold oracle every repeat
        analysis = get_analysis(g)
        analysis.eccentricities  # noqa: B018 — streamed block sweep
        labeling = greedy_labeling(g, spec)
        assert labeling.is_feasible(g, spec)
        stats = analysis.oracle_stats()

    walls = _timed_repeats(run_pass, repeats)
    n = wl.n
    return PerfRecord(
        experiment=f"oracle_scaling:n={n}",
        wall_seconds=walls,
        metrics={
            "n": n,
            "m": wl.graph.m,
            "oracle_peak_bytes": int(stats["peak_bytes"]),
            "row_block_hit_rate": round(stats["hit_rate"], 4),
            "oracle_evictions": int(stats["evictions"]),
            "resident_blocks": int(stats["resident_blocks"]),
            "dense_fraction": round(stats["peak_bytes"] / (n * n * 8), 4),
        },
    )


def engine_sweep_scenario(repeats: int) -> PerfRecord:
    """E7's ladder: full pipeline per engine over small diam-2 workloads."""
    engines = ["lk", "two_opt", "nearest_neighbor"]

    def run_sweep() -> list:
        # fresh graph copies: run_engines prewarms each workload's analysis
        """One full engine-ladder pass over fresh workload copies."""
        fresh = [
            dataclasses.replace(w, graph=w.graph.copy())
            for w in matrix_sweep("diam2-small")
        ]
        return run_engines(fresh, L21, engines)

    runs: list = []

    def timed() -> None:
        """Timed wrapper keeping the last sweep's runs for the metrics."""
        nonlocal runs
        runs = run_sweep()

    walls = _timed_repeats(timed, repeats)
    lk_ratios = [r.ratio for r in runs if r.engine == "lk"]
    return PerfRecord(
        experiment="engine_sweep",
        wall_seconds=walls,
        metrics={
            "engines": len(engines),
            "runs": len(runs),
            "lk_mean_ratio": round(float(np.mean(lk_ratios)), 4),
        },
    )


def dynamic_churn_scenario(quick: bool, repeats: int) -> PerfRecord:
    """The DYNAMIC leg: maintain distances through an edge-churn stream.

    Times the delta engine (insert relaxation / affected-row recompute,
    see :mod:`repro.dynamic`) over the leg's deterministic mutation
    stream, against the pre-dynamic cost model — one full APSP per
    mutation.  Metrics carry the measured speedup and the gated
    ``full_apsp_refresh_count``: how many times one stream pass abandoned
    incremental repair, which the baseline comparator never allows to
    rise.
    """
    leg = DYNAMIC["churn-diam2-small" if quick else "churn-diam2-dense"]
    base, ops = churn_stream(leg)

    walls = _timed_repeats(
        lambda: churn_maintain(base, ops), repeats, min_seconds=0.02
    )
    t_full = statistics.median(
        _timed_repeats(lambda: churn_recompute(base, ops), repeats,
                       min_seconds=0.02)
    )
    before = full_apsp_refresh_count()
    churn_maintain(base, ops)
    fallbacks = full_apsp_refresh_count() - before

    median = statistics.median(walls)
    return PerfRecord(
        experiment=f"dynamic_churn:{leg.name}",
        wall_seconds=walls,
        metrics={
            "n": leg.n,
            "steps": len(ops),
            "recompute_speedup": round(t_full / median, 2) if median > 0 else 0.0,
            "full_apsp_refresh_count": fallbacks,
        },
    )


def dynamic_churn_large_scenario(repeats: int) -> PerfRecord:
    """Large-graph churn: the delta engine repairing an int16 matrix.

    Same protocol as :func:`dynamic_churn_scenario` but over the
    ``churn-sparse-large`` leg (n = 512), where the pre-dynamic cost model
    — one full APSP per mutation — would dominate the whole suite if
    actually swept.  The speedup denominator is therefore *estimated* from
    one measured cold blocked rebuild times the stream length (reported as
    ``recompute_speedup_est``, not gated); the gated metric stays the
    measured ``full_apsp_refresh_count``.
    """
    from repro.graphs.analysis import get_analysis

    leg = DYNAMIC["churn-sparse-large"]
    base, ops = churn_stream(leg)

    walls = _timed_repeats(lambda: churn_maintain(base, ops), repeats)
    t_rebuild = statistics.median(
        _timed_repeats(lambda: get_analysis(base.copy()).distances, repeats)
    )

    before = full_apsp_refresh_count()
    churn_maintain(base, ops)
    fallbacks = full_apsp_refresh_count() - before

    median = statistics.median(walls)
    est_full = t_rebuild * (len(ops) + 1)
    return PerfRecord(
        experiment=f"dynamic_churn:{leg.name}",
        wall_seconds=walls,
        metrics={
            "n": leg.n,
            "steps": len(ops),
            "recompute_speedup_est": round(est_full / median, 2)
            if median > 0 else 0.0,
            "full_apsp_refresh_count": fallbacks,
        },
    )


def concurrent_service_scenario(quick: bool, repeats: int) -> PerfRecord:
    """The SERVICE leg: requests/sec through the concurrent front end.

    Serves one mixed hot/cold stream (``harness.workloads.SERVICE``)
    through a fresh :class:`ConcurrentLabelingService` at 1, 4 and (full
    runs) 8 workers, submitting from concurrent client threads so the
    sharded cache's locks see real contention.  ``wall_seconds`` times the
    4-worker configuration (the serving default); metrics carry the
    per-width requests/sec, the 4-vs-1 scaling ratio, the deterministic
    ``cache_hit_rate`` (hits + coalesced over submissions — a function of
    the stream, not of scheduling), and the gated ``shard_lock_wait``
    contention rate, which the baseline comparator never allows to rise.

    Both of those gated values are sourced from the observability registry
    (:data:`repro.obs.REGISTRY`): the hit rate from counter deltas
    captured around the 4-worker serve (``repro_server_{hits,coalesced,
    submitted,rejected}_total``) and the contention rate from the
    ``repro_shard_contention_rate`` gauge sampled immediately after it,
    while the 4-worker server's cache still owns the gauge.  The scenario
    therefore *is* a consistency check: the numbers the perf gate
    compares are the same ones ``repro-label metrics`` exposes.

    The gated ``workers_speedup_4`` ratio is measured separately, on the
    ``cold-scaling`` leg (every request a distinct engine run — nothing
    for the cache or in-flight dedup to absorb), 4 workers vs 1.  With
    more than one effective CPU the 4-worker server auto-offloads cold
    solves to the persistent shared-memory pool, so the ratio measures
    exactly what the tentpole claims: real multi-core scaling past the
    GIL.  The ``("floor", 2.0)`` gate applies only where it is physically
    measurable — trajectories also carry ``effective_cpus`` and the
    comparator skips the floor below 4 — so a pinned single-core run
    reports its honest ~1.0 without failing.
    """
    from concurrent.futures import ThreadPoolExecutor, wait

    from repro.obs import REGISTRY
    from repro.parallel.pool import effective_cpu_count
    from repro.service.server import ConcurrentLabelingService

    leg = SERVICE["mixed-small" if quick else "mixed-dense"]
    cold = SERVICE["cold-scaling"]
    widths = (1, 4) if quick else (1, 4, 8)
    clients = 4

    def serve(
        workers: int, leg=leg
    ) -> tuple[float, ConcurrentLabelingService]:
        """Serve one fresh stream at ``workers``; returns (wall, server)."""
        stream = service_stream(leg)  # fresh graphs: cold oracles, cold cache
        server = ConcurrentLabelingService(workers=workers)
        server.prewarm()  # pool start-up is not serving throughput
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            futures = list(pool.map(server.submit, stream))
            wait(futures)
        wall = time.perf_counter() - t0
        server.shutdown(wait=True)
        return wall, server

    # Server counters this scenario diffs around the 4-worker serve.  The
    # registry is process-global, but each serve() runs to completion
    # before the next begins, so the delta isolates exactly one serve.
    delta_names = (
        "repro_server_hits_total",
        "repro_server_coalesced_total",
        "repro_server_submitted_total",
        "repro_server_rejected_total",
    )

    rps: dict[int, list[float]] = {w: [] for w in widths}
    walls = []
    hit_rate = 0.0
    shard_lock_wait = 0.0
    serve(widths[-1])  # warm-up (allocator, thread machinery)
    for _ in range(repeats):
        for w in widths:
            before = {name: REGISTRY.value(name) for name in delta_names}
            wall, _ = serve(w)
            rps[w].append(leg.requests / wall if wall > 0 else 0.0)
            if w == 4:
                walls.append(wall)
                d = {
                    name: REGISTRY.value(name) - before[name]
                    for name in delta_names
                }
                accepted = (
                    d["repro_server_submitted_total"]
                    - d["repro_server_rejected_total"]
                )
                hit_rate = (
                    d["repro_server_hits_total"]
                    + d["repro_server_coalesced_total"]
                ) / accepted if accepted else 0.0
                # Sample the contention gauge while this serve's cache
                # still owns it (the next construction takes it over).
                shard_lock_wait = REGISTRY.value("repro_shard_contention_rate")

    # Scaling measurement: the cold-only leg, 4 workers (auto-offloaded
    # on multi-core hosts) against 1 (inline).  Kept outside the mixed
    # loop so cache behaviour and scaling never contaminate each other.
    cold_rps: dict[int, list[float]] = {1: [], 4: []}
    for _ in range(repeats):
        for w in (1, 4):
            wall, _ = serve(w, cold)
            cold_rps[w].append(cold.requests / wall if wall > 0 else 0.0)
    cold_median = {w: statistics.median(r) for w, r in cold_rps.items()}

    median_rps = {w: statistics.median(r) for w, r in rps.items()}
    metrics = {
        "requests": leg.requests,
        "unique": leg.unique,
        "effective_cpus": effective_cpu_count(),
        "cache_hit_rate": round(hit_rate, 4),
        "shard_lock_wait": round(shard_lock_wait, 4),
        "workers_speedup_4": round(cold_median[4] / cold_median[1], 2)
        if cold_median[1] > 0 else 0.0,
        "cold_rps_w1": round(cold_median[1], 2),
        "cold_rps_w4": round(cold_median[4], 2),
    }
    for w in widths:
        metrics[f"rps_w{w}"] = round(median_rps[w], 2)
    return PerfRecord(
        experiment=f"concurrent_service:{leg.name}",
        wall_seconds=tuple(walls),
        metrics=metrics,
    )


def network_service_scenario(quick: bool, repeats: int) -> PerfRecord:
    """The wire leg: open-loop saturation curve through the HTTP front end.

    Starts a real :class:`~repro.net.server.BackgroundServer` (TCP socket,
    asyncio event loop, inline solves) and sweeps a seeded open-loop ramp
    against ``POST /solve`` — three offered-rps steps held for a fixed
    window each, arrivals Poisson and never waiting on responses, so
    queueing delay lands in the recorded percentiles instead of silently
    throttling the sender (:mod:`repro.harness.loadgen`).

    Each rate step contributes flat metrics — ``p50/p95/p99_ms_r<rate>``,
    ``err_rate_r<rate>``, ``achieved_rps_r<rate>`` — the saturation curve
    as the trajectory records it.  ``wall_seconds`` holds the per-step
    walls (send window plus tail drain).  No gate applies: 429s at the
    overload end of the ramp are the backpressure design working, and the
    curve's whole point is to show where they start.

    ``repeats`` is accepted for signature symmetry but the ramp runs once:
    every step already aggregates hundreds of requests, and the quick/full
    variants are distinct experiments (different rates) so the comparator
    never mixes them.
    """
    del repeats
    from repro.harness.loadgen import default_payloads, run_load
    from repro.net.server import BackgroundServer

    rates = [20.0, 60.0, 120.0] if quick else [50.0, 100.0, 200.0]
    duration = 0.75 if quick else 1.5
    server = BackgroundServer(workers=2, offload=False)
    try:
        # one warm lap: the measured steps then exercise the steady state
        run_load(server.url, rates=[10.0], duration=0.5, seed=7)
        report = run_load(server.url, rates=rates, duration=duration, seed=7,
                          payloads=default_payloads(seed=7))
    finally:
        server.shutdown(drain=True)

    walls = []
    metrics: dict[str, float | int] = {
        "steps": len(report.steps),
        "total_sent": report.total_sent,
        "total_errors": report.total_errors,
    }
    for step in report.steps:
        rate = int(step.offered_rps)
        walls.append(
            step.completed / step.achieved_rps
            if step.achieved_rps > 0 else step.duration
        )
        metrics[f"p50_ms_r{rate}"] = step.p50_ms
        metrics[f"p95_ms_r{rate}"] = step.p95_ms
        metrics[f"p99_ms_r{rate}"] = step.p99_ms
        metrics[f"err_rate_r{rate}"] = round(step.error_rate, 4)
        metrics[f"achieved_rps_r{rate}"] = round(step.achieved_rps, 2)
    return PerfRecord(
        # rate-suffixed variant: quick and full ramps sweep different
        # offered rates and must never share a baseline entry
        experiment=f"network_service:{'quick' if quick else 'full'}",
        wall_seconds=tuple(walls),
        metrics=metrics,
    )


def qos_overload_scenario(quick: bool, repeats: int) -> PerfRecord:
    """The degraded-tier leg: certified approx quality plus a live overload.

    Two measurements share one payload pool (the loadgen's deterministic
    diam-2 family, ``seed=7``):

    - **Certified quality (gated).**  Every pool instance is solved by the
      one-pass simplify/select tier directly; ``approx_ratio`` records the
      *worst* certified ``span / lower_bound`` over the pool.  The solver
      is deterministic for a fixed pool, so the number is exact, and the
      baseline comparator holds it under the 1.5 absolute ceiling and
      never lets it worsen (``("ceiling", 1.5)`` in ``METRIC_GATES``).
      ``wall_seconds`` times this sweep — the degraded tier's cost is a
      perf signal too.
    - **Live overload (recorded, not gated).**  One open-loop step at
      well past single-worker exact capacity, against a 1-worker inline
      server with a capacity-1 cache (all-cold traffic) and ``auto``-tier
      payloads carrying a real deadline.  The recorded metrics are the
      acceptance criterion's raw material: the served-in-deadline rate
      (ok over non-dropped sends), the approx share of answers, and the
      drop counts.  Scheduling noise makes these unfit for a hard gate —
      the feasibility invariant is asserted instead: every 200 the ramp
      verified must be feasible, overload or not.
    """
    from repro.approx import approx_labeling
    from repro.harness.loadgen import default_payload_instances, run_load
    from repro.net.server import BackgroundServer
    from repro.service.server import ConcurrentLabelingService

    pool = default_payload_instances(
        count=10, seed=7, tier="auto", deadline_ms=600
    )

    ratios: list[float] = []
    gaps: list[int] = []

    def certify() -> None:
        """One certified sweep: approx-solve every pool instance cold."""
        nonlocal ratios, gaps
        ratios, gaps = [], []
        for inst in pool:
            g = inst.graph.copy()  # cold analysis every repeat
            res = approx_labeling(g, inst.spec)
            assert res.labeling.is_feasible(g, inst.spec)
            ratios.append(res.ratio)
            gaps.append(res.gap)

    walls = _timed_repeats(certify, repeats, min_seconds=0.02)

    rate = 150.0 if quick else 200.0
    duration = 0.75 if quick else 1.5
    service = ConcurrentLabelingService(
        workers=1, offload=False, queue_size=8, cache_capacity=1
    )
    server = BackgroundServer(service=service)
    try:
        report = run_load(
            server.url, rates=[rate], duration=duration, seed=7,
            payloads=pool,
        )
    finally:
        server.shutdown(drain=True)
        service.shutdown(wait=True)
    step = report.steps[0]
    if step.infeasible:
        raise ReproError(
            f"qos_overload: {step.infeasible} infeasible responses under "
            "overload — the degraded tier broke the feasibility invariant"
        )
    in_deadline = step.sent - step.dropped
    ok = step.completed  # 200s that verified feasible
    return PerfRecord(
        experiment=f"qos_overload:{'quick' if quick else 'full'}",
        wall_seconds=walls,
        metrics={
            "pool": len(pool),
            "approx_ratio": round(max(ratios), 4),
            "approx_gap_max": max(gaps),
            "overload_rps": rate,
            "overload_sent": step.sent,
            "overload_ok": ok,
            "overload_dropped": step.dropped,
            "overload_errors": step.errors,
            "overload_approx": step.approx,
            "approx_share": round(step.approx / ok, 4) if ok else 0.0,
            "served_in_deadline_rate": round(ok / in_deadline, 4)
            if in_deadline else 0.0,
        },
    )


# ---------------------------------------------------------------------------
# Suite assembly
# ---------------------------------------------------------------------------
def run_perf_suite(
    quick: bool = False,
    repeats: int | None = None,
    legs: list[str] | None = None,
) -> Trajectory:
    """Run every scenario and return the stamped trajectory.

    ``quick`` shrinks sizes, drops the engine sweep and the large churn
    leg, and defaults to :data:`QUICK_LEGS` — the shape the CI perf-gate
    runs.  ``legs`` overrides which matrix legs are swept; each leg is
    routed by its ``reduction`` flag to either the Theorem-2 reduction
    scenario or the blocked-oracle scaling scenario.
    """
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    if legs is None:
        legs = list(QUICK_LEGS) if quick else list(MATRIX)
    unknown = [leg for leg in legs if leg not in MATRIX]
    if unknown:
        raise ReproError(
            f"unknown matrix legs {unknown}; known: {', '.join(MATRIX)}"
        )

    records = [
        apsp_oracle_scenario(quick, repeats),
        service_cache_scenario(quick, repeats),
        dynamic_churn_scenario(quick, repeats),
        concurrent_service_scenario(quick, repeats),
        network_service_scenario(quick, repeats),
        qos_overload_scenario(quick, repeats),
    ]
    records.extend(
        reduction_leg_scenario(leg, repeats)
        for leg in legs if MATRIX[leg].reduction
    )
    records.extend(
        oracle_scaling_scenario(leg, repeats)
        for leg in legs if not MATRIX[leg].reduction
    )
    if not quick:
        records.append(dynamic_churn_large_scenario(repeats))
        records.append(engine_sweep_scenario(repeats))

    return Trajectory(
        environment=environment_provenance(),
        records=records,
        kind="quick" if quick else "full",
    )
