"""Baseline regression gate: verdicts for a trajectory vs ``baseline.json``.

The committed baseline is a normal trajectory payload plus a per-experiment
``tolerances`` map.  Comparison is noise-aware on two axes:

- **median-of-repeats** — each side's central value ignores one-off stalls;
- **calibration normalization** — when both environments carry
  ``calibration_seconds`` (see :mod:`repro.perf.environment`), medians are
  divided by it first, so a uniformly faster/slower machine cancels out of
  the ratio and only code-relative slowdowns remain.

Wall-time gating is per experiment: ratio ≤ ~1 is ``ok``, ratio within the
experiment's tolerance is ``slower`` (pass, but reported), beyond it is a
``regression``.  On top of wall time, :data:`METRIC_GATES` guards the
invariant counters — ``apsp_run_count`` and ``full_apsp_refresh_count``
must not grow, ``cache_hit_rate`` must not fall — so a future PR cannot
give back the oracle, cache or incremental-repair wins while staying
inside the timing noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.perf.schema import PerfRecord, Trajectory

#: Current/baseline normalized-median ratio above which an experiment fails.
#: Must stay < 2.0: the acceptance gate is "an injected 2x slowdown fails".
DEFAULT_TOLERANCE = 1.8

#: Ratios up to this are ``ok`` (pure noise); above it but within tolerance
#: they are reported as ``slower``.
_NOISE_FLOOR = 1.15

#: Counter metrics gated by direction, not ratio: ``max`` means the current
#: value may not exceed baseline + slack, ``min`` means it may not fall
#: below baseline - slack, ``floor`` means the current value must reach the
#: stated absolute threshold (baseline-independent — the threshold *is* the
#: acceptance criterion, not a drift bound), and ``ceiling`` means the
#: current value may exceed neither the stated absolute threshold nor the
#: committed baseline by more than :data:`_CEILING_DRIFT` (both at once:
#: the threshold is the acceptance criterion, the baseline check keeps a
#: good value from quietly eroding back up to it).
METRIC_GATES: dict[str, tuple[str, float]] = {
    "apsp_run_count": ("max", 0.0),
    "cache_hit_rate": ("min", 0.02),
    # the dynamic engine may never abandon more incremental repairs per
    # churn stream than the committed baseline records
    "full_apsp_refresh_count": ("max", 0.0),
    # sharded-cache lock contention per operation (SERVICE scenario): the
    # slack absorbs scheduler noise, but a design change that reintroduces
    # a global-lock hot spot fails here, not in the timing noise
    "shard_lock_wait": ("max", 0.05),
    # the shared-memory pool's raison d'être: 4 serving workers must beat
    # 1 by >= 2x on the cold-only stream.  Enforced only where physically
    # measurable — the record's own ``effective_cpus`` must be >= 4 (the
    # CI pool-scaling leg); a pinned single-core run reports its honest
    # ~1.0 and the floor is skipped, never faked
    "workers_speedup_4": ("floor", 2.0),
    # blocked-oracle residency (ORACLE scaling legs): at fixed n the
    # row-block LRU's byte high-water mark may never rise — a consumer
    # regressing to a dense gather fails here long before it times out —
    # and the block hit rate may never fall below baseline - slack
    "oracle_peak_bytes": ("max", 0.0),
    "row_block_hit_rate": ("min", 0.02),
    # degraded tier quality (QOS scenario): the worst certified
    # span/lower_bound ratio over the deterministic payload pool.  The
    # 1.5 absolute ceiling is the acceptance criterion; the
    # baseline-relative check below it means the ratio may never worsen
    # even while comfortably under the ceiling
    "approx_ratio": ("ceiling", 1.5),
}

#: ``floor``-gated metrics are only enforceable when the measuring run had
#: the cores to show scaling; below this effective-CPU count the floor is
#: skipped (the metric is still recorded and still must be present).
_FLOOR_MIN_CPUS = 4

#: Baseline-relative allowance for ``ceiling``-gated metrics: the current
#: value may sit this far above the committed baseline before it counts as
#: erosion.  The certified ratio is deterministic over a fixed payload
#: pool, so this only needs to absorb pool re-seeds, not measurement noise.
_CEILING_DRIFT = 0.05

#: Verdict statuses that do NOT fail the comparison.
PASSING = frozenset({"ok", "slower", "new", "skipped"})


def _check_tolerance(name: str, tol: float) -> float:
    """Tolerances must keep the acceptance invariant: a 2x slowdown fails.

    The lower bound rejects typos (a tolerance <= 1.0 would flag pure
    noise as regression); the upper bound keeps "injected >=2x slowdown
    exits non-zero" a property of the system, not a convention.
    """
    tol = float(tol)
    if not 1.0 < tol < 2.0:
        raise ReproError(
            f"tolerance for {name!r} must be in (1.0, 2.0), got {tol}"
        )
    return tol


@dataclass(frozen=True)
class Verdict:
    """One experiment's comparison outcome."""

    experiment: str
    status: str  # ok | slower | regression | metric-regression | new | skipped | no-overlap
    detail: str
    ratio: float | None = None

    @property
    def passed(self) -> bool:
        """Whether this verdict's status is non-failing."""
        return self.status in PASSING

    def to_json(self) -> dict:
        """JSON form of the verdict (ratio included when present)."""
        out = {
            "experiment": self.experiment,
            "status": self.status,
            "detail": self.detail,
        }
        if self.ratio is not None:
            out["ratio"] = round(self.ratio, 3)
        return out


@dataclass
class ComparisonReport:
    """Every per-experiment verdict plus the aggregate gate.

    ``warnings`` carries non-failing environment caveats — today the
    calibration-affinity mismatch (baseline and run measured on different
    CPU counts) — rendered as WARN lines so a drifting ratio is read with
    the right suspicion instead of silently trusted.
    """

    verdicts: list[Verdict] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every experiment's verdict passed (warnings don't fail)."""
        return all(v.passed for v in self.verdicts)

    def render(self) -> str:
        """Human-readable PASS/FAIL listing plus the aggregate gate line."""
        lines = [f"[WARN] {w}" for w in self.warnings]
        for v in self.verdicts:
            mark = "PASS" if v.passed else "FAIL"
            ratio = f" ({v.ratio:.2f}x)" if v.ratio is not None else ""
            lines.append(f"[{mark}] {v.experiment}: {v.status}{ratio} — {v.detail}")
        failed = [v.experiment for v in self.verdicts if not v.passed]
        lines.append(
            "perf gate: PASS" if not failed else f"perf gate: FAIL ({', '.join(failed)})"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON form: the aggregate flag plus every verdict and warning."""
        return {
            "passed": self.passed,
            "warnings": list(self.warnings),
            "verdicts": [v.to_json() for v in self.verdicts],
        }


def _calibration(environment: dict) -> float | None:
    """The environment's calibration seconds, if present and positive."""
    cal = environment.get("calibration_seconds")
    if isinstance(cal, (int, float)) and cal > 0:
        return float(cal)
    return None


def normalized_median(record: PerfRecord, environment: dict) -> float:
    """Median wall time divided by the environment's calibration (if any).

    Only meaningful for comparison when *both* sides are normalized the
    same way — :func:`compare` applies calibration only when both
    environments carry it, falling back to raw seconds otherwise.
    """
    cal = _calibration(environment)
    return record.median_seconds / cal if cal else record.median_seconds


def _compare_metrics(cur: PerfRecord, base: PerfRecord) -> list[str]:
    """Violation descriptions for the gated metrics.

    A gated metric the baseline has but the current record dropped is
    itself a violation — otherwise renaming/removing ``apsp_run_count``
    would silently disarm the invariant gate.
    """
    violations = []
    for name, (direction, slack) in METRIC_GATES.items():
        if name not in base.metrics:
            continue
        if name not in cur.metrics:
            violations.append(f"gated metric {name} missing from current record")
            continue
        c, b = cur.metrics[name], base.metrics[name]
        if direction == "max" and c > b + slack:
            violations.append(f"{name} rose {b:g} -> {c:g}")
        elif direction == "min" and c < b - slack:
            violations.append(f"{name} fell {b:g} -> {c:g}")
        elif direction == "floor":
            cpus = cur.metrics.get("effective_cpus", 0)
            if cpus >= _FLOOR_MIN_CPUS and c < slack:
                violations.append(
                    f"{name} {c:g} below required floor {slack:g} "
                    f"(effective_cpus={cpus:g})"
                )
        elif direction == "ceiling":
            if c > slack:
                violations.append(
                    f"{name} {c:g} above absolute ceiling {slack:g}"
                )
            elif c > b + _CEILING_DRIFT:
                violations.append(
                    f"{name} worsened {b:g} -> {c:g} "
                    f"(drift allowance {_CEILING_DRIFT:g})"
                )
    return violations


def compare(
    current: Trajectory,
    baseline: Trajectory,
    tolerances: dict[str, float] | None = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> ComparisonReport:
    """Gate ``current`` against ``baseline``, experiment by experiment.

    Experiments only in ``current`` are ``new`` (pass).  Experiments only in
    ``baseline`` are ``skipped`` (pass, but reported): the committed baseline
    is a union of quick and full records, and any single run — the quick CI
    leg or the full local sweep — legitimately covers a subset of it.
    """
    tolerances = tolerances or {}
    report = ComparisonReport()
    # calibration_seconds is measured under the machine's *current* CPU
    # affinity; when the core count changed between the baseline run and
    # this one, normalization no longer cancels machine speed for the
    # multi-core scenarios and every ratio deserves suspicion
    for key in ("cpu_count", "logical_cpu_count"):
        b_val = baseline.environment.get(key)
        c_val = current.environment.get(key)
        if b_val is not None and c_val is not None and b_val != c_val:
            report.warnings.append(
                f"calibration mismatch: {key} changed {b_val} -> {c_val} "
                "between baseline and this run; normalized ratios may "
                "drift — re-baseline on this machine if verdicts look off"
            )
    cur_map = current.record_map()
    base_map = baseline.record_map()
    # calibration cancels machine speed only if BOTH sides carry it;
    # mixing a calibrated side with a raw one would skew ratios ~1/cal
    use_cal = (
        _calibration(baseline.environment) is not None
        and _calibration(current.environment) is not None
    )

    for name, base_rec in base_map.items():
        if name not in cur_map:
            report.verdicts.append(
                Verdict(
                    experiment=name,
                    status="skipped",
                    detail=f"in baseline but not in this {current.kind} trajectory",
                )
            )
            continue
        cur_rec = cur_map[name]
        base_norm = (
            normalized_median(base_rec, baseline.environment)
            if use_cal else base_rec.median_seconds
        )
        cur_norm = (
            normalized_median(cur_rec, current.environment)
            if use_cal else cur_rec.median_seconds
        )
        metric_violations = _compare_metrics(cur_rec, base_rec)
        if base_norm <= 0:
            # wall gate is meaningless, but the counter gates still apply
            report.verdicts.append(
                Verdict(name, "metric-regression", "; ".join(metric_violations))
                if metric_violations
                else Verdict(name, "ok", "baseline median is zero; wall gate skipped")
            )
            continue
        ratio = cur_norm / base_norm
        tol = float(tolerances.get(name, default_tolerance))
        if metric_violations:
            status, detail = "metric-regression", "; ".join(metric_violations)
        elif ratio <= min(_NOISE_FLOOR, tol):
            # a tolerance tighter than the noise floor is still honored
            status, detail = "ok", f"within noise floor {min(_NOISE_FLOOR, tol):.2f}x"
        elif ratio <= tol:
            status, detail = "slower", f"within tolerance {tol:.2f}x"
        else:
            status, detail = "regression", (
                f"normalized median {cur_norm:.4f} vs baseline {base_norm:.4f}, "
                f"tolerance {tol:.2f}x"
            )
        report.verdicts.append(Verdict(name, status, detail, ratio=ratio))

    for name in cur_map:
        if name not in base_map:
            report.verdicts.append(
                Verdict(name, "new", "not in baseline; record with `perf baseline`")
            )
    if not set(cur_map) & set(base_map):
        # all-skipped + all-new would "pass" while gating nothing — a
        # renamed/resized scenario must not silently disarm the gate
        report.verdicts.append(
            Verdict(
                experiment="(overlap)",
                status="no-overlap",
                detail=(
                    "current trajectory and baseline share no experiments; "
                    "refresh the baseline with `perf baseline`"
                ),
            )
        )
    return report


# ---------------------------------------------------------------------------
# Baseline file I/O
# ---------------------------------------------------------------------------
def baseline_payload(
    trajectory: Trajectory, tolerances: dict[str, float] | None = None
) -> dict:
    """The committed-baseline JSON: trajectory + explicit per-experiment
    tolerances (visible and hand-editable in review)."""
    data = trajectory.to_json()
    data["tolerances"] = {
        rec.experiment: _check_tolerance(
            rec.experiment,
            (tolerances or {}).get(rec.experiment, DEFAULT_TOLERANCE),
        )
        for rec in trajectory.records
    }
    return data


def write_baseline(
    trajectory: Trajectory,
    path: str | Path,
    tolerances: dict[str, float] | None = None,
    merge: bool = True,
) -> Path:
    """Write (by default: merge) ``trajectory`` into the baseline at ``path``.

    The committed baseline is a *union* of quick and full records, and no
    single run covers all of it — a full run never produces the quick-size
    records the CI perf-gate compares against.  Merging keeps the records
    (and tolerances) the promoted trajectory doesn't cover, so the
    ROADMAP's refresh workflow (`make perf` + `perf baseline`) cannot
    silently disarm the quick gate.  ``merge=False`` starts over.
    """
    if trajectory.kind == "bench":
        raise ReproError(
            "cannot promote a kind='bench' trajectory (per-test pytest "
            "recordings are uncalibrated and their nodeids would pollute "
            "the baseline); promote a `perf run` trajectory instead"
        )
    if _calibration(trajectory.environment) is None:
        raise ReproError(
            "cannot promote an uncalibrated trajectory: without "
            "calibration_seconds the merged baseline would gate raw "
            "machine-dependent seconds"
        )
    out = Path(path)
    trajectory, tolerances = (
        _merged(out, trajectory, tolerances) if merge and out.exists()
        else (trajectory, tolerances)
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(baseline_payload(trajectory, tolerances), indent=2) + "\n")
    return out


def _merged(
    path: Path, new: Trajectory, tolerances: dict[str, float] | None
) -> tuple[Trajectory, dict[str, float]]:
    """Merge a promoted trajectory into the existing baseline file."""
    old, old_tol = load_baseline(path)
    # the merged file carries ONE environment (the new one), so records kept
    # from the old baseline must be rescaled from the old machine's
    # calibration to the new one — otherwise their seconds would later be
    # normalized by the wrong calibration and the gate would drift by the
    # machines' speed ratio.  Without calibration on both sides the raw
    # seconds are kept (the comparator falls back to raw in that case too).
    old_cal, new_cal = _calibration(old.environment), _calibration(new.environment)
    scale = new_cal / old_cal if old_cal and new_cal else 1.0
    records = {
        r.experiment: PerfRecord(
            r.experiment, tuple(w * scale for w in r.wall_seconds), dict(r.metrics)
        )
        for r in old.records
    }
    records.update(new.record_map())  # promoted records win on shared names
    merged_tol = dict(old_tol)
    merged_tol.update(tolerances or {})
    return (
        Trajectory(
            environment=new.environment,
            records=list(records.values()),
            kind=new.kind if new.kind == old.kind else "full",
        ),
        merged_tol,
    )


def load_baseline(path: str | Path) -> tuple[Trajectory, dict[str, float]]:
    """Parse a baseline file into its trajectory and tolerance map."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    trajectory = Trajectory.from_json(data)
    raw = data.get("tolerances", {})
    if not isinstance(raw, dict):
        raise ReproError(f"baseline {path}: tolerances must be an object")
    return trajectory, {
        str(k): _check_tolerance(str(k), v) for k, v in raw.items()
    }
