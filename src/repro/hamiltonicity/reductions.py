"""The paper's two hardness gadgets, built faithfully and testably.

**Theorem 1** (HAMILTONIAN PATH is W[1]-hard for clique-width): from ``G``
pick any vertex ``v``, add a false twin ``v'`` of ``v``, then pendant leaves
``w`` on ``v`` and ``w'`` on ``v'``.  ``G`` has a Hamiltonian *cycle* iff the
gadget has a Hamiltonian *path* (necessarily from ``w`` to ``w'``).  The
construction adds 3 vertices and increases clique-width by at most 4.

**Theorem 3** (Griggs–Yeh, used for the diameter-2 W[1]-hardness): from
``G`` on ``n`` vertices build ``Ḡ`` plus a universal vertex ``x``.  The
result has diameter <= 2 and satisfies:  ``G`` has a Hamiltonian path iff
``λ_{2,1}(gadget) <= n``.  (Griggs–Yeh 1992, Theorem 1.1 direction as used
by the paper's Theorem 3.)

Both equivalences are verified exhaustively on small graphs by the
test-suite and experiment E9 — the point of this module is that the
reductions are *executable*, not just stated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operations import (
    add_false_twin,
    add_leaf,
    add_universal_vertex,
    complement,
)


@dataclass(frozen=True)
class GadgetResult:
    """A constructed gadget plus the bookkeeping its equivalence needs."""

    graph: Graph
    #: vertices the equivalence statement mentions (e.g. forced endpoints)
    special: dict[str, int]


def hc_to_hp_gadget(graph: Graph, pivot: int = 0) -> GadgetResult:
    """Theorem 1 construction: HC(G)  <=>  HP(gadget).

    ``pivot`` is the vertex ``v`` that gets the false twin.  The gadget's
    Hamiltonian path, when it exists, runs between the two leaves ``w`` and
    ``w'``.

    >>> from repro.graphs.generators import cycle_graph
    >>> g = hc_to_hp_gadget(cycle_graph(4)).graph
    >>> g.n, g.m
    (7, 8)
    """
    if graph.n < 3:
        raise GraphError("HC gadget needs a graph with >= 3 vertices")
    graph._check_vertex(pivot)
    g1, twin = add_false_twin(graph, pivot)
    g2, leaf_v = add_leaf(g1, pivot)
    g3, leaf_twin = add_leaf(g2, twin)
    return GadgetResult(
        graph=g3,
        special={
            "pivot": pivot,
            "twin": twin,
            "leaf_pivot": leaf_v,
            "leaf_twin": leaf_twin,
        },
    )


def griggs_yeh_gadget(graph: Graph) -> GadgetResult:
    """Theorem 3 construction: complement + universal vertex, diameter <= 2.

    **Equivalence** (verified exhaustively in the tests / experiment E9):
    ``G`` on ``n`` vertices has a Hamiltonian path iff the gadget admits an
    ``L(2,1)``-labeling of span at most ``n + 1``.

    Forward: a Hamiltonian path ``v_1..v_n`` of ``G`` takes labels
    ``l(v_i) = i - 1``; consecutive ``v_i`` are G-adjacent, hence
    *non-adjacent* in the gadget (distance 2 via ``x``), so gaps of 1 are
    legal exactly there; ``l(x) = n + 1`` keeps gap 2 from everything.
    Backward: with span ``n + 1`` there are ``n + 2`` label values; ``x``
    needs a 2-gap on both sides, so it must sit at a boundary label and
    blocks two values, forcing the remaining ``n`` vertices onto ``n``
    *consecutive* values — and every unit gap forces a G-edge, i.e. the
    label order is a Hamiltonian path of ``G``.

    >>> from repro.graphs.generators import path_graph
    >>> griggs_yeh_gadget(path_graph(3)).graph.n
    4
    """
    if graph.n < 1:
        raise GraphError("Griggs-Yeh gadget needs a non-empty graph")
    comp = complement(graph)
    g, x = add_universal_vertex(comp)
    return GadgetResult(graph=g, special={"universal": x, "n_original": graph.n})
