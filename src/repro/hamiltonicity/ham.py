"""Hamiltonian path / cycle decision with witnesses, by bitmask DP.

Needed to *test* the paper's two hardness gadgets end-to-end: Theorem 1's
HC -> HP construction and Theorem 3's Griggs–Yeh HP -> L(2,1) construction
are both verified as genuine equivalences on exhaustive small graphs, which
requires trusted hamiltonicity deciders on the gadget outputs.

The DP is the reachability skeleton of Held–Karp (boolean instead of
min-plus): ``reach[S][v]`` = "some path visits exactly S and ends at v",
advanced subset-by-subset with vectorized neighbourhood masks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph

#: boolean table is ``2^n * n`` bytes
MAX_HAM_N = 22


def _reach_table(graph: Graph, anchored: int | None = None) -> np.ndarray:
    """``reach[S, v]`` over all subsets; anchor restricts starts to one vertex."""
    n = graph.n
    if n > MAX_HAM_N:
        raise ReproError(f"hamiltonicity DP capped at n={MAX_HAM_N} (got {n})")
    adj = graph.adjacency_matrix(dtype=np.bool_)
    reach = np.zeros((1 << n, n), dtype=np.bool_)
    if anchored is None:
        for v in range(n):
            reach[1 << v, v] = True
    else:
        reach[1 << anchored, anchored] = True
    arange = np.arange(n)
    for s in range(1, 1 << n):
        row = reach[s]
        if not row.any():
            continue
        # can extend to any k adjacent to some endpoint v in S, k not in S
        ext = adj[row].any(axis=0)
        outside = (s >> arange) & 1 == 0
        for k in arange[ext & outside]:
            reach[s | (1 << k), k] = True
    return reach


def has_hamiltonian_path(graph: Graph) -> bool:
    """Does G have a Hamiltonian path?  (n = 0 / 1 count as yes.)"""
    n = graph.n
    if n <= 1:
        return True
    reach = _reach_table(graph)
    return bool(reach[(1 << n) - 1].any())


def find_hamiltonian_path(graph: Graph) -> list[int] | None:
    """A Hamiltonian path as a vertex list, or ``None``."""
    n = graph.n
    if n == 0:
        return []
    if n == 1:
        return [0]
    reach = _reach_table(graph)
    full = (1 << n) - 1
    ends = np.flatnonzero(reach[full])
    if len(ends) == 0:
        return None
    return _walk_back(graph, reach, full, int(ends[0]))


def has_hamiltonian_cycle(graph: Graph) -> bool:
    """Does G have a Hamiltonian cycle?  Requires ``n >= 3``."""
    n = graph.n
    if n < 3:
        return False
    reach = _reach_table(graph, anchored=0)
    full = (1 << n) - 1
    back_to_start = np.array([graph.has_edge(v, 0) for v in range(n)])
    return bool((reach[full] & back_to_start).any())


def find_hamiltonian_cycle(graph: Graph) -> list[int] | None:
    """A Hamiltonian cycle as a vertex list (closing edge implicit), or None."""
    n = graph.n
    if n < 3:
        return None
    reach = _reach_table(graph, anchored=0)
    full = (1 << n) - 1
    for v in range(n):
        if reach[full, v] and graph.has_edge(v, 0):
            return _walk_back(graph, reach, full, v)
    return None


def _walk_back(graph: Graph, reach: np.ndarray, s: int, end: int) -> list[int]:
    """Reconstruct a path from the BFS reachability layers, end to start."""
    order = [end]
    v = end
    while s != (1 << v):
        prev_s = s & ~(1 << v)
        nxt = None
        for u in graph.neighbors(v):
            if (prev_s >> u) & 1 and reach[prev_s, u]:
                nxt = u
                break
        if nxt is None:  # pragma: no cover - table consistency guard
            raise ReproError("hamiltonian reconstruction failed")
        order.append(nxt)
        s, v = prev_s, nxt
    order.reverse()
    return order
