"""Hamiltonicity deciders and the paper's hardness gadgets (Theorems 1 & 3)."""

from repro.hamiltonicity.ham import (
    has_hamiltonian_path,
    has_hamiltonian_cycle,
    find_hamiltonian_path,
    find_hamiltonian_cycle,
)
from repro.hamiltonicity.reductions import (
    hc_to_hp_gadget,
    griggs_yeh_gadget,
    GadgetResult,
)

__all__ = [
    "has_hamiltonian_path",
    "has_hamiltonian_cycle",
    "find_hamiltonian_path",
    "find_hamiltonian_cycle",
    "hc_to_hp_gadget",
    "griggs_yeh_gadget",
    "GadgetResult",
]
