#!/usr/bin/env python
"""Span survey: λ_{2,1} across every implemented graph family.

One table, every family in the library, solved through the TSP pipeline,
with the closed form (where one exists) and the paper-relevant parameters
(diameter, Δ, modular-width) alongside.  A compact end-to-end exercise of
the whole repository.

Run:  python examples/span_survey.py
"""

from repro import L21, solve_labeling
from repro.graphs import generators as gen
from repro.graphs.families import paley_graph, turan_graph
from repro.graphs.traversal import diameter
from repro.harness.tables import render_table
from repro.labeling.special import (
    l21_span_complete,
    l21_span_complete_bipartite,
    l21_span_cycle,
    l21_span_star,
    l21_span_wheel,
)
from repro.partition.modular import modular_width
from repro.reduction.validation import is_applicable

FAMILIES = [
    ("C5 (cycle)", gen.cycle_graph(5), l21_span_cycle(5)),
    ("K7 (complete)", gen.complete_graph(7), l21_span_complete(7)),
    ("K1,6 (star)", gen.star_graph(6), l21_span_star(6)),
    ("W7 (wheel)", gen.wheel_graph(7), l21_span_wheel(7)),
    ("K3,4", gen.complete_bipartite_graph(3, 4), l21_span_complete_bipartite(3, 4)),
    ("Petersen", gen.petersen_graph(), 9),
    ("Paley(13)", paley_graph(13), 12),               # n-1 (ham complement)
    ("Turan(9,3)", turan_graph(9, 3), 10),            # n + r - 2
    ("K2,2,2 (octahedron)", gen.complete_multipartite_graph([2, 2, 2]), None),
    ("random diam-2 (n=10)", gen.random_graph_with_diameter_at_most(10, 2, seed=0), None),
    ("random geometric (n=12)", gen.random_geometric_graph(12, 0.7, seed=1)[0], None),
    ("hypercube Q3", gen.hypercube_graph(3), None),   # diameter 3: not applicable
]


def main() -> None:
    rows = []
    for name, g, closed_form in FAMILIES:
        d = diameter(g)
        if not is_applicable(g, L21):
            rows.append([name, g.n, g.m, d, g.max_degree(),
                         modular_width(g), "n/a (diam>2)", closed_form or ""])
            continue
        r = solve_labeling(g, L21, engine="held_karp" if g.n <= 14 else "lk")
        status = "" if closed_form is None else (
            "✓" if r.span == closed_form else f"MISMATCH({closed_form})"
        )
        rows.append([name, g.n, g.m, d, g.max_degree(),
                     modular_width(g), r.span, status])
    print(render_table(
        ["family", "n", "m", "diam", "Δ", "mw", "λ(2,1)", "closed form"],
        rows,
    ))
    mismatches = [r for r in rows if "MISMATCH" in str(r[-1])]
    assert not mismatches, mismatches
    print("\nall closed-form families reproduced exactly by the TSP pipeline")


if __name__ == "__main__":
    main()
