#!/usr/bin/env python
"""Corollary 2 walk-through: diameter-2 labeling as PARTITION INTO PATHS.

For L(p,q) on a diameter-2 graph the reduced TSP has only two edge weights,
and the optimum is governed by a single combinatorial quantity: the minimum
number of paths partitioning the vertices of G (p <= q) or of its complement
(p > q).  This script shows the whole correspondence on concrete graphs:

* the optimal path partition (the certificate),
* the span formula  λ = (n-1)·min(p,q) + |p-q|·(s-1),
* agreement with the general TSP pipeline,
* the modular-width parameter that makes this FPT in the paper.

Run:  python examples/diameter2_partition.py
"""

from repro import L21, LpSpec, solve_labeling
from repro.graphs.generators import (
    complete_multipartite_graph,
    petersen_graph,
    random_graph_with_diameter_at_most,
)
from repro.partition.diameter2 import solve_lpq_diameter2, span_from_path_count
from repro.partition.modular import modular_width


def show(name, graph, spec) -> None:
    r = solve_lpq_diameter2(graph, spec, method="exact")
    tsp = solve_labeling(graph, spec, engine="held_karp")
    p, q = spec.p
    where = "complement of G" if r.on_complement else "G"
    print(f"--- {name}:  n={graph.n}, m={graph.m}, spec={spec}")
    print(f"    partition of {where} into s={r.path_count} paths:")
    for path in r.partition:
        print(f"      {path}")
    print(f"    span formula: (n-1)*{min(p,q)} + {abs(q-p)}*(s-1) = "
          f"{span_from_path_count(graph.n, p, q, r.path_count)}")
    print(f"    span via partition route : {r.span}")
    print(f"    span via TSP (Held-Karp) : {tsp.span}")
    print(f"    modular-width (FPT parameter): {modular_width(graph)}")
    assert r.span == tsp.span
    print()


def main() -> None:
    # K_{3,3,3}: its complement is three disjoint triangles -> the partition
    # structure is forced and easy to eyeball.
    show("complete tripartite K_{3,3,3}", complete_multipartite_graph([3, 3, 3]), L21)

    # Petersen graph, the classic diameter-2 benchmark.
    show("Petersen graph", petersen_graph(), L21)

    # p < q goes through G directly instead of the complement.
    show("random diam-2 graph with L(1,2)",
         random_graph_with_diameter_at_most(10, 2, seed=4), LpSpec((1, 2)))


if __name__ == "__main__":
    main()
