#!/usr/bin/env python
"""Radio-frequency assignment — the paper's motivating application.

Transmitters are points in the plane; transmitters within interference
range must get frequencies at least 2 apart ('very close'), transmitters
within two hops must differ ('close').  That is L(2,1)-labeling of the
interference graph, and when the network is dense enough to have small
diameter, the paper's TSP framework solves it.

This script builds a random deployment, solves with several engines, and
prints the assigned spectrum plus the frequency reuse pattern.

Run:  python examples/frequency_assignment.py [n_transmitters] [seed]
"""

import sys

from repro import L21, solve_labeling
from repro.graphs.generators import random_geometric_graph
from repro.graphs.traversal import diameter
from repro.reduction.validation import analyze


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    # deployment: n transmitters in the unit square, range 0.6
    graph, positions = random_geometric_graph(n, radius=0.6, seed=seed)
    report = analyze(graph, L21)
    print(f"deployment: {n} transmitters, {graph.m} interference pairs, "
          f"diameter {report.diameter}")

    if not report.applicable:
        print(f"reduction precondition failed ({report.reason()}); "
              "densify the network or raise k — falling back is not needed "
              "for the default parameters.")
        return

    engines = ["held_karp", "hoogeveen", "lk", "nearest_neighbor"] if n <= 16 \
        else ["hoogeveen", "lk", "nearest_neighbor"]

    print(f"\n{'engine':20s} {'span':>6s} {'#freqs':>7s}  guarantee")
    best_span = None
    best = None
    for engine in engines:
        result = solve_labeling(graph, L21, engine=engine)
        guarantee = {"held_karp": "exact", "hoogeveen": "<= 1.5 OPT"}.get(
            engine, "heuristic"
        )
        nfreq = len(set(result.labeling.labels))
        print(f"{engine:20s} {result.span:6d} {nfreq:7d}  {guarantee}")
        if best_span is None or result.span < best_span:
            best_span, best = result.span, result

    assert best is not None
    print(f"\nbest assignment (span {best.span}):")
    for v in range(graph.n):
        x, y = positions[v]
        print(f"  tx{v:<3d} at ({x:.2f}, {y:.2f})  ->  frequency {best.labeling[v]}")

    # frequency reuse: how many transmitters share each frequency
    reuse: dict[int, int] = {}
    for f in best.labeling:
        reuse[f] = reuse.get(f, 0) + 1
    shared = {f: c for f, c in sorted(reuse.items()) if c > 1}
    print(f"\nreused frequencies: {shared if shared else 'none (all distinct)'}")


if __name__ == "__main__":
    main()
