#!/usr/bin/env python
"""Parallel engine portfolio on a larger instance.

Heuristic TSP engines have complementary strengths; running several in
separate processes and keeping the best labeling is a cheap way to buy
quality with cores instead of wall time.  This is the E10 extension
experiment as a runnable script.

Run:  python examples/parallel_portfolio.py [n] [seed]
"""

import sys
import time

from repro import L21
from repro.graphs.generators import random_graph_with_diameter_at_most
from repro.parallel.portfolio import portfolio_solve, sequential_portfolio


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    graph = random_graph_with_diameter_at_most(n, 2, seed=seed)
    engines = ["lk", "three_opt", "or_opt", "two_opt"]
    print(f"instance: n={graph.n}, m={graph.m}; engines: {engines}")

    t0 = time.perf_counter()
    seq = sequential_portfolio(graph, L21, engines)
    t_seq = time.perf_counter() - t0
    print(f"sequential portfolio: span={seq.span}  "
          f"(winner: {seq.engine})  in {t_seq:.2f}s")

    t0 = time.perf_counter()
    par = portfolio_solve(graph, L21, engines)
    t_par = time.perf_counter() - t0
    print(f"parallel portfolio  : span={par.span}  "
          f"(winner: {par.engine})  in {t_par:.2f}s")

    if t_par > 0:
        print(f"speed-up: {t_seq / t_par:.2f}x "
              f"({'wins' if t_par < t_seq else 'overhead-bound at this size'})")


if __name__ == "__main__":
    main()
