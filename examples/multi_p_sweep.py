#!/usr/bin/env python
"""Generality of the framework: one solver, many constraint vectors p.

The paper's point is that prior algorithms are tailored to one p and do not
transfer; the TSP route handles *any* p with p_max <= 2 p_min on graphs of
diameter <= dim(p), unchanged.  This script sweeps a family of specs over a
diameter-3 graph and prints spans, optimal orders, and which distances bind.

Run:  python examples/multi_p_sweep.py
"""

from repro import LpSpec, solve_labeling
from repro.graphs.generators import random_graph_with_diameter_at_most
from repro.graphs.traversal import diameter
from repro.reduction.validation import analyze

SPECS = [
    LpSpec((2, 1)),        # the classic, k = 2
    LpSpec((1, 1)),        # coloring of the square
    LpSpec((2, 2)),        # uniform, k = 2
    LpSpec((2, 1, 1)),     # k = 3
    LpSpec((2, 2, 1)),     # k = 3
    LpSpec((2, 2, 2)),     # uniform, k = 3
    LpSpec((3, 2, 2)),     # non-unit p_min
    LpSpec((4, 3, 2)),     # widest legal spread at p_min = 2
]


def main() -> None:
    g = random_graph_with_diameter_at_most(11, 3, seed=11)
    # make sure we actually exercise k = 3 specs
    d = diameter(g)
    print(f"graph: n={g.n}, m={g.m}, diameter={d}\n")
    print(f"{'spec':14s} {'applicable':>10s} {'span':>6s}  note")
    for spec in SPECS:
        report = analyze(g, spec)
        if not report.applicable:
            print(f"{str(spec):14s} {'no':>10s} {'-':>6s}  {report.reason()}")
            continue
        res = solve_labeling(g, spec, engine="held_karp")
        print(f"{str(spec):14s} {'yes':>10s} {res.span:6d}  "
              f"order {res.order[:6]}...")
    print("\nEvery applicable spec ran through the *same* code path: "
          "reduce -> Held-Karp -> prefix sums.")


if __name__ == "__main__":
    main()
