#!/usr/bin/env python
"""External-solver interop: export the reduction to TSPLIB, import a tour.

The paper's practical proposal is to use Concorde/LKH as the engine.  Those
binaries read TSPLIB files and write `.tour` files; this script runs that
exact loop with our own LK-style engine standing in for the external binary
(this environment is offline), producing files you could hand to a real
LKH unchanged:

    reduce(G, p) --> instance.tsp --> [solver] --> best.tour --> labeling

Run:  python examples/external_solver_interop.py [n] [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro import L21, solve_labeling
from repro.graphs.generators import random_graph_with_diameter_at_most
from repro.reduction.from_tour import labeling_from_order
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.tsp.lin_kernighan import lk_style_path
from repro.tsp.tsplib import read_tour, read_tsplib, write_tour, write_tsplib


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    g = random_graph_with_diameter_at_most(n, 2, seed=seed)
    red = reduce_to_path_tsp(g, L21)
    workdir = Path(tempfile.mkdtemp(prefix="repro_tsplib_"))

    # --- our side: export ------------------------------------------------
    tsp_file = workdir / "instance.tsp"
    write_tsplib(red.instance, tsp_file, name=f"l21_n{n}_s{seed}")
    print(f"wrote TSPLIB instance: {tsp_file}")
    print(f"  (dimension {red.n}, weights in "
          f"[{int(red.instance.weights[red.instance.weights > 0].min())}, "
          f"{int(red.instance.weights.max())}])")

    # --- 'external solver': reads the file cold, writes a .tour ----------
    external_instance = read_tsplib(tsp_file)
    path = lk_style_path(external_instance, kicks=30, seed=0)
    tour_file = workdir / "best.tour"
    write_tour(path.order, tour_file)
    print(f"'external' LK engine wrote: {tour_file}  (length {path.length:.0f})")

    # --- our side: import the tour, rebuild and verify the labeling ------
    order = read_tour(tour_file)
    labeling = labeling_from_order(red, order)
    labeling.require_feasible(g, L21)
    print(f"reconstructed labeling span: {labeling.span}")

    reference = solve_labeling(g, L21, engine="lk")
    print(f"in-process reference span  : {reference.span}")
    print("interop loop verified: file-trip output is a feasible labeling.")


if __name__ == "__main__":
    main()
