#!/usr/bin/env python
"""Quickstart: solve L(2,1)-labeling for a small-diameter graph via TSP.

The paper's pipeline in five lines: build a graph, check the reduction
applies, solve with an exact engine, inspect the labeling, and see the
reduced TSP instance it came from.

Run:  python examples/quickstart.py
"""

from repro import Graph, L21, solve_labeling
from repro.graphs.traversal import diameter
from repro.reduction.validation import is_applicable

# The Petersen graph: 10 vertices, diameter 2 — squarely in Theorem 2's range.
edges = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),      # outer cycle
    (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),      # inner pentagram
    (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),      # spokes
]
g = Graph(10, edges)

print(f"graph: n={g.n}, m={g.m}, diameter={diameter(g)}")
print(f"reduction applicable for {L21}? {is_applicable(g, L21)}")

# Solve exactly: reduce to Metric Path TSP, run Held-Karp, rebuild the labels.
result = solve_labeling(g, L21, engine="held_karp")

print(f"\noptimal span: {result.span}  (engine: {result.engine}, exact: {result.exact})")
print(f"optimal vertex order (the Hamiltonian path in H): {result.order}")
print("labels:", dict(enumerate(result.labeling.labels)))

# The labeling is re-verified internally; double-check here for show.
assert result.labeling.is_feasible(g, L21)

# A heuristic engine gives the same span on this instance, much faster at scale:
heuristic = solve_labeling(g, L21, engine="lk")
print(f"\nLK-style heuristic span: {heuristic.span} "
      f"(gap: {heuristic.span - result.span})")
