#!/usr/bin/env python
"""Observability walk-through: metrics, traces, and the GIL ceiling.

Drives a small mixed hot/cold stream through the concurrent serving front
end and then reads everything the observability layer recorded about it:

* the Prometheus exposition of the process registry (counters the legacy
  APIs like ``apsp_run_count()`` now delegate to),
* request-latency histogram quantiles (p50/p95/p99),
* per-worker busy/idle accounting — the direct measurement of why thread
  workers cannot beat ~1x on a single core (the GIL ceiling the perf
  suite records as ``workers_speedup_4``),
* one trace tree crossing the client thread, a worker thread, and (on
  multi-core hosts) the process-offload boundary,
* a profiled solve whose hot-spot rows land on the active span.

Run:  python examples/observability.py
"""

from repro.graphs.generators import random_graph_with_diameter_at_most
from repro.labeling.spec import L21
from repro.obs import REGISTRY, TRACER, span
from repro.profiling import format_hotspots, profile_call
from repro.reduction.solver import solve_labeling
from repro.service.protocol import SolveRequest
from repro.service.server import ConcurrentLabelingService


def serve_stream() -> ConcurrentLabelingService:
    """Serve a few duplicate-heavy requests under one client span."""
    server = ConcurrentLabelingService(workers=2)
    base = random_graph_with_diameter_at_most(14, 2, seed=7)
    try:
        with span("client", requests=6):
            futures = [
                server.submit(SolveRequest(
                    base.copy() if i % 3 else
                    random_graph_with_diameter_at_most(14, 2, seed=i),
                    L21,
                    engine="lk",
                ))
                for i in range(6)
            ]
            for fut in futures:
                fut.result(timeout=120)
        server.drain()
    finally:
        server.shutdown(wait=True)
    return server


def main() -> None:
    """Run the workload, then print every observability readout."""
    TRACER.drain()  # a clean trace buffer for the demo
    server = serve_stream()

    print("=== server counters (one atomic snapshot) ===")
    snap = server.stats.snapshot()
    for key in ("submitted", "hits", "coalesced", "solved", "completed"):
        print(f"    {key:10s} {snap[key]}")
    print(f"    hit_rate   {snap['hit_rate']:.3f}")

    print("\n=== request-latency histogram (registry quantiles) ===")
    summary = REGISTRY.histogram_summary("repro_request_seconds")
    print(f"    count={summary['count']}  sum={summary['sum']:.4f}s  "
          f"p50={summary['p50'] * 1e3:.2f}ms  p95={summary['p95'] * 1e3:.2f}ms  "
          f"p99={summary['p99'] * 1e3:.2f}ms")

    print("\n=== per-worker utilization (the GIL ceiling, measured) ===")
    for i, u in enumerate(server.worker_utilization()):
        print(f"    worker {i}: busy {u['busy_seconds'] * 1e3:7.1f}ms  "
              f"idle {u['idle_seconds'] * 1e3:7.1f}ms  "
              f"utilization {u['utilization']:.1%}")

    print("\n=== one trace tree across thread/process boundaries ===")
    spans = TRACER.drain()
    by_id = {s.span_id: s for s in spans}

    def depth(s) -> int:
        """Tree depth of a span via parent links."""
        d = 0
        while s.parent_id is not None and s.parent_id in by_id:
            s, d = by_id[s.parent_id], d + 1
        return d

    for s in sorted(spans, key=lambda s: s.start)[:10]:
        pid = f"  pid={s.tags['pid']}" if "pid" in s.tags else ""
        print(f"    {'  ' * depth(s)}{s.name:16s} "
              f"{s.duration * 1e3:7.2f}ms{pid}")

    print("\n=== profile_call attaches hot spots to the active span ===")
    g = random_graph_with_diameter_at_most(16, 2, seed=42)
    with span("profiled.solve") as prof_span:
        _, rows = profile_call(lambda: solve_labeling(g, L21, engine="lk"),
                               top=4)
    print(format_hotspots(rows))
    print(f"    ...and the span carries {len(prof_span.tags['hotspots'])} "
          f"hotspot rows for any trace consumer")

    print("\n=== a slice of the Prometheus exposition ===")
    for line in REGISTRY.render_prom().splitlines():
        if line.startswith("repro_server_") or line.startswith("repro_apsp"):
            print(f"    {line}")


if __name__ == "__main__":
    main()
