#!/usr/bin/env python
"""A living radio network: frequencies under growth and link churn.

Uses :class:`repro.session.LabelingSession` to model a deployment where
transmitters come online and interference links appear over time.  After
each change the session re-solves, re-verifies, and reports how many
transmitters had to be retuned — the operational cost the span alone hides.

Every re-solve takes the incremental fast path: the session's
:class:`repro.dynamic.DeltaEngine` repairs the previous distance matrix
across each mutation instead of recomputing it, so the churn below runs
**zero** full APSP kernels after the initial solve (printed at the end).

Run:  python examples/dynamic_network.py
"""

import numpy as np

from repro import L21
from repro.dynamic import full_apsp_refresh_count
from repro.errors import ReductionNotApplicableError
from repro.graphs.generators import random_graph_with_diameter_at_most
from repro.graphs.traversal import apsp_run_count
from repro.session import LabelingSession


def main() -> None:
    rng = np.random.default_rng(5)
    g = random_graph_with_diameter_at_most(10, 2, seed=3)
    session = LabelingSession(g, L21, engine="held_karp")
    print(f"initial network: n={g.n}, m={g.m}, span={session.span}")
    apsp_before = apsp_run_count()
    fallbacks_before = full_apsp_refresh_count()

    # --- grow: three new transmitters, each hearing several others -------
    for step in range(3):
        n_now = session.graph.n
        k = int(rng.integers(max(3, n_now // 2), n_now))
        neighbors = rng.choice(n_now, size=k, replace=False).tolist()
        try:
            v = session.add_vertex(connect_to=neighbors)
        except ReductionNotApplicableError as exc:
            print(f"  growth step {step}: rejected ({exc}); retrying denser")
            v = session.add_vertex(connect_to=list(range(n_now)))
        print(f"  +tx{v} ({len(neighbors)} links) -> span {session.span}")

    # --- churn: a few link additions, tracking retune cost ----------------
    print("\nlink churn:")
    added = 0
    guard = 0
    while added < 4 and guard < 60:
        guard += 1
        n_now = session.graph.n
        u, v = (int(x) for x in rng.choice(n_now, size=2, replace=False))
        if session.graph.has_edge(u, v):
            continue
        delta = session.add_edge(u, v)
        added += 1
        print(f"  +link ({u},{v}): span {delta.span_before} -> "
              f"{delta.span_after}, retuned {len(delta.relabeled)} transmitters")

    apsp_used = apsp_run_count() - apsp_before
    fallbacks = full_apsp_refresh_count() - fallbacks_before
    print(f"\nspan trajectory: {session.span_trajectory()}")
    print(f"final check: labeling feasible = "
          f"{session.labeling.is_feasible(session.graph, L21)}")
    mutations = len(session.history) - 1
    print(f"dynamic fast path: {mutations} mutations re-solved with "
          f"{apsp_used} full APSP runs ({fallbacks} delta-engine fallbacks)")


if __name__ == "__main__":
    main()
