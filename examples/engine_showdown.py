#!/usr/bin/env python
"""Engine showdown: the quality/time frontier the paper's practical side
promises ("use LKH/Concorde-class heuristics as engines").

Sweeps every registered TSP engine over a batch of diameter-2 workloads and
prints a table of mean span ratio (vs the best engine) and wall time —
the ladder NN -> 2-opt -> Or-opt -> LK should be visible, with the exact
engine pinned at ratio 1.0 and the guaranteed approximations in between.

Run:  python examples/engine_showdown.py [n] [trials]
"""

import sys

import numpy as np

from repro import L21
from repro.harness.runner import run_engines
from repro.harness.tables import render_table
from repro.harness.workloads import make_workload

ENGINE_CHOICES = [
    "held_karp",        # exact (Corollary 1a)
    "branch_bound",     # exact, independent algorithm
    "hoogeveen",        # 1.5-approx (Corollary 1b)
    "christofides_path",
    "double_tree",      # 2-approx baseline
    "lk",               # LK-style iterated local search (the 'LKH analogue')
    "three_opt",
    "or_opt",
    "two_opt",
    "greedy_edge",
    "farthest_insertion",
    "nearest_neighbor",
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    workloads = [make_workload("diam2", n, seed=t) for t in range(trials)]
    print(f"sweeping {len(ENGINE_CHOICES)} engines over {trials} "
          f"diameter-2 workloads, n={n}, spec={L21} ...")
    runs = run_engines(workloads, L21, ENGINE_CHOICES)

    rows = []
    for engine in ENGINE_CHOICES:
        rs = [r for r in runs if r.engine == engine]
        rows.append([
            engine,
            float(np.mean([r.ratio for r in rs])),
            float(np.max([r.ratio for r in rs])),
            f"{np.mean([r.seconds for r in rs]) * 1e3:.1f} ms",
            "exact" if rs[0].exact else "",
        ])
    rows.sort(key=lambda r: r[1])
    print()
    print(render_table(
        ["engine", "mean ratio", "max ratio", "mean time", ""], rows
    ))


if __name__ == "__main__":
    main()
