# Developer entry points.  `make test` is the tier-1 gate from ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick lint experiments perf perf-quick

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

# assertion-only pass over the APSP/oracle benchmark (fast enough for CI)
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_e12_apsp_oracle.py -q --benchmark-disable

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"
	$(PYTHON) -m pytest tests benchmarks --collect-only -qq

experiments:
	$(PYTHON) -m repro experiment

# full perf trajectory: emit BENCH_<k>.json, then gate it against the
# committed baseline (benchmarks/baseline.json).  PERF_DIR picks where the
# trajectory lands (default: repo root, continuing the committed numbering;
# CI points it at a scratch dir so the artifact holds only the new file).
PERF_DIR ?= .

perf:
	$(PYTHON) -m repro perf run --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)

# one matrix leg, small sizes — the CI perf-gate entry point
perf-quick:
	$(PYTHON) -m repro perf run --quick --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)
