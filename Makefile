# Developer entry points.  `make test` is the tier-1 gate from ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench lint experiments

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"

experiments:
	$(PYTHON) -m repro experiment
