# Developer entry points.  `make test` is the tier-1 gate from ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick lint experiments perf perf-quick \
	coverage examples-smoke docs docs-test metrics-smoke serve load-smoke \
	overload-smoke

test:
	$(PYTHON) -m pytest -x -q

# extra pytest flags for the benchmark run (e.g. BENCH_ARGS="--perf-record DIR")
BENCH_ARGS ?=

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only $(BENCH_ARGS)

# assertion-only pass over the oracle + dynamic-engine + serving
# benchmarks (fast enough for CI): bit-identical matrices, APSP-once,
# zero-APSP sessions, no duplicate solves under concurrency, shm-pool
# serial equivalence + zero-copy adoption + no-graph-pickling.  Wall-clock
# floors (the E13 >=3x churn win, the E14/E15 >=2x worker scaling) are
# deselected here — timing asserts belong to the calibrated perf gate,
# the timed `make bench` tier and the CI pool-scaling job, not the
# per-push correctness tier, where shared-runner noise would flake them.
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_e12_apsp_oracle.py \
		benchmarks/bench_e13_dynamic_updates.py \
		benchmarks/bench_e14_concurrent_service.py \
		benchmarks/bench_e15_shm_pool.py \
		benchmarks/bench_e16_network_service.py \
		benchmarks/bench_e17_oracle_scaling.py -q --benchmark-disable \
		-k "not speedup and not large2048"

# line-coverage gate: measured ~95% at the time of pinning; the floor sits
# a few points under so noise in line accounting never flakes the CI
# `coverage` job, while a real coverage drop still fails it.
# Requires pytest-cov (requirements-dev.txt).
COV_MIN ?= 92

coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
		--cov-fail-under=$(COV_MIN)

# every example must run to completion, each under a timeout (CI smoke job)
EXAMPLES_TIMEOUT ?= 120

examples-smoke:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; \
		timeout $(EXAMPLES_TIMEOUT) $(PYTHON) $$f > /dev/null; \
	done; echo "examples-smoke: all examples ran"

# docstring-coverage floor (ISSUE 5).  CI installs the real `interrogate`
# (requirements-dev.txt) and uses it; tools/docstring_coverage.py mirrors
# its default counting rules for machines without it, so the gate runs
# everywhere.
DOC_COV_MIN ?= 85

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"
	$(PYTHON) -m pytest tests benchmarks --collect-only -qq
	$(PYTHON) tools/metrics_lint.py --scan src/repro tools
	@if $(PYTHON) -c "import interrogate" 2>/dev/null; then \
		$(PYTHON) -m interrogate --fail-under $(DOC_COV_MIN) src/repro; \
	else \
		$(PYTHON) tools/docstring_coverage.py --fail-under $(DOC_COV_MIN) src/repro; \
	fi

# run the built-in quick workload, render the Prometheus exposition, and
# fail unless it parses and contains every catalogued metric family
metrics-smoke:
	$(PYTHON) -m repro metrics --format prom \
		| $(PYTHON) tools/metrics_lint.py --check-exposition -

# run the HTTP front end on the default port (Ctrl-C drains gracefully)
SERVE_ARGS ?=

serve:
	$(PYTHON) -m repro serve $(SERVE_ARGS)

# CI load-smoke contract: self-serve a server, hold a low fixed offered
# rate that the server must absorb with ZERO request errors, then scrape
# /metrics and fail unless the exposition parses under the Prometheus
# 0.0.4 grammar.  Low rate on purpose — this is a correctness smoke for
# the wire path on shared runners; the saturation behaviour is measured
# (not gated) by the network_service perf scenario.
LOAD_SMOKE_RATE ?= 20
LOAD_SMOKE_SECONDS ?= 2

load-smoke:
	$(PYTHON) -m repro load --rate $(LOAD_SMOKE_RATE) \
		--duration $(LOAD_SMOKE_SECONDS) --no-offload \
		--fail-on-errors --json --dump-metrics load-smoke.prom
	$(PYTHON) tools/metrics_lint.py --check-exposition load-smoke.prom
	@rm -f load-smoke.prom

# CI overload-smoke contract: ramp a deliberately starved server (one
# inline worker, tiny queue, capacity-1 cache so every request is cold)
# well past its exact-tier capacity with auto-tier payloads carrying a
# real deadline.  `--fail-on-errors` demands ZERO errors and ZERO
# infeasible responses — intentional shedding (429/504) is fine — and
# `--expect-approx` demands the router actually degraded: an overload
# the approx tier never answered means QoS routing is dead.  The scraped
# exposition must still parse and carry every catalogued family.
OVERLOAD_SMOKE_RATE ?= 120
OVERLOAD_SMOKE_SECONDS ?= 2

overload-smoke:
	$(PYTHON) -m repro load --rate $(OVERLOAD_SMOKE_RATE) \
		--duration $(OVERLOAD_SMOKE_SECONDS) --workers 1 --no-offload \
		--queue-size 4 --cache-capacity 1 --tier auto --deadline-ms 500 \
		--payload-count 8 --fail-on-errors --expect-approx --json \
		--dump-metrics overload-smoke.prom
	$(PYTHON) tools/metrics_lint.py --check-exposition overload-smoke.prom
	@rm -f overload-smoke.prom

# regenerate the generated documentation (docs/cli.md); tests/test_docs.py
# fails when the committed file drifts from the argparse tree
docs:
	$(PYTHON) tools/render_cli_docs.py

# executable-documentation gate: every fenced python snippet in README.md
# and docs/*.md runs, and docs/cli.md matches the live parser
docs-test:
	$(PYTHON) -m pytest tests/test_docs.py -q

experiments:
	$(PYTHON) -m repro experiment

# full perf trajectory: emit BENCH_<k>.json, then gate it against the
# committed baseline (benchmarks/baseline.json).  PERF_DIR picks where the
# trajectory lands (default: repo root, continuing the committed numbering;
# CI points it at a scratch dir so the artifact holds only the new file).
PERF_DIR ?= .

perf:
	$(PYTHON) -m repro perf run --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)

# one matrix leg, small sizes — the CI perf-gate entry point
perf-quick:
	$(PYTHON) -m repro perf run --quick --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)
