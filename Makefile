# Developer entry points.  `make test` is the tier-1 gate from ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick lint experiments perf perf-quick \
	coverage examples-smoke

test:
	$(PYTHON) -m pytest -x -q

# extra pytest flags for the benchmark run (e.g. BENCH_ARGS="--perf-record DIR")
BENCH_ARGS ?=

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only $(BENCH_ARGS)

# assertion-only pass over the oracle + dynamic-engine benchmarks (fast
# enough for CI): bit-identical matrices, APSP-once, zero-APSP sessions.
# Wall-clock floors (the E13 >=3x churn win) are deselected here — timing
# asserts belong to the calibrated perf gate and the timed `make bench`
# tier, not the per-push correctness tier, where shared-runner noise
# would flake them.
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_e12_apsp_oracle.py \
		benchmarks/bench_e13_dynamic_updates.py -q --benchmark-disable \
		-k "not speedup"

# line-coverage gate: measured ~95% at the time of pinning; the floor sits
# a few points under so noise in line accounting never flakes the CI
# `coverage` job, while a real coverage drop still fails it.
# Requires pytest-cov (requirements-dev.txt).
COV_MIN ?= 92

coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
		--cov-fail-under=$(COV_MIN)

# every example must run to completion, each under a timeout (CI smoke job)
EXAMPLES_TIMEOUT ?= 120

examples-smoke:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; \
		timeout $(EXAMPLES_TIMEOUT) $(PYTHON) $$f > /dev/null; \
	done; echo "examples-smoke: all examples ran"

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"
	$(PYTHON) -m pytest tests benchmarks --collect-only -qq

experiments:
	$(PYTHON) -m repro experiment

# full perf trajectory: emit BENCH_<k>.json, then gate it against the
# committed baseline (benchmarks/baseline.json).  PERF_DIR picks where the
# trajectory lands (default: repo root, continuing the committed numbering;
# CI points it at a scratch dir so the artifact holds only the new file).
PERF_DIR ?= .

perf:
	$(PYTHON) -m repro perf run --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)

# one matrix leg, small sizes — the CI perf-gate entry point
perf-quick:
	$(PYTHON) -m repro perf run --quick --dir $(PERF_DIR)
	$(PYTHON) -m repro perf compare --dir $(PERF_DIR)
