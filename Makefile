# Developer entry points.  `make test` is the tier-1 gate from ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick lint experiments

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

# assertion-only pass over the APSP/oracle benchmark (fast enough for CI)
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_e12_apsp_oracle.py -q --benchmark-disable

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"

experiments:
	$(PYTHON) -m repro experiment
