"""Dynamic-engine tests: delta repair vs reference APSP, session fast path.

The load-bearing property: **any** mutation stream (edge inserts, edge
deletes, vertex additions, undo) maintained by the dynamic layer yields a
distance matrix bit-identical to a from-scratch reference APSP at every
step — asserted here over seeded random streams, a hypothesis-driven
program of operations, and the named churn legs the perf suite measures.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import (
    DELETE_FALLBACK_FRACTION,
    DeltaEngine,
    affected_sources,
    apply_delta,
    distance_rows,
    full_apsp_refresh_count,
    refresh_analysis,
    relax_insert,
)
from repro.errors import ReductionNotApplicableError
from repro.graphs import generators as gen
from repro.graphs.analysis import attach_distances, get_analysis
from repro.graphs.graph import Graph, MUTATION_LOG_CAPACITY, Mutation
from repro.graphs.traversal import (
    all_pairs_distances_reference,
    apsp_run_count,
)
from repro.harness.workloads import DYNAMIC, apply_churn_op, churn_stream
from repro.labeling.spec import L21
from repro.service.api import LabelingService
from repro.session import LabelingSession


def _assert_engine_matches(engine: DeltaEngine, graph: Graph) -> None:
    dist = engine.refresh(graph)
    ref = all_pairs_distances_reference(graph)
    assert np.array_equal(dist, ref), "delta repair diverged from reference"


# ---------------------------------------------------------------------------
# 1. mutation log on Graph
# ---------------------------------------------------------------------------
class TestMutationLog:
    def test_records_every_structural_change(self):
        g = Graph(3)
        v0 = g.version
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.remove_edge(0, 1)
        w = g.add_vertex()
        ops = [m.op for m in g.mutations_since(v0)]
        assert ops == ["add_edge", "add_edge", "remove_edge", "add_vertex"]
        assert g.mutation_log[-1] == Mutation(g.version, "add_vertex", w, -1)

    def test_duplicate_add_is_not_logged(self):
        g = Graph(3, [(0, 1)])
        v = g.version
        g.add_edge(1, 0)  # coalesced duplicate: no version bump, no record
        assert g.version == v
        assert g.mutations_since(v) == ()

    def test_gap_beyond_window_returns_none(self):
        g = Graph(2)
        base_version = g.version
        for _ in range(MUTATION_LOG_CAPACITY + 5):
            g.add_vertex()
        assert g.mutations_since(base_version) is None
        recent = g.version - 3
        assert len(g.mutations_since(recent)) == 3

    def test_future_version_returns_none(self):
        g = Graph(2)
        assert g.mutations_since(g.version + 1) is None

    def test_copy_preserves_version_and_log(self):
        g = Graph(4, [(0, 1), (1, 2)])
        h = g.copy()
        assert h.version == g.version
        assert h.mutation_log == g.mutation_log
        h.add_edge(2, 3)
        assert g.mutations_since(g.version) == ()  # original untouched
        assert [m.op for m in h.mutations_since(g.version)] == ["add_edge"]


# ---------------------------------------------------------------------------
# 2. kernels
# ---------------------------------------------------------------------------
class TestKernels:
    def test_relax_insert_matches_reference(self):
        g = gen.random_connected_gnp(10, 0.3, seed=1)
        dist = all_pairs_distances_reference(g)
        absent = [(u, v) for u in range(10) for v in range(u + 1, 10)
                  if not g.has_edge(u, v)]
        for u, v in absent[:6]:
            g.add_edge(u, v)
            relax_insert(dist, u, v)
            assert np.array_equal(dist, all_pairs_distances_reference(g))

    def test_relax_insert_bridges_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])  # two paths
        dist = all_pairs_distances_reference(g)
        assert dist[0, 3] == -1
        g.add_edge(2, 3)
        relax_insert(dist, 2, 3)
        assert np.array_equal(dist, all_pairs_distances_reference(g))
        assert dist[0, 5] == 5

    def test_affected_sources_is_sound_superset(self):
        # rows outside the superset provably keep their distances
        g = gen.random_connected_gnp(12, 0.35, seed=5)
        for u, v in list(g.edges())[:8]:
            before = all_pairs_distances_reference(g)
            touched = set(affected_sources(before, u, v).tolist())
            g.remove_edge(u, v)
            after = all_pairs_distances_reference(g)
            unchanged = [i for i in range(g.n) if i not in touched]
            assert np.array_equal(before[unchanged], after[unchanged])
            g.add_edge(u, v)

    def test_distance_rows_matches_reference(self):
        g = gen.petersen_graph()
        adj = g.adjacency_matrix(dtype=np.bool_)
        ref = all_pairs_distances_reference(g)
        sources = np.array([0, 3, 7])
        assert np.array_equal(distance_rows(adj, sources), ref[sources])
        assert distance_rows(adj, np.array([], dtype=np.int64)).shape == (0, g.n)


# ---------------------------------------------------------------------------
# 3. the engine over mutation streams (the property)
# ---------------------------------------------------------------------------
class TestDeltaEngineStreams:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_stream_matches_reference_every_step(self, seed):
        rng = np.random.default_rng(seed)
        g = gen.random_connected_gnp(9 + seed, 0.35, seed=seed)
        engine = DeltaEngine(g)
        undo: list[tuple[str, int, int]] = []
        for _ in range(60):
            roll = rng.random()
            if roll < 0.30 and g.m > 1:
                edges = list(g.edges())
                u, v = edges[int(rng.integers(len(edges)))]
                g.remove_edge(u, v)
                undo.append(("add_edge", u, v))
            elif roll < 0.40 and undo:
                apply_churn_op(g, undo.pop())  # undo a prior change
            elif roll < 0.50:
                w = g.add_vertex()
                if rng.random() < 0.8 and g.n > 1:
                    g.add_edge(int(rng.integers(g.n - 1)), w)
            else:
                absent = [(u, v) for u in range(g.n)
                          for v in range(u + 1, g.n) if not g.has_edge(u, v)]
                if not absent:
                    continue
                u, v = absent[int(rng.integers(len(absent)))]
                g.add_edge(u, v)
                undo.append(("remove_edge", u, v))
            _assert_engine_matches(engine, g)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(4, 7),
        program=st.lists(
            st.tuples(st.sampled_from(["add", "remove", "grow"]),
                      st.integers(0, 10 ** 6)),
            min_size=1, max_size=12,
        ),
    )
    def test_hypothesis_program_matches_reference(self, n, program):
        g = gen.cycle_graph(n)
        engine = DeltaEngine(g)
        for kind, pick in program:
            if kind == "grow":
                w = g.add_vertex()
                if pick % 2 and g.n > 1:
                    g.add_edge(pick % (g.n - 1), w)
            elif kind == "add":
                absent = [(u, v) for u in range(g.n)
                          for v in range(u + 1, g.n) if not g.has_edge(u, v)]
                if not absent:
                    continue
                g.add_edge(*absent[pick % len(absent)])
            else:
                edges = list(g.edges())
                if not edges:
                    continue
                g.remove_edge(*edges[pick % len(edges)])
            _assert_engine_matches(engine, g)

    @pytest.mark.parametrize("leg", list(DYNAMIC))
    def test_named_churn_legs_are_deterministic_and_correct(self, leg):
        base_a, ops_a = churn_stream(leg)
        base_b, ops_b = churn_stream(leg)
        assert ops_a == ops_b and base_a == base_b  # bit-for-bit regenerable
        g = base_a.copy()
        engine = DeltaEngine(g)
        for op in ops_a[:15]:
            apply_churn_op(g, op)
        _assert_engine_matches(engine, g)  # multi-op gap in one refresh

    def test_disconnecting_delete_is_exact(self):
        g = gen.path_graph(6)
        engine = DeltaEngine(g)
        g.remove_edge(2, 3)  # splits the path
        dist = engine.refresh(g)
        assert np.array_equal(dist, all_pairs_distances_reference(g))
        assert dist[0, 5] == -1

    def test_over_threshold_delete_falls_back_and_stays_exact(self):
        g = gen.complete_graph(8)  # every row touches every edge
        engine = DeltaEngine(g, delete_fallback_fraction=0.1)
        before = full_apsp_refresh_count()
        g.remove_edge(0, 1)
        _assert_engine_matches(engine, g)
        assert full_apsp_refresh_count() == before + 1

    def test_trimmed_window_falls_back_and_stays_exact(self):
        g = gen.cycle_graph(6)
        engine = DeltaEngine(g)
        for _ in range(MUTATION_LOG_CAPACITY + 3):
            w = g.add_vertex()
            g.add_edge(0, w)
        before = full_apsp_refresh_count()
        _assert_engine_matches(engine, g)
        assert full_apsp_refresh_count() == before + 1

    def test_divergent_sibling_copies_resync_instead_of_corrupting(self):
        # two copies of the same ancestor, mutated differently, reach the
        # same version/n/m — only the mutation-log witness tells them apart
        g = gen.cycle_graph(6)
        engine = DeltaEngine(g)
        t1 = g.copy()
        t1.add_edge(0, 2)
        assert np.array_equal(
            engine.refresh(t1), all_pairs_distances_reference(t1)
        )
        t2 = g.copy()
        t2.add_edge(1, 4)
        dist = engine.refresh(t2)
        assert np.array_equal(dist, all_pairs_distances_reference(t2))
        assert dist[0, 2] == 2  # t1's chord must not leak into t2's matrix

    def test_divergent_sibling_transplant_resyncs(self):
        g = gen.cycle_graph(6)
        a = get_analysis(g)
        a.distances
        sibling = g.copy()
        sibling.add_edge(0, 3)
        twin = g.copy()
        twin.add_edge(1, 4)
        warm = refresh_analysis(sibling, prior=a)
        b = refresh_analysis(twin, prior=warm)  # wrong lineage at same version
        assert np.array_equal(b.distances, all_pairs_distances_reference(twin))

    def test_unrelated_graphs_with_matching_last_record_resync(self):
        # two independent graphs can coincide on their single newest
        # record; the suffix witness must still tell them apart
        g1 = Graph(5)
        g1.add_edge(0, 2)
        g1.add_edge(0, 1)
        g2 = Graph(5)
        g2.add_edge(3, 4)
        g2.add_edge(0, 1)  # same last record as g1, different lineage
        engine = DeltaEngine(g1)
        g2.add_edge(1, 2)
        dist = engine.refresh(g2)
        assert np.array_equal(dist, all_pairs_distances_reference(g2))
        assert dist[0, 2] == 2 and dist[3, 4] == 1

        a1 = get_analysis(g1)
        a1.distances
        b = refresh_analysis(g2, prior=a1)
        assert np.array_equal(b.distances, all_pairs_distances_reference(g2))

    def test_foreign_graph_resyncs_instead_of_corrupting(self):
        g = gen.cycle_graph(6)
        engine = DeltaEngine(g)
        other = gen.star_graph(7)  # unrelated lineage, different version
        before = full_apsp_refresh_count()
        dist = engine.refresh(other)
        assert np.array_equal(dist, all_pairs_distances_reference(other))
        assert full_apsp_refresh_count() == before + 1

    def test_attach_requires_sync_and_installs_oracle(self):
        g = gen.cycle_graph(5)
        engine = DeltaEngine(g)
        g.add_edge(0, 2)
        with pytest.raises(ValueError, match="not synced"):
            engine.attach(g)
        engine.refresh(g)
        analysis = engine.attach(g)
        assert get_analysis(g) is analysis
        # attach copies: later engine refreshes must not mutate the oracle
        snapshot = analysis.distances.copy()
        g.add_edge(1, 3)
        engine.refresh(g)
        assert np.array_equal(analysis.distances, snapshot)


# ---------------------------------------------------------------------------
# 4. GraphAnalysis.refresh / apply_delta
# ---------------------------------------------------------------------------
class TestAnalysisRefresh:
    def test_refresh_repairs_in_place_without_apsp(self):
        g = gen.random_connected_gnp(10, 0.4, seed=9)
        a = get_analysis(g)
        a.distances
        before = apsp_run_count()
        g.add_edge(*next(
            (u, v) for u in range(g.n) for v in range(u + 1, g.n)
            if not g.has_edge(u, v)
        ))
        b = a.refresh()
        assert b.is_current() and get_analysis(g) is b
        assert np.array_equal(b.distances, all_pairs_distances_reference(g))
        assert apsp_run_count() == before

    def test_refresh_is_identity_when_current(self):
        g = gen.cycle_graph(5)
        a = get_analysis(g)
        assert a.refresh() is a

    def test_refresh_handles_delete_gap(self):
        g = gen.complete_graph(6)
        a = get_analysis(g)
        a.distances
        g.remove_edge(0, 1)
        g.add_edge(0, 1)
        g.remove_edge(2, 3)
        b = a.refresh()
        assert np.array_equal(b.distances, all_pairs_distances_reference(g))

    def test_refresh_without_distances_is_a_cold_start(self):
        g = gen.cycle_graph(6)
        a = get_analysis(g)  # matrix never computed
        g.add_edge(0, 2)
        before = full_apsp_refresh_count()
        b = a.refresh()
        assert np.array_equal(b.distances, all_pairs_distances_reference(g))
        assert full_apsp_refresh_count() == before  # not counted as fallback

    def test_apply_delta_single_step(self):
        g = gen.path_graph(5)
        a = get_analysis(g)
        a.distances
        g.add_edge(0, 4)
        b = a.apply_delta(g.mutation_log[-1])
        assert np.array_equal(b.distances, all_pairs_distances_reference(g))

    def test_apply_delta_rejects_wrong_gap(self):
        g = gen.path_graph(5)
        a = get_analysis(g)
        a.distances
        g.add_edge(0, 4)
        g.add_edge(1, 3)
        with pytest.raises(ValueError, match="single change"):
            a.apply_delta(g.mutation_log[-1])

    def test_transplant_across_copy(self):
        g = gen.random_connected_gnp(9, 0.4, seed=2)
        a = get_analysis(g)
        a.distances
        trial = g.copy()
        trial.add_edge(*next(
            (u, v) for u in range(g.n) for v in range(u + 1, g.n)
            if not g.has_edge(u, v)
        ))
        before = apsp_run_count()
        b = refresh_analysis(trial, prior=a)
        assert b.graph is trial and b.is_current()
        assert np.array_equal(b.distances, all_pairs_distances_reference(trial))
        assert apsp_run_count() == before

    def test_transplant_same_version_copies_matrix(self):
        g = gen.cycle_graph(7)
        a = get_analysis(g)
        a.distances
        twin = g.copy()
        b = refresh_analysis(twin, prior=a)
        assert b.graph is twin
        assert np.array_equal(b.distances, a.distances)
        assert b.distances is not a.distances  # independent storage

    def test_bad_transplant_falls_back(self):
        g = gen.cycle_graph(6)
        a = get_analysis(g)
        a.distances
        stranger = gen.star_graph(9)  # wrong shape, no shared lineage
        before = full_apsp_refresh_count()
        b = refresh_analysis(stranger, prior=a)
        assert np.array_equal(
            b.distances, all_pairs_distances_reference(stranger)
        )
        assert full_apsp_refresh_count() == before + 1


# ---------------------------------------------------------------------------
# 5. session fast path
# ---------------------------------------------------------------------------
class TestSessionFastPath:
    def test_mutations_run_zero_apsp(self):
        g = gen.random_graph_with_diameter_at_most(9, 2, seed=11)
        s = LabelingSession(g, L21, engine="held_karp")
        absent = [(u, v) for u in range(g.n) for v in range(u + 1, g.n)
                  if not g.has_edge(u, v)]
        before = apsp_run_count()
        s.add_edge(*absent[0])
        s.add_vertex(connect_to=list(range(5)))
        s.remove_edge(*absent[0])
        assert apsp_run_count() == before

    def test_fast_path_spans_match_cold_solves(self):
        g = gen.random_graph_with_diameter_at_most(8, 2, seed=31)
        s = LabelingSession(g, L21, engine="held_karp")
        absent = [(u, v) for u in range(g.n) for v in range(u + 1, g.n)
                  if not g.has_edge(u, v)]
        for u, v in absent[:3]:
            s.add_edge(u, v)
            cold = LabelingSession(s.graph, L21, engine="held_karp")
            assert s.span == cold.span
            assert s.labeling.is_feasible(s.graph, L21)

    def test_rejected_mutation_resets_engine_but_not_state(self):
        s = LabelingSession(gen.cycle_graph(5), L21, engine="held_karp")
        with pytest.raises(ReductionNotApplicableError):
            s.add_vertex(connect_to=[0])  # pendant: diameter 3
        # the session still fast-paths correctly after the rollback
        before = apsp_run_count()
        delta = s.add_edge(0, 2)
        assert delta.span_after >= delta.span_before
        assert apsp_run_count() == before
        assert s.labeling.is_feasible(s.graph, L21)

    def test_service_session_reuses_canonical_key_without_apsp(self):
        svc = LabelingService()
        g = gen.random_graph_with_diameter_at_most(9, 2, seed=4)
        s = LabelingSession(g, L21, engine="lk", service=svc)
        absent = [(u, v) for u in range(g.n) for v in range(u + 1, g.n)
                  if not g.has_edge(u, v)]
        u, v = absent[0]
        before = apsp_run_count()
        s.add_edge(u, v)
        assert apsp_run_count() == before
        # undo returns to a cached topology: a warm hit, still zero APSP
        before = apsp_run_count()
        delta = s.remove_edge(u, v)
        assert s.current.cached
        assert apsp_run_count() == before
        assert delta.span_after == s.history[0].span


# ---------------------------------------------------------------------------
# 6. perf scenario + CLI
# ---------------------------------------------------------------------------
class TestDynamicPerfAndCli:
    def test_scenario_emits_gated_metric(self):
        from repro.perf.suite import dynamic_churn_scenario

        rec = dynamic_churn_scenario(quick=True, repeats=1)
        assert rec.experiment == "dynamic_churn:churn-diam2-small"
        assert rec.metrics["full_apsp_refresh_count"] == 0
        assert rec.metrics["steps"] > 0

    def test_full_apsp_refresh_count_gate_trips(self):
        from repro.perf import PerfRecord, Trajectory, compare

        def traj(count):
            return Trajectory(
                environment={"calibration_seconds": 0.01},
                records=[PerfRecord(
                    "dynamic_churn:churn-diam2-small", (0.01,),
                    {"full_apsp_refresh_count": count},
                )],
                kind="quick",
            )

        assert compare(traj(0), traj(0)).passed
        report = compare(traj(2), traj(0))
        assert not report.passed
        assert report.verdicts[0].status == "metric-regression"
        assert "full_apsp_refresh_count" in report.verdicts[0].detail

    def test_cli_dynamic_verifies_and_reports(self, capsys):
        from repro.cli import main

        assert main(["dynamic", "--steps", "8", "--verify", "--json"]) == 0
        import json

        record = json.loads(capsys.readouterr().out)
        assert record["verified"] is True
        assert record["steps"] == 8
        assert record["full_apsp_refreshes"] == 0

    def test_cli_unknown_leg_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["dynamic", "--leg", "warp-speed"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_perf_compare_missing_bench_fails_cleanly(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["perf", "compare", "--bench",
                     str(tmp_path / "BENCH_9.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err


# ---------------------------------------------------------------------------
# 7. attach_distances interaction
# ---------------------------------------------------------------------------
def test_attach_distances_keeps_connectivity_semantics():
    g = gen.path_graph(5)
    engine = DeltaEngine(g)
    g.remove_edge(0, 1)
    engine.refresh(g)
    analysis = engine.attach(g)
    assert analysis.is_connected is False
    g.add_edge(0, 1)
    engine.refresh(g)
    analysis = engine.attach(g)
    assert analysis.is_connected is True
    assert analysis.diameter == 4


def test_attach_distances_shape_guard():
    g = gen.path_graph(4)
    with pytest.raises(ValueError, match="shape"):
        attach_distances(g, np.zeros((3, 3), dtype=np.int64))
