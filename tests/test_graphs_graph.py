"""Unit tests for the core Graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert list(g.edges()) == []

    def test_basic_edges(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.n == 3 and g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_coalesce(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_from_edges_infers_size(self):
        g = Graph.from_edges([(0, 3), (1, 2)])
        assert g.n == 4 and g.m == 2

    def test_from_edges_empty(self):
        assert Graph.from_edges([]).n == 0

    def test_from_adjacency_matrix_roundtrip(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 3)])
        g2 = Graph.from_adjacency_matrix(g.adjacency_matrix())
        assert g == g2

    def test_from_adjacency_matrix_rejects_asymmetric(self):
        a = np.zeros((2, 2), dtype=bool)
        a[0, 1] = True
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(a)

    def test_from_adjacency_matrix_rejects_diagonal(self):
        a = np.eye(2, dtype=bool)
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(a)

    def test_from_adjacency_matrix_rejects_nonsquare(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(np.zeros((2, 3), dtype=bool))


class TestMutation:
    def test_add_remove_edge(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.m == 1
        g.remove_edge(0, 2)
        assert g.m == 0 and not g.has_edge(0, 2)

    def test_remove_missing_edge_raises(self):
        with pytest.raises(GraphError):
            Graph(3).remove_edge(0, 1)

    def test_add_vertex(self):
        g = Graph(2, [(0, 1)])
        v = g.add_vertex()
        assert v == 2 and g.n == 3 and g.degree(v) == 0

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1 and h.m == 2


class TestQueries:
    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degrees() == [3, 1, 1, 1]
        assert g.max_degree() == 3

    def test_neighbors_immutable_snapshot(self):
        g = Graph(3, [(0, 1)])
        nbrs = g.neighbors(0)
        assert nbrs == frozenset({1})
        with pytest.raises(AttributeError):
            nbrs.add(2)  # type: ignore[attr-defined]

    def test_edges_sorted_unique(self):
        g = Graph(4, [(2, 3), (0, 1), (1, 3)])
        assert list(g.edges()) == [(0, 1), (1, 3), (2, 3)]

    def test_adjacency_matrix_symmetric(self):
        g = Graph(4, [(0, 1), (2, 3)])
        a = g.adjacency_matrix()
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * g.m

    def test_density(self):
        assert Graph(2, [(0, 1)]).density() == 1.0
        assert Graph(1).density() == 0.0
        assert Graph(4).density() == 0.0

    def test_is_complete(self):
        assert Graph(3, [(0, 1), (0, 2), (1, 2)]).is_complete()
        assert not Graph(3, [(0, 1)]).is_complete()

    def test_contains_and_len(self):
        g = Graph(3)
        assert 2 in g and 3 not in g and len(g) == 3

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"
