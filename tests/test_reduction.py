"""The paper's reduction: validation, construction, Claim 1, solver facade.

``test_headline_theorem2_exhaustive`` is the single most important test in
the repository: it verifies λ_TSP == λ_bruteforce on *every* connected
4-vertex graph and hundreds of sampled 5-7 vertex instances.
"""

import itertools

import numpy as np
import pytest

from repro.errors import ReductionNotApplicableError, SolverError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.labeling.exact import exact_span
from repro.labeling.spec import L11, L21, LpSpec
from repro.reduction.from_tour import labeling_from_order, span_for_order
from repro.reduction.solver import LpTspSolver, solve_labeling
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.reduction.validation import analyze, check_applicable, is_applicable


class TestValidation:
    def test_applicable_cases(self):
        assert is_applicable(gen.petersen_graph(), L21)
        assert is_applicable(gen.complete_graph(5), L21)
        assert is_applicable(gen.path_graph(4), LpSpec((2, 1, 1)))

    def test_diameter_too_large(self):
        assert not is_applicable(gen.path_graph(5), L21)  # diam 4 > 2
        with pytest.raises(ReductionNotApplicableError, match="diam"):
            check_applicable(gen.path_graph(5), L21)

    def test_weight_condition(self):
        g = gen.complete_graph(4)
        assert not is_applicable(g, LpSpec((3, 1)))
        with pytest.raises(ReductionNotApplicableError, match="p_max"):
            check_applicable(gen.petersen_graph(), LpSpec((3, 1)))

    def test_pmin_zero_rejected(self):
        with pytest.raises(ReductionNotApplicableError, match="p_min"):
            check_applicable(gen.complete_graph(3), LpSpec((1, 0)))

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not is_applicable(g, L21)
        with pytest.raises(ReductionNotApplicableError, match="disconnected"):
            check_applicable(g, L21)

    def test_report_fields(self):
        rep = analyze(gen.cycle_graph(5), L21)
        assert rep.connected and rep.diameter == 2 and rep.applicable
        assert rep.reason() == "applicable"


class TestReduction:
    def test_weight_values_match_distances(self):
        g = gen.cycle_graph(5)
        red = reduce_to_path_tsp(g, L21)
        w = red.instance.weights
        for u in range(5):
            for v in range(5):
                if u == v:
                    assert w[u, v] == 0
                elif g.has_edge(u, v):
                    assert w[u, v] == 2  # p1
                else:
                    assert w[u, v] == 1  # p2

    def test_always_metric(self, diam2_graphs):
        for g in diam2_graphs:
            red = reduce_to_path_tsp(g, L21)
            assert red.instance.is_metric()

    def test_weight_band(self, diam2_graphs):
        spec = LpSpec((4, 3))
        for g in diam2_graphs:
            red = reduce_to_path_tsp(g, spec)
            off = red.instance.weights[~np.eye(g.n, dtype=bool)]
            assert off.min() >= 3 and off.max() <= 6

    def test_distance_matrix_reused(self):
        g = gen.petersen_graph()
        red = reduce_to_path_tsp(g, L21)
        from repro.graphs.traversal import all_pairs_distances
        assert np.array_equal(red.distances, all_pairs_distances(g))


class TestClaim1:
    def test_prefix_sum_labeling(self):
        g = gen.cycle_graph(5)
        red = reduce_to_path_tsp(g, L21)
        order = [0, 2, 4, 1, 3]
        lab = labeling_from_order(red, order)
        # labels are cumulative path weights along the order
        w = red.instance.weights
        expected = 0
        prev = order[0]
        assert lab[order[0]] == 0
        for v in order[1:]:
            expected += w[prev, v]
            assert lab[v] == expected
            prev = v

    def test_span_equals_path_weight(self, diam2_graphs):
        rng = np.random.default_rng(0)
        for g in diam2_graphs:
            red = reduce_to_path_tsp(g, L21)
            for _ in range(5):
                order = rng.permutation(g.n).tolist()
                lab = labeling_from_order(red, order)
                assert lab.span == span_for_order(red, order)
                assert lab.is_feasible(g, L21)

    def test_claim1_minimality_per_permutation(self):
        """The prefix-sum labeling is optimal among labelings ordered by π.

        Verified by brute force: no labeling monotone along π with smaller
        span exists (search over small label vectors).
        """
        g = gen.cycle_graph(4)
        red = reduce_to_path_tsp(g, L21)
        order = [0, 1, 2, 3]
        lab = labeling_from_order(red, order)
        target = lab.span
        # exhaustive monotone labelings with span < target
        found_better = False
        for labels in itertools.product(range(target), repeat=4):
            mono = all(
                labels[order[i]] <= labels[order[i + 1]] for i in range(3)
            )
            if mono:
                from repro.labeling.labeling import Labeling
                if Labeling(labels).is_feasible(g, L21):
                    found_better = True
        assert not found_better

    def test_rejects_non_permutation(self):
        red = reduce_to_path_tsp(gen.cycle_graph(4), L21)
        with pytest.raises(SolverError):
            labeling_from_order(red, [0, 1, 2, 2])


class TestSolverFacade:
    def test_headline_theorem2_exhaustive_n4(self):
        """λ via TSP == λ via brute force on every applicable 4-vertex graph."""
        pairs = list(itertools.combinations(range(4), 2))
        checked = 0
        for mask in range(1 << len(pairs)):
            g = Graph(4, (pairs[i] for i in range(len(pairs)) if mask >> i & 1))
            for spec in (L21, L11, LpSpec((2, 2))):
                if not is_applicable(g, spec):
                    continue
                assert solve_labeling(g, spec, engine="held_karp").span == \
                    exact_span(g, spec)
                checked += 1
        # 26 connected diam<=2 graphs on 4 labelled vertices x 3 specs = 78
        assert checked == 78

    def test_headline_sampled_n6_multispec(self):
        rng = np.random.default_rng(3)
        specs = [L21, LpSpec((2, 1, 1)), LpSpec((2, 2, 1)), LpSpec((4, 3, 2))]
        checked = 0
        for _ in range(25):
            g = gen.random_connected_gnp(6, 0.45, seed=rng)
            for spec in specs:
                if not is_applicable(g, spec):
                    continue
                assert solve_labeling(g, spec, engine="held_karp").span == \
                    exact_span(g, spec)
                checked += 1
        assert checked >= 25

    def test_every_engine_feasible_output(self, diam2_graphs):
        from repro.tsp.portfolio import ENGINES
        g = diam2_graphs[0]
        for engine in ENGINES:
            r = solve_labeling(g, L21, engine=engine)
            assert r.labeling.is_feasible(g, L21)
            assert r.span == r.labeling.span

    def test_result_metadata(self):
        g = gen.petersen_graph()
        r = solve_labeling(g, L21, engine="held_karp")
        assert r.exact and r.engine == "held_karp"
        assert r.reduce_seconds >= 0 and r.solve_seconds >= 0
        assert r.order == r.path.order

    def test_auto_engine_selection(self):
        small = solve_labeling(gen.complete_graph(6), L21, engine="auto")
        assert small.engine == "held_karp" and small.exact
        big = solve_labeling(
            gen.random_graph_with_diameter_at_most(25, 2, seed=1), L21, engine="auto"
        )
        assert big.engine == "lk" and not big.exact

    def test_solver_class(self):
        solver = LpTspSolver(L21, engine="held_karp")
        assert solver.span(gen.cycle_graph(5)) == 4
        assert solver.solve(gen.complete_graph(4)).span == 6

    def test_known_spans_via_pipeline(self):
        # closed-form families, solved through the TSP pipeline
        assert solve_labeling(gen.complete_graph(5), L21).span == 8
        assert solve_labeling(gen.cycle_graph(5), L21).span == 4
        assert solve_labeling(gen.star_graph(5), L21).span == 6
        assert solve_labeling(gen.complete_bipartite_graph(3, 4), L21).span == 7
        assert solve_labeling(gen.petersen_graph(), L21).span == 9
