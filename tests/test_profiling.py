"""Tests for the profiling helpers."""

from repro.profiling import HotSpot, format_hotspots, profile_call


def test_profile_call_returns_result_and_rows():
    result, rows = profile_call(lambda: sum(range(10000)), top=5)
    assert result == sum(range(10000))
    assert 0 < len(rows) <= 5
    assert all(isinstance(r, HotSpot) for r in rows)
    # rows sorted by cumulative time, descending
    cums = [r.cumulative_seconds for r in rows]
    assert cums == sorted(cums, reverse=True)


def test_profile_solver_call():
    from repro import L21, solve_labeling
    from repro.graphs.generators import petersen_graph

    g = petersen_graph()
    result, rows = profile_call(lambda: solve_labeling(g, L21), top=8)
    assert result.span == 9
    text = format_hotspots(rows)
    assert "cum(s)" in text and len(text.splitlines()) == 9


def test_format_empty():
    assert format_hotspots([]).startswith("  cum(s)")
