"""Failure injection: the verification layer must catch broken engines.

The solver facade re-verifies every labeling against the original graph; we
inject deliberately-broken engines and malformed data to prove those nets
actually catch.
"""

import numpy as np
import pytest

from repro.errors import ReproError, SolverError
from repro.graphs import generators as gen
from repro.labeling.labeling import Labeling
from repro.labeling.spec import L21
from repro.reduction.from_tour import labeling_from_order
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.tsp import portfolio
from repro.tsp.tour import HamPath


class TestBrokenEngineCaught:
    def test_non_permutation_path_rejected(self):
        """An engine that returns a repeated vertex must be caught."""
        g = gen.petersen_graph()
        red = reduce_to_path_tsp(g, L21)
        with pytest.raises(SolverError):
            labeling_from_order(red, [0] * g.n)

    def test_engine_with_wrong_length_metadata(self, monkeypatch):
        """An engine lying about its path length trips the span assert."""
        from repro.reduction import solver as solver_mod

        def lying_engine(inst):
            order = tuple(range(inst.n))
            return HamPath(order, 0.0)  # wrong length on purpose

        monkeypatch.setitem(portfolio.ENGINES, "liar", lying_engine)
        g = gen.petersen_graph()
        with pytest.raises(AssertionError):
            solver_mod.solve_labeling(g, L21, engine="liar")

    def test_engine_returning_partial_path(self, monkeypatch):
        def partial_engine(inst):
            return HamPath(tuple(range(inst.n - 1)), 1.0)

        monkeypatch.setitem(portfolio.ENGINES, "partial", partial_engine)
        g = gen.petersen_graph()
        from repro.reduction.solver import solve_labeling
        with pytest.raises(SolverError):
            solve_labeling(g, L21, engine="partial")


class TestLabelingNets:
    def test_require_feasible_lists_violations(self):
        g = gen.path_graph(4)
        bad = Labeling((0, 0, 0, 0))
        with pytest.raises(ReproError) as exc:
            bad.require_feasible(g, L21)
        assert "violations" in str(exc.value)

    def test_labels_must_cover_graph(self):
        g = gen.path_graph(4)
        with pytest.raises(ReproError):
            Labeling((0, 2)).require_feasible(g, L21)


class TestInstanceNets:
    def test_nan_weights_rejected(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = np.nan
        from repro.tsp.instance import TSPInstance
        with pytest.raises(ReproError):
            # NaN breaks symmetry comparison -> rejected at construction
            TSPInstance(w)

    def test_reduction_rejects_quietly_modified_spec(self):
        """Frozen dataclass: mutating a spec after creation must fail."""
        from repro.labeling.spec import LpSpec
        spec = LpSpec((2, 1))
        with pytest.raises(AttributeError):
            spec.p = (5, 1)  # type: ignore[misc]

    def test_graph_mutation_after_reduction_detected(self):
        """Mutating G after reducing makes the old labeling re-check fail."""
        g = gen.cycle_graph(5)
        red = reduce_to_path_tsp(g, L21)
        from repro.tsp.held_karp import held_karp_path
        path = held_karp_path(red.instance)
        lab = labeling_from_order(red, path.order)
        assert lab.is_feasible(g, L21)
        # densify: C5 + all chords turns distance-2 pairs into edges
        for u in range(5):
            for v in range(u + 1, 5):
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
        assert not lab.is_feasible(g, L21)
