"""End-to-end tests for the asyncio HTTP front end (`repro.net`).

Everything here talks to a real listening socket through
:class:`BackgroundServer` — urllib for the simple round-trips,
``http.client`` where the test needs connection-level control (keep-alive,
streamed NDJSON reads) — so the request framing, the routing, the error
mapping and the shutdown behaviour are all exercised over the wire, not
through internal calls.  Slow solves are event-gated (the
``test_service_server`` idiom), never slept.
"""

import http.client
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.labeling.spec import L21
from repro.net import BackgroundServer
from repro.service.protocol import SolveRequest, SolveResponse

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from metrics_lint import check_exposition  # noqa: E402

ENGINE = "nearest_neighbor"  # cheapest engine: these tests exercise plumbing


def make_server(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("offload", False)
    return BackgroundServer(**kwargs)


def graph(seed, n=12):
    return gen.random_graph_with_diameter_at_most(n, 2, seed=seed)


def solve_body(g, tag=None, engine=ENGINE):
    return json.dumps(
        SolveRequest(g, L21, engine=engine, tag=tag).to_json()
    ).encode()


def post(url, path, body):
    request = urllib.request.Request(url + path, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, response.headers, response.read()


def gated_solver(server, started=None, release=None, gate_tag=None):
    """Gate the service's inline solve: ``gate_tag`` (or all) requests block."""
    solver = server.service.service.solver
    orig = solver._solve_inline

    def gated(plain, form, request):
        if gate_tag is None or request.tag == gate_tag:
            if started is not None:
                started.set()
            if release is not None:
                assert release.wait(timeout=30), "test forgot to release"
        return orig(plain, form, request)

    solver._solve_inline = gated


# ---------------------------------------------------------------------------
# round-trips
# ---------------------------------------------------------------------------
def test_solve_stats_metrics_healthz_roundtrip():
    with make_server() as server:
        url = server.url

        status, payload = get(url, "/healthz")[0], json.loads(
            get(url, "/healthz")[2]
        )
        assert status == 200 and payload == {"status": "ok"}

        g = graph(0)
        status, record = post(url, "/solve", solve_body(g, tag="one"))
        assert status == 200
        response = SolveResponse.from_json(record)
        assert response.tag == "one" and not response.cached
        # the wire answer is a real feasible labeling for the instance
        response.labeling.require_feasible(g, L21)

        status, record = post(url, "/solve", solve_body(g, tag="two"))
        assert status == 200 and record["cached"]
        assert record["span"] == response.span

        status, _headers, body = get(url, "/stats")
        stats = json.loads(body)
        assert status == 200
        assert stats["submitted"] >= 2 and stats["hits"] >= 1

        status, headers, body = get(url, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert check_exposition(text) == []
        assert 'repro_http_requests_total{endpoint="/solve",status="200"}' in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_http_open_connections" in text


def test_keep_alive_serves_many_requests_per_connection():
    with make_server() as server:
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for seed in (1, 1, 2):
                conn.request("POST", "/solve", body=solve_body(graph(seed)))
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())  # must drain before reusing
        finally:
            conn.close()


def test_unknown_path_method_and_bad_payload():
    with make_server() as server:
        url = server.url
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url, "/nope")
        assert err.value.code == 404

        with pytest.raises(urllib.error.HTTPError) as err:
            get(url, "/solve")               # GET on a POST route
        assert err.value.code == 405

        with pytest.raises(urllib.error.HTTPError) as err:
            post(url, "/solve", b"{not json")
        assert err.value.code == 400
        assert json.loads(err.value.read())["code"] == "invalid_request"

        with pytest.raises(urllib.error.HTTPError) as err:
            post(url, "/batch", solve_body(graph(0)) + b"\n{bad\n")
        assert err.value.code == 400         # whole batch validated up front


def test_inapplicable_instance_maps_to_422():
    with make_server() as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server.url, "/solve", solve_body(gen.cycle_graph(6)))
        assert err.value.code == 422
        assert json.loads(err.value.read())["code"] == "not_applicable"


# ---------------------------------------------------------------------------
# the NDJSON batch stream
# ---------------------------------------------------------------------------
def test_batch_streams_in_completion_order():
    with make_server() as server:
        release = threading.Event()
        gated_solver(server, release=release, gate_tag="slow")

        body = (
            solve_body(graph(3), tag="slow")
            + b"\n"
            + solve_body(graph(4), tag="fast")
            + b"\n"
        )
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request("POST", "/batch", body=body)
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            first = json.loads(response.readline())
            assert first["tag"] == "fast", (
                "completion order: the ungated request streams out first"
            )
            release.set()
            second = json.loads(response.readline())
            assert second["tag"] == "slow" and second["span"] > 0
            assert response.readline() == b""   # close-delimited stream ends
        finally:
            release.set()
            conn.close()


def test_batch_per_request_errors_keep_the_stream_going():
    with make_server() as server:
        body = (
            solve_body(graph(5), tag="good")
            + b"\n"
            + solve_body(gen.cycle_graph(6), tag="bad")   # diam 3: 422 inside
            + b"\n"
        )
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request("POST", "/batch", body=body)
            response = conn.getresponse()
            records = [json.loads(line) for line in response.read().splitlines()]
        finally:
            conn.close()
        by_tag = {r["tag"]: r for r in records}
        assert by_tag["good"]["span"] > 0
        assert by_tag["bad"]["code"] == "not_applicable"


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------
def test_full_queue_maps_overload_to_429():
    with make_server(workers=1, queue_size=1) as server:
        url = server.url
        started, release = threading.Event(), threading.Event()
        gated_solver(server, started=started, release=release)

        results = {}

        def client(name, seed):
            try:
                results[name] = post(url, "/solve", solve_body(graph(seed)))[0]
            except urllib.error.HTTPError as err:
                results[name] = err.code

        try:
            # A occupies the single worker...
            t_a = threading.Thread(target=client, args=("a", 10))
            t_a.start()
            assert started.wait(timeout=30)
            # ...B fills the queue (poll: A's dequeue is asynchronous)...
            t_b = threading.Thread(target=client, args=("b", 11))
            t_b.start()
            deadline = time.monotonic() + 30
            while server.service.queue_depth() < 1:
                assert time.monotonic() < deadline, "B never reached the queue"
                time.sleep(0.01)
            # ...so C must be rejected immediately with 429.
            with pytest.raises(urllib.error.HTTPError) as err:
                post(url, "/solve", solve_body(graph(12)))
            assert err.value.code == 429
            assert json.loads(err.value.read())["code"] == "overloaded"
        finally:
            release.set()
        t_a.join(timeout=30)
        t_b.join(timeout=30)
        assert results == {"a": 200, "b": 200}, "accepted requests still finish"


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------
def test_graceful_drain_finishes_inflight_and_503s_late_submissions():
    server = make_server()
    url = server.url
    started, release = threading.Event(), threading.Event()
    gated_solver(server, started=started, release=release, gate_tag="slow")

    # a keep-alive connection opened while the server is healthy
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    conn.request("GET", "/healthz")
    assert json.loads(conn.getresponse().read()) == {"status": "ok"}

    slow_result = {}

    def slow_client():
        slow_result["status"], slow_result["record"] = post(
            url, "/solve", solve_body(graph(20), tag="slow")
        )

    t_slow = threading.Thread(target=slow_client)
    t_slow.start()
    assert started.wait(timeout=30)

    shutter = threading.Thread(target=server.shutdown)   # drain=True
    shutter.start()

    # the listener closes promptly; poll until new connections are refused
    deadline = time.monotonic() + 30
    while True:
        try:
            probe = http.client.HTTPConnection(
                server.host, server.port, timeout=1
            )
            probe.request("GET", "/healthz")
            probe.getresponse().read()
            probe.close()
        except OSError:
            break
        assert time.monotonic() < deadline, "listener never closed"
        time.sleep(0.02)

    # late submission on the still-open connection: 503 service_closed
    conn.request("POST", "/solve", body=solve_body(graph(21)))
    response = conn.getresponse()
    payload = json.loads(response.read())
    assert response.status == 503 and payload["code"] == "service_closed"
    conn.close()

    # the in-flight request still completes successfully
    release.set()
    t_slow.join(timeout=60)
    shutter.join(timeout=60)
    assert slow_result["status"] == 200
    assert slow_result["record"]["tag"] == "slow"
    assert not shutter.is_alive(), "drain must complete"


def test_background_server_shutdown_is_idempotent():
    server = make_server()
    get(server.url, "/healthz")
    server.shutdown()
    server.shutdown()   # second call is a no-op, not an error


# ---------------------------------------------------------------------------
# the open-loop load generator
# ---------------------------------------------------------------------------
def test_load_ramp_low_rate_zero_errors():
    from repro.harness.loadgen import run_load

    with make_server() as server:
        report = run_load(server.url, rates=[8.0], duration=0.8, seed=1)
    assert len(report.steps) == 1
    step = report.steps[0]
    assert step.errors == 0 and step.error_rate == 0.0
    assert step.completed == step.sent > 0
    assert 0.0 < step.p50_ms <= step.p95_ms <= step.p99_ms
    assert report.to_json()["total_errors"] == 0


def test_load_report_counts_server_errors():
    """Against a dead port every request is an error, not an exception."""
    from repro.harness.loadgen import run_load

    with make_server() as server:
        url = server.url
    report = run_load(url, rates=[20.0], duration=0.3, seed=2, timeout=2.0)
    assert report.total_errors == report.total_sent > 0


def test_load_rejects_bad_parameters():
    from repro.harness.loadgen import run_load

    with pytest.raises(ReproError):
        run_load("http://127.0.0.1:1", rates=[])
    with pytest.raises(ReproError):
        run_load("http://127.0.0.1:1", rates=[-5.0])
    with pytest.raises(ReproError):
        run_load("not-a-url", rates=[5.0])


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------
def test_cli_load_self_serve_smoke(capsys, tmp_path):
    """The `make load-smoke` contract end to end, in-process."""
    from repro.cli import main

    prom = tmp_path / "load.prom"
    code = main([
        "load", "--rate", "15", "--duration", "0.5", "--no-offload",
        "--json", "--fail-on-errors", "--dump-metrics", str(prom),
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["total_errors"] == 0 and report["total_sent"] > 0
    exposition = prom.read_text()
    assert check_exposition(exposition) == []
    assert "repro_http_requests_total" in exposition


def test_cli_load_against_running_server(capsys):
    from repro.cli import main

    with make_server() as server:
        code = main([
            "load", "--url", server.url, "--rate", "10",
            "--duration", "0.4",
        ])
    assert code == 0
    out = capsys.readouterr().out
    assert "p50ms" in out       # the fixed-width table header
    assert "10.0" in out


def test_cli_serve_drains_on_sigterm(tmp_path):
    """`repro-label serve` binds, answers, and exits 0 on SIGTERM."""
    import re
    import signal
    import subprocess

    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--no-offload"],
        cwd=str(Path(__file__).resolve().parent.parent),
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = proc.stderr.readline()
        match = re.search(r"serving on (http://\S+)", line)
        assert match, f"no serving banner, got {line!r}"
        url = match.group(1)
        with urllib.request.urlopen(url + "/healthz", timeout=30) as resp:
            assert json.loads(resp.read()) == {"status": "ok"}
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0
        assert "draining" in proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
