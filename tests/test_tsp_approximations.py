"""Guaranteed approximations: Christofides, Hoogeveen, double-tree.

The ratios asserted here are the literal content of Corollary 1b.
"""

import numpy as np
import pytest

from repro.errors import NotMetricError
from repro.tsp.christofides import christofides_cycle
from repro.tsp.double_tree import double_tree_cycle, double_tree_path
from repro.tsp.held_karp import held_karp_cycle, held_karp_path
from repro.tsp.hoogeveen import hoogeveen_path
from repro.tsp.instance import TSPInstance


def euclidean(n, seed):
    return TSPInstance.random_metric(n, seed=seed)


def two_valued(n, seed):
    """The reduction's weight structure (metric by construction)."""
    return TSPInstance.random_two_valued(n, 1.0, 2.0, seed=seed)


INSTANCES = [euclidean, two_valued]


class TestChristofides:
    @pytest.mark.parametrize("make", INSTANCES)
    def test_ratio_bound(self, make):
        for seed in range(6):
            inst = make(10, seed)
            opt = held_karp_cycle(inst).length
            tour = christofides_cycle(inst)
            assert sorted(tour.order) == list(range(10))
            assert tour.length <= 1.5 * opt + 1e-9

    def test_non_metric_rejected(self):
        w = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
        with pytest.raises(NotMetricError):
            christofides_cycle(TSPInstance(w))

    def test_trivial_sizes(self):
        assert christofides_cycle(TSPInstance(np.zeros((1, 1)))).order == (0,)
        w = np.array([[0, 2], [2, 0]], dtype=float)
        assert christofides_cycle(TSPInstance(w)).length == 4.0


class TestHoogeveen:
    @pytest.mark.parametrize("make", INSTANCES)
    def test_ratio_bound(self, make):
        """The 1.5 bound of Corollary 1b, on both instance shapes."""
        worst = 0.0
        for seed in range(10):
            inst = make(10, seed)
            opt = held_karp_path(inst).length
            path = hoogeveen_path(inst)
            assert sorted(path.order) == list(range(10))
            ratio = path.length / opt
            worst = max(worst, ratio)
            assert ratio <= 1.5 + 1e-9
        # sanity: it should usually do much better than the bound
        assert worst <= 1.45

    def test_non_metric_rejected(self):
        w = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
        with pytest.raises(NotMetricError):
            hoogeveen_path(TSPInstance(w))

    def test_trivial_sizes(self):
        assert hoogeveen_path(TSPInstance(np.zeros((1, 1)))).order == (0,)
        w = np.array([[0, 2], [2, 0]], dtype=float)
        assert hoogeveen_path(TSPInstance(w)).length == 2.0


class TestDoubleTree:
    @pytest.mark.parametrize("make", INSTANCES)
    def test_cycle_ratio(self, make):
        for seed in range(5):
            inst = make(9, seed)
            opt = held_karp_cycle(inst).length
            assert double_tree_cycle(inst).length <= 2.0 * opt + 1e-9

    @pytest.mark.parametrize("make", INSTANCES)
    def test_path_ratio(self, make):
        for seed in range(5):
            inst = make(9, seed)
            opt = held_karp_path(inst).length
            assert double_tree_path(inst).length <= 2.0 * opt + 1e-9

    def test_hoogeveen_usually_beats_double_tree(self):
        """Experiment E5's shape at unit scale: mean comparison."""
        h, d = [], []
        for seed in range(10):
            inst = euclidean(10, seed)
            h.append(hoogeveen_path(inst).length)
            d.append(double_tree_path(inst).length)
        assert np.mean(h) <= np.mean(d) + 1e-12
