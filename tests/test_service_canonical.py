"""Canonical form tests: relabeling invariance and practical non-collision."""

import itertools

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.operations import disjoint_union, relabel
from repro.labeling.spec import L11, L21, LpSpec
from repro.service.canonical import canonical_form, canonical_order


def random_relabel(graph: Graph, seed: int) -> Graph:
    perm = np.random.default_rng(seed).permutation(graph.n).tolist()
    return relabel(graph, perm)


def are_isomorphic_bruteforce(a: Graph, b: Graph) -> bool:
    """Exhaustive isomorphism check — only for tiny graphs (n <= 8)."""
    if a.n != b.n or a.m != b.m:
        return False
    edges_b = set(b.edges())
    for perm in itertools.permutations(range(a.n)):
        mapped = {
            (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in a.edges()
        }
        if mapped == edges_b:
            return True
    return False


FAMILIES = {
    "diam2": lambda seed: gen.random_graph_with_diameter_at_most(
        14, 2, seed=seed
    ),
    "diam3": lambda seed: gen.random_graph_with_diameter_at_most(
        18, 3, seed=seed
    ),
    "geometric": lambda seed: gen.random_geometric_graph(
        16, 0.6, seed=seed
    )[0],
    "gnp": lambda seed: gen.random_connected_gnp(12, 0.4, seed=seed),
    "cycle": lambda seed: gen.cycle_graph(7 + seed),
    "wheel": lambda seed: gen.wheel_graph(6 + seed),
    "complete_bipartite": lambda seed: gen.complete_bipartite_graph(
        3 + seed, 5
    ),
    "complete": lambda seed: gen.complete_graph(5 + seed),
}


class TestRelabelingInvariance:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_relabeled_copies_share_keys(self, family, seed):
        g = FAMILIES[family](seed)
        reference = canonical_form(g, L21)
        for perm_seed in range(4):
            h = random_relabel(g, 1000 * seed + perm_seed)
            assert canonical_form(h, L21).key == reference.key, (
                f"{family} seed={seed} perm={perm_seed}: key not invariant"
            )

    def test_key_depends_on_spec(self):
        g = gen.cycle_graph(6)
        assert canonical_form(g, L21).key != canonical_form(g, L11).key
        assert canonical_form(g, L21).key != canonical_form(g, LpSpec((2, 2))).key

    def test_trivial_graphs(self):
        assert canonical_order(Graph(0)) == ()
        assert canonical_order(Graph(1)) == (0,)
        a = canonical_form(Graph(2, [(0, 1)]), L21)
        b = canonical_form(Graph(2, [(0, 1)]), L21)
        assert a.key == b.key


class TestCanonicalStructure:
    def test_order_is_permutation(self):
        g = gen.random_graph_with_diameter_at_most(20, 2, seed=7)
        order = canonical_order(g)
        assert sorted(order) == list(range(g.n))

    def test_canonical_edges_define_isomorphic_graph(self):
        g = gen.random_connected_gnp(10, 0.5, seed=3)
        form = canonical_form(g, L21)
        h = Graph(form.n, form.edges)
        assert h.m == g.m
        assert sorted(h.degrees()) == sorted(g.degrees())

    def test_label_roundtrip_through_canonical_coordinates(self):
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=5)
        form = canonical_form(g, L21)
        labels = tuple(range(g.n))
        assert form.from_canonical_labels(form.to_canonical_labels(labels)) == labels

    def test_isomorphic_requests_share_canonical_graph(self):
        # the cache-soundness property: equal keys must mean the canonical
        # edge sets coincide, so labelings transfer through the positions
        g = gen.random_connected_gnp(9, 0.45, seed=11)
        h = random_relabel(g, 42)
        fg, fh = canonical_form(g, L21), canonical_form(h, L21)
        assert fg.key == fh.key
        assert fg.edges == fh.edges


class TestNonCollision:
    def test_c6_vs_two_triangles(self):
        # the classic equal-degree-sequence pair (all vertices degree 2)
        c6 = gen.cycle_graph(6)
        kk = disjoint_union(gen.cycle_graph(3), gen.cycle_graph(3))
        assert not are_isomorphic_bruteforce(c6, kk)
        assert canonical_form(c6, L21).key != canonical_form(kk, L21).key

    def test_nonisomorphic_trees_same_degree_sequence(self):
        # two trees on 7 vertices, degree sequence [1,1,1,1,2,2,3] each
        t1 = Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (5, 6)])
        t2 = Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (5, 6)])
        assert sorted(t1.degrees()) == sorted(t2.degrees())
        assert not are_isomorphic_bruteforce(t1, t2)
        assert canonical_form(t1, L21).key != canonical_form(t2, L21).key

    def test_random_equal_degree_sequence_pairs(self):
        # double-edge-swap preserves the degree sequence but (almost always)
        # changes the isomorphism class; verified by brute force on n=8
        rng = np.random.default_rng(0)
        checked = 0
        for seed in range(20):
            g = gen.random_connected_gnp(8, 0.4, seed=seed)
            h = _double_edge_swap(g, rng)
            if h is None or are_isomorphic_bruteforce(g, h):
                continue
            checked += 1
            assert canonical_form(g, L21).key != canonical_form(h, L21).key, (
                f"collision for non-isomorphic equal-degree pair, seed={seed}"
            )
        assert checked >= 5  # the sweep must actually exercise distinct pairs

    def test_distinct_random_graphs_distinct_keys(self):
        keys = set()
        graphs = []
        for seed in range(15):
            g = gen.random_graph_with_diameter_at_most(12, 2, seed=seed)
            if any(g == other for other in graphs):
                continue
            graphs.append(g)
            keys.add(canonical_form(g, L21).key)
        assert len(keys) == len(graphs)


def _double_edge_swap(graph: Graph, rng: np.random.Generator) -> Graph | None:
    """Swap endpoints of two disjoint edges: {a,b},{c,d} -> {a,d},{c,b}."""
    edges = list(graph.edges())
    for _ in range(100):
        i, j = rng.integers(0, len(edges), size=2)
        (a, b), (c, d) = edges[i], edges[int(j)]
        if len({a, b, c, d}) != 4:
            continue
        if graph.has_edge(a, d) or graph.has_edge(c, b):
            continue
        h = graph.copy()
        h.remove_edge(a, b)
        h.remove_edge(c, d)
        h.add_edge(a, d)
        h.add_edge(c, b)
        return h
    return None
