"""MST, matching and Eulerian-walk substrate tests (networkx as oracle)."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.errors import ReproError
from repro.tsp.eulerian import Multigraph, eulerian_circuit, eulerian_trail, shortcut
from repro.tsp.instance import TSPInstance
from repro.tsp.matching import (
    matching_weight,
    min_weight_near_perfect_matching,
    min_weight_perfect_matching,
)
from repro.tsp.mst import mst_weight, prim_mst


class TestMST:
    def test_tree_shape(self):
        inst = TSPInstance.random_metric(10, seed=0)
        edges = prim_mst(inst)
        assert len(edges) == 9
        g = nx.Graph(edges)
        assert nx.is_tree(g) and g.number_of_nodes() == 10

    def test_weight_matches_networkx(self):
        for seed in range(6):
            inst = TSPInstance.random_metric(9, seed=seed)
            g = nx.Graph()
            for i in range(9):
                for j in range(i + 1, 9):
                    g.add_edge(i, j, weight=inst.weight(i, j))
            oracle = nx.minimum_spanning_tree(g).size(weight="weight")
            assert mst_weight(inst) == pytest.approx(oracle)

    def test_trivial(self):
        assert prim_mst(TSPInstance(np.zeros((1, 1)))) == []
        assert prim_mst(TSPInstance(np.zeros((0, 0)))) == []

    def test_mst_lower_bounds_ham_path(self):
        from repro.tsp.held_karp import held_karp_path
        for seed in range(4):
            inst = TSPInstance.random_metric(8, seed=seed)
            assert mst_weight(inst) <= held_karp_path(inst).length + 1e-9


class TestPerfectMatching:
    def brute_force(self, w, vertices):
        best = np.inf
        vs = list(vertices)
        def rec(pool, acc):
            nonlocal best
            if not pool:
                best = min(best, acc)
                return
            a = pool[0]
            for i in range(1, len(pool)):
                b = pool[i]
                rec(pool[1:i] + pool[i + 1:], acc + w[a, b])
        rec(vs, 0.0)
        return best

    @pytest.mark.parametrize("size", [2, 4, 6, 8])
    def test_exact_matches_brute_force(self, size):
        for seed in range(3):
            inst = TSPInstance.random_metric(size + 2, seed=seed)
            verts = list(range(1, size + 1))
            edges = min_weight_perfect_matching(inst.weights, verts)
            assert matching_weight(inst.weights, edges) == pytest.approx(
                self.brute_force(inst.weights, verts)
            )
            covered = sorted(v for e in edges for v in e)
            assert covered == sorted(verts)

    def test_matches_networkx(self):
        for seed in range(4):
            inst = TSPInstance.random_metric(8, seed=seed)
            verts = list(range(8))
            mine = matching_weight(
                inst.weights, min_weight_perfect_matching(inst.weights, verts)
            )
            g = nx.Graph()
            for i, j in itertools.combinations(verts, 2):
                g.add_edge(i, j, weight=inst.weight(i, j))
            oracle_edges = nx.min_weight_matching(g)
            oracle = sum(inst.weight(u, v) for u, v in oracle_edges)
            assert mine == pytest.approx(oracle)

    def test_odd_set_rejected(self):
        inst = TSPInstance.random_metric(5, seed=0)
        with pytest.raises(ReproError):
            min_weight_perfect_matching(inst.weights, [0, 1, 2])

    def test_heuristic_path_reasonable(self):
        # force the heuristic by setting the exact cap to 0
        inst = TSPInstance.random_metric(12, seed=1)
        verts = list(range(12))
        heur = min_weight_perfect_matching(inst.weights, verts, max_exact=0)
        exact = min_weight_perfect_matching(inst.weights, verts)
        hw = matching_weight(inst.weights, heur)
        ew = matching_weight(inst.weights, exact)
        assert hw >= ew - 1e-12
        assert hw <= 1.5 * ew + 1e-9  # 2-exchange gets close on Euclidean


class TestNearPerfectMatching:
    def test_leaves_exactly_two_exposed(self):
        inst = TSPInstance.random_metric(10, seed=2)
        verts = list(range(10))
        edges, (a, b) = min_weight_near_perfect_matching(inst.weights, verts)
        covered = {v for e in edges for v in e}
        assert a not in covered and b not in covered and a != b
        assert covered | {a, b} == set(verts)

    def test_optimal_vs_brute_force(self):
        inst = TSPInstance.random_metric(8, seed=3)
        verts = list(range(8))
        edges, _ = min_weight_near_perfect_matching(inst.weights, verts)
        mine = matching_weight(inst.weights, edges)
        # brute force over exposed pairs + perfect matching of the rest
        best = np.inf
        for a, b in itertools.combinations(verts, 2):
            rest = [v for v in verts if v not in (a, b)]
            m = min_weight_perfect_matching(inst.weights, rest)
            best = min(best, matching_weight(inst.weights, m))
        assert mine == pytest.approx(best)

    def test_size_two(self):
        inst = TSPInstance.random_metric(3, seed=0)
        edges, exposed = min_weight_near_perfect_matching(inst.weights, [0, 2])
        assert edges == [] and set(exposed) == {0, 2}

    def test_odd_set_rejected(self):
        inst = TSPInstance.random_metric(5, seed=0)
        with pytest.raises(ReproError):
            min_weight_near_perfect_matching(inst.weights, [0, 1, 2])


class TestEulerian:
    def test_circuit_uses_every_edge_once(self):
        mg = Multigraph(4)
        for u, v in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 0)]:
            mg.add_edge(u, v)
        walk = eulerian_circuit(mg, 0)
        assert walk[0] == walk[-1] == 0
        assert len(walk) == mg.m + 1

    def test_circuit_rejects_odd_degrees(self):
        mg = Multigraph(2)
        mg.add_edge(0, 1)
        with pytest.raises(ReproError):
            eulerian_circuit(mg, 0)

    def test_trail_two_odd_vertices(self):
        mg = Multigraph(3)
        for u, v in [(0, 1), (1, 2)]:
            mg.add_edge(u, v)
        walk = eulerian_trail(mg)
        assert {walk[0], walk[-1]} == {0, 2}
        assert len(walk) == 3

    def test_trail_rejects_bad_start(self):
        mg = Multigraph(3)
        mg.add_edge(0, 1)
        mg.add_edge(1, 2)
        with pytest.raises(ReproError):
            eulerian_trail(mg, start=1)

    def test_trail_rejects_four_odd(self):
        mg = Multigraph(4)
        for u, v in [(0, 1), (2, 3)]:
            mg.add_edge(u, v)
        with pytest.raises(ReproError):
            eulerian_trail(mg)

    def test_disconnected_edges_detected(self):
        mg = Multigraph(4)
        mg.add_edge(0, 1)
        mg.add_edge(0, 1)
        mg.add_edge(2, 3)
        mg.add_edge(2, 3)
        with pytest.raises(ReproError):
            eulerian_circuit(mg, 0)

    def test_shortcut(self):
        assert shortcut([0, 1, 2, 1, 3, 0]) == [0, 1, 2, 3]
        assert shortcut([]) == []
