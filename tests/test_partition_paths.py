"""PARTITION INTO PATHS and the Corollary-2 pipeline."""

import numpy as np
import pytest

from repro.errors import ReductionNotApplicableError, ReproError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.labeling.exact import exact_span
from repro.labeling.spec import L21, LpSpec
from repro.partition.diameter2 import (
    Diameter2Result,
    solve_lpq_diameter2,
    span_from_path_count,
)
from repro.partition.paths_partition import (
    is_path_partition,
    partition_into_paths_exact,
    partition_into_paths_greedy,
    partition_lower_bound,
)
from repro.reduction.solver import solve_labeling


class TestPartitionExact:
    @pytest.mark.parametrize(
        "make,expected",
        [
            (lambda: gen.path_graph(6), 1),
            (lambda: gen.cycle_graph(5), 1),
            (lambda: gen.empty_graph(4), 4),
            (lambda: gen.star_graph(3), 2),          # K_{1,3}: path + leaf
            (lambda: gen.cluster_graph([3, 3]), 2),
            (lambda: gen.complete_graph(7), 1),
            (lambda: Graph(0), 0),
        ],
    )
    def test_known_counts(self, make, expected):
        g = make()
        s, paths = partition_into_paths_exact(g)
        assert s == expected
        assert is_path_partition(g, paths)

    def test_star_structure(self):
        # K_{1,n}: one path through the centre covers 3 vertices; the other
        # n-2 leaves are singletons -> s = n - 1 for n >= 2
        for leaves in range(2, 7):
            s, _ = partition_into_paths_exact(gen.star_graph(leaves))
            assert s == leaves - 1

    def test_certificate_always_valid(self, random_connected_graphs):
        for g in random_connected_graphs[:10]:
            s, paths = partition_into_paths_exact(g)
            assert is_path_partition(g, paths)
            assert len(paths) == s

    def test_lower_bound_respected(self, random_connected_graphs):
        for g in random_connected_graphs[:10]:
            s, _ = partition_into_paths_exact(g)
            assert s >= partition_lower_bound(g)

    def test_hamiltonian_path_iff_s1(self):
        from repro.hamiltonicity import has_hamiltonian_path
        rng = np.random.default_rng(7)
        for _ in range(15):
            g = gen.random_gnp(7, float(rng.uniform(0.2, 0.6)), seed=rng)
            s, _ = partition_into_paths_exact(g)
            assert (s == 1) == has_hamiltonian_path(g)

    def test_size_cap(self):
        with pytest.raises(ReproError):
            partition_into_paths_exact(gen.empty_graph(25))


class TestPartitionGreedy:
    def test_upper_bounds_exact(self, random_connected_graphs):
        for g in random_connected_graphs[:10]:
            s_exact, _ = partition_into_paths_exact(g)
            s_greedy, paths = partition_into_paths_greedy(g, seed=0)
            assert is_path_partition(g, paths)
            assert s_greedy >= s_exact

    def test_handles_empty_graph(self):
        s, paths = partition_into_paths_greedy(gen.empty_graph(5), seed=0)
        assert s == 5 and len(paths) == 5

    def test_path_graph_often_optimal(self):
        s, _ = partition_into_paths_greedy(gen.path_graph(10), seed=0)
        assert s <= 2  # low-degree-first peeling finds the path or near it


class TestIsPathPartition:
    def test_rejects_overlap(self):
        g = gen.path_graph(3)
        assert not is_path_partition(g, [[0, 1], [1, 2]])

    def test_rejects_non_edges(self):
        g = gen.path_graph(3)
        assert not is_path_partition(g, [[0, 2], [1]])

    def test_rejects_uncovered(self):
        g = gen.path_graph(3)
        assert not is_path_partition(g, [[0, 1]])

    def test_rejects_empty_path(self):
        g = gen.path_graph(2)
        assert not is_path_partition(g, [[0, 1], []])


class TestCorollary2Pipeline:
    def test_formula(self):
        assert span_from_path_count(9, 1, 2, 5) == 8 * 1 + 1 * 4
        assert span_from_path_count(9, 2, 1, 5) == 8 * 1 + 1 * 4
        assert span_from_path_count(1, 2, 1, 1) == 0

    def test_matches_tsp_and_brute_force(self, diam2_graphs):
        for g in diam2_graphs[:8]:
            for spec in (L21, LpSpec((1, 2)), LpSpec((1, 1)), LpSpec((2, 2))):
                r = solve_lpq_diameter2(g, spec, method="exact")
                assert r.span == solve_labeling(g, spec, engine="held_karp").span
                if g.n <= 9:
                    assert r.span == exact_span(g, spec)

    def test_route_selection(self):
        g = gen.petersen_graph()
        assert solve_lpq_diameter2(g, L21).on_complement          # p > q
        assert not solve_lpq_diameter2(g, LpSpec((1, 2))).on_complement

    def test_exact_formula_equality(self, diam2_graphs):
        for g in diam2_graphs[:6]:
            r = solve_lpq_diameter2(g, L21, method="exact")
            p, q = L21.p
            assert r.span == span_from_path_count(g.n, p, q, r.path_count)

    def test_greedy_method_upper_bound(self, diam2_graphs):
        for g in diam2_graphs[:6]:
            exact = solve_lpq_diameter2(g, L21, method="exact")
            greedy = solve_lpq_diameter2(g, L21, method="greedy")
            assert greedy.span >= exact.span
            assert greedy.labeling.is_feasible(g, L21)

    def test_wide_pq_rejected(self):
        """Corollary 2 inherits Theorem 2's weight condition.

        Regression: for L(5,1) the path-partition formula undercounts the
        true span on most diameter-2 graphs (e.g. the star-plus-edge below:
        formula 8, true span 10), so the pipeline must refuse.
        """
        spec = LpSpec((5, 1))
        with pytest.raises(ReductionNotApplicableError, match="p_max"):
            solve_lpq_diameter2(gen.complete_graph(4), spec)
        # the concrete counterexample from the investigation
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
        from repro.graphs.operations import complement
        from repro.partition.paths_partition import partition_into_paths_exact
        s, _ = partition_into_paths_exact(complement(g))
        formula = span_from_path_count(5, 5, 1, s)
        assert formula == 8 and exact_span(g, spec) == 10  # formula is wrong

    def test_requires_k2(self):
        with pytest.raises(ReductionNotApplicableError):
            solve_lpq_diameter2(gen.complete_graph(4), LpSpec((2, 1, 1)))

    def test_requires_diameter2(self):
        with pytest.raises(ReductionNotApplicableError):
            solve_lpq_diameter2(gen.path_graph(5), L21)

    def test_requires_connected(self):
        with pytest.raises(ReductionNotApplicableError):
            solve_lpq_diameter2(Graph(4, [(0, 1), (2, 3)]), L21)

    def test_unknown_method(self):
        with pytest.raises(ReductionNotApplicableError):
            solve_lpq_diameter2(gen.complete_graph(4), L21, method="quantum")

    def test_complete_multipartite_structure(self):
        # complement of K_{3,3,3} is 3 disjoint K_3s: s = 3 paths
        g = gen.complete_multipartite_graph([3, 3, 3])
        r = solve_lpq_diameter2(g, L21, method="exact")
        assert r.on_complement and r.path_count == 3
        assert r.span == span_from_path_count(9, 2, 1, 3) == 10

    def test_result_type(self):
        r = solve_lpq_diameter2(gen.complete_graph(3), L21)
        assert isinstance(r, Diameter2Result)
