"""Tests for the QoS router: tier selection, deadline drops, loadgen accounting.

The degradation contract under pressure is exact -> approx -> 429: an idle
server answers exactly, a pressured one downgrades ``auto`` requests to
the one-pass approx tier, and only a full queue rejects.  Deadline-expired
work is dropped *before* any solver runs — counted, never errored.  The
load harness mirrors the same three-valued outcome model: intentional
shedding is ``dropped``, never an error, so ``load --fail-on-errors``
holds under deliberate overload.
"""

import threading
import time

import pytest

from repro.errors import (
    ERROR_TABLE,
    DeadlineExpiredError,
    ServiceOverloadedError,
)
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.harness.loadgen import (
    DROP_STATUSES,
    LoadReport,
    PayloadInstance,
    StepReport,
    _classify,
    default_payload_instances,
)
from repro.labeling.spec import L21
from repro.obs import REGISTRY
from repro.service.protocol import SolveRequest
from repro.service.server import ConcurrentLabelingService, QosRouter

ENGINE = "nearest_neighbor"  # cheapest engine: these tests exercise routing


def make_server(**kwargs):
    kwargs.setdefault("offload", False)  # deterministic inline solves
    return ConcurrentLabelingService(**kwargs)


def gated_solver(server, started=None, release=None):
    """Event-gate the server's inline exact solve (no sleeps in tests)."""
    solver = server.service.solver
    orig = solver._solve_inline

    def gated(job, form, request):
        if started is not None:
            started.set()
        if release is not None:
            assert release.wait(timeout=10), "test forgot to release the solver"
        return orig(job, form, request)

    solver._solve_inline = gated
    return solver


def counting_solvers(server):
    """Count every exact and approx solve the server actually runs."""
    solver = server.service.solver
    counts = {"exact": 0, "approx": 0}
    orig_exact = solver._solve_inline
    orig_approx = solver._solve_approx_inline

    def exact(job, form, request):
        counts["exact"] += 1
        return orig_exact(job, form, request)

    def approx(form, request):
        counts["approx"] += 1
        return orig_approx(form, request)

    solver._solve_inline = exact
    solver._solve_approx_inline = approx
    return counts


def _graphs(count, n=10, start=0):
    return [
        gen.random_graph_with_diameter_at_most(n, 2, seed=start + i)
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# routing policy (unit level)
# ---------------------------------------------------------------------------
def test_router_policy_matrix():
    router = QosRouter(queue_size=8)  # approx_depth = 4
    g = Graph(3, [(0, 1), (1, 2)])
    big = Graph(300, [(i, i + 1) for i in range(299)])

    def req(**kw):
        return SolveRequest(g, L21, engine=ENGINE, **kw)

    assert router.route(req(tier="auto"), queue_depth=0) == "exact"
    assert router.route(req(tier="auto"), queue_depth=4) == "approx"
    # explicit tiers are always honored, pressure or not
    assert router.route(req(tier="exact"), queue_depth=8) == "exact"
    assert router.route(req(tier="approx"), queue_depth=0) == "approx"
    # big instances and tight deadlines degrade auto
    assert router.route(
        SolveRequest(big, L21, engine=ENGINE, tier="auto"), queue_depth=0
    ) == "approx"
    assert router.route(
        req(tier="auto", deadline_ms=50), queue_depth=0
    ) == "approx"
    assert router.route(
        req(tier="auto", deadline_ms=5000), queue_depth=0
    ) == "exact"

    state = router.to_json()
    assert state["exact"] == 3 and state["approx"] == 4
    # explicit-approx requests are honored, not "degraded"
    assert state["degraded"] == 3
    assert state["approx_depth"] == 4


def test_wire_codes_for_shedding():
    """Both shed paths map to the statuses the harness treats as drops."""
    assert ERROR_TABLE[ServiceOverloadedError] == ("overloaded", 429)
    assert ERROR_TABLE[DeadlineExpiredError] == ("deadline_expired", 504)
    assert {429, 504} == set(DROP_STATUSES)


# ---------------------------------------------------------------------------
# degradation order under saturation
# ---------------------------------------------------------------------------
def test_degradation_order_exact_then_approx_then_429():
    graphs = _graphs(4)
    server = make_server(workers=1, queue_size=2)  # approx_depth = 1
    started, release = threading.Event(), threading.Event()
    gated_solver(server, started=started, release=release)
    try:
        # idle: auto routes exact; the worker picks it up and blocks
        first = server.submit(SolveRequest(graphs[0], L21, engine=ENGINE))
        assert started.wait(timeout=10)
        # depth 0: still exact (fills queue slot 1)
        second = server.submit(SolveRequest(graphs[1], L21, engine=ENGINE))
        # depth 1 >= approx_depth: auto degrades to approx (slot 2)
        third = server.submit(SolveRequest(graphs[2], L21, engine=ENGINE))
        # queue full: the only move left is rejection
        with pytest.raises(ServiceOverloadedError):
            server.submit(
                SolveRequest(graphs[3], L21, engine=ENGINE), block=False
            )
        release.set()
        results = [f.result(timeout=30) for f in (first, second, third)]
    finally:
        release.set()
        server.shutdown(wait=True)

    assert [r.tier for r in results] == ["exact", "exact", "approx"]
    assert results[2].gap is not None and results[2].gap >= 0
    for res, g in zip(results, graphs):
        res.labeling.require_feasible(g, L21)
    state = server.router.to_json()
    assert state["exact"] == 2
    assert state["approx"] == 2  # the rejected 4th was routed before the 429
    assert state["degraded"] == 2
    assert server.stats.rejected == 1


def test_saturated_queue_size_1_rejects_after_degrading():
    """The minimal server: one slot, one worker — route still precedes 429."""
    graphs = _graphs(3, start=20)
    server = make_server(workers=1, queue_size=1)  # approx_depth = 1
    started, release = threading.Event(), threading.Event()
    gated_solver(server, started=started, release=release)
    try:
        first = server.submit(SolveRequest(graphs[0], L21, engine=ENGINE))
        assert started.wait(timeout=10)
        second = server.submit(SolveRequest(graphs[1], L21, engine=ENGINE))
        with pytest.raises(ServiceOverloadedError):
            server.submit(
                SolveRequest(graphs[2], L21, engine=ENGINE), block=False
            )
        release.set()
        assert first.result(timeout=30).tier == "exact"
        assert second.result(timeout=30).tier == "exact"
    finally:
        release.set()
        server.shutdown(wait=True)
    state = server.router.to_json()
    assert state["exact"] == 2 and state["approx"] == 1
    assert server.stats.rejected == 1


# ---------------------------------------------------------------------------
# deadline drops
# ---------------------------------------------------------------------------
def test_expired_deadline_dropped_before_any_solve():
    graphs = _graphs(2, start=40)
    server = make_server(workers=1, queue_size=4)
    started, release = threading.Event(), threading.Event()
    gated_solver(server, started=started, release=release)
    counts = counting_solvers(server)
    expired_before = REGISTRY.value("repro_router_expired_total")
    try:
        blocker = server.submit(SolveRequest(graphs[0], L21, engine=ENGINE))
        assert started.wait(timeout=10)
        # queued behind the blocker; its 1ms budget expires while waiting
        doomed = server.submit(
            SolveRequest(
                graphs[1], L21, engine=ENGINE, tier="exact", deadline_ms=1
            )
        )
        time.sleep(0.05)
        release.set()
        assert blocker.result(timeout=30).span >= 0
        with pytest.raises(DeadlineExpiredError):
            doomed.result(timeout=30)
    finally:
        release.set()
        server.shutdown(wait=True)

    # dropped before solving: exactly one solve ran (the blocker's), and
    # the drop is counted — in the router and the registry — not errored
    assert counts == {"exact": 1, "approx": 0}
    assert server.router.to_json()["expired"] == 1
    assert REGISTRY.value("repro_router_expired_total") == expired_before + 1
    assert server.stats.errors == 0
    assert server.stats.completed == 2  # both public futures resolved


def test_generous_deadline_not_dropped():
    g = _graphs(1, start=50)[0]
    server = make_server(workers=1, queue_size=4)
    try:
        res = server.submit(
            SolveRequest(g, L21, engine=ENGINE, deadline_ms=60_000)
        ).result(timeout=30)
        res.labeling.require_feasible(g, L21)
    finally:
        server.shutdown(wait=True)
    assert server.router.to_json()["expired"] == 0


# ---------------------------------------------------------------------------
# mid-stream crash
# ---------------------------------------------------------------------------
def test_mid_stream_crash_still_resolves_every_public_future():
    graphs = _graphs(6, start=60)
    server = make_server(workers=2, queue_size=8)
    solver = server.service.solver
    orig = solver._solve_inline
    crash_on = {2}  # the third distinct solve dies mid-stream

    def crashing(job, form, request, _seen=[]):
        idx = len(_seen)
        _seen.append(form.key)
        if idx in crash_on:
            raise RuntimeError("injected mid-stream worker crash")
        return orig(job, form, request)

    solver._solve_inline = crashing
    try:
        futures = [
            server.submit(SolveRequest(g, L21, engine=ENGINE)) for g in graphs
        ]
        outcomes = []
        for fut in futures:
            try:
                outcomes.append(("ok", fut.result(timeout=30)))
            except RuntimeError as exc:
                outcomes.append(("crashed", exc))
    finally:
        server.shutdown(wait=True)

    kinds = [k for k, _ in outcomes]
    assert kinds.count("crashed") == 1
    assert kinds.count("ok") == len(graphs) - 1
    for (kind, res), g in zip(outcomes, graphs):
        if kind == "ok":
            res.labeling.require_feasible(g, L21)
    # every public future resolved; the crash is an error, not a hang
    assert server.stats.completed == len(graphs)
    assert server.stats.errors == 1


# ---------------------------------------------------------------------------
# loadgen dropped-accounting
# ---------------------------------------------------------------------------
def test_classify_drop_statuses_are_not_errors():
    for status in (429, 504):
        assert _classify(status, b"{}", b"raw") == ("dropped", False)
    assert _classify(500, b"{}", b"raw") == ("error", False)
    assert _classify(200, b"not json", b"raw") == ("error", False)


def test_classify_verifies_feasibility_only_with_instance():
    inst = PayloadInstance(body=b"{}", graph=Graph(2, [(0, 1)]), spec=L21)
    ok = b'{"labels": [0, 2], "tier": "approx"}'
    bad = b'{"labels": [0, 0], "tier": "exact"}'
    assert _classify(200, ok, inst) == ("ok", True)
    assert _classify(200, bad, inst) == ("infeasible", False)
    # bytes payloads carry no instance: no verification, approx flag only
    assert _classify(200, bad, b"raw") == ("ok", False)


def test_step_report_separates_drops_from_errors():
    step = StepReport(
        offered_rps=50.0, duration=1.0, sent=10, completed=4, errors=1,
        achieved_rps=4.0, p50_ms=1.0, p95_ms=2.0, p99_ms=3.0,
        dropped=3, approx=2, infeasible=2,
    )
    assert step.error_rate == pytest.approx(0.3)  # drops excluded
    row = step.to_json()
    assert row["dropped"] == 3 and row["approx"] == 2
    assert row["infeasible"] == 2

    report = LoadReport(steps=(step, step))
    assert report.total_dropped == 6
    assert report.total_errors == 2
    assert report.total_infeasible == 4
    assert report.total_approx == 4
    doc = report.to_json()
    assert doc["total_dropped"] == 6 and doc["total_infeasible"] == 4


def test_default_payload_instances_carry_tier_and_deadline():
    import json as _json

    pool = default_payload_instances(
        count=3, seed=7, tier="approx", deadline_ms=250
    )
    assert len(pool) == 3
    for inst in pool:
        body = _json.loads(inst.body)
        assert body["tier"] == "approx" and body["deadline_ms"] == 250
        assert inst.graph.n == 12 and inst.spec == L21
