"""Shared-memory arena + persistent worker pool: lifecycle and robustness.

The invariants under test are the tentpole's acceptance criteria:

- **zero-copy**: workers solve on numpy views into the parent's segment,
  never on a rebuilt matrix (probed in-process, asserted via numpy flags);
- **zero leaks**: every ``repro_shm_*`` name is gone from ``/dev/shm``
  after shutdown, eviction, crash, or interpreter exit — the session
  fixture in ``conftest.py`` backstops every test here;
- **no hangs**: a worker SIGKILLed mid-solve fails its futures with
  :class:`WorkerCrashedError` promptly and the pool keeps serving.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ReproError, WorkerCrashedError
from repro.graphs import generators as gen
from repro.graphs.analysis import export_buffers, get_analysis
from repro.labeling.spec import LpSpec
from repro.parallel.shm_pool import (
    ShmArena,
    ShmWorkerPool,
    _attach_segment,
    _views,
)
from repro.reduction.solver import solve_labeling

from repro.parallel.shm_pool import live_segment_names as repro_shm_segments

SPEC = (2, 1)
ENGINE = "lk"

#: Start methods exercised by the pool tests.  fork is the Linux default
#: and the serving path's production mode; spawn is what macOS/Windows
#: would use and proves no state sneaks across by inheritance.
START_METHODS = [
    m
    for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


def small_graph(seed: int = 7):
    """A diameter-2 instance small enough for sub-100ms solves."""
    return gen.random_graph_with_diameter_at_most(10, 2, seed=seed)


def publish(arena: ShmArena, key: str, seed: int = 7):
    """Publish one small graph's buffers; returns (descriptor, graph)."""
    graph = small_graph(seed)
    descriptor = arena.publish(key, export_buffers(get_analysis(graph)))
    return descriptor, graph


def retry_crashed(submit_once, attempts: int = 10):
    """Resubmit through WorkerCrashedError — the pool's documented contract
    after a worker death (a submit racing death detection can still fail)."""
    for _ in range(attempts):
        try:
            return submit_once().result(timeout=60)
        except WorkerCrashedError:
            time.sleep(0.05)
    pytest.fail("pool never recovered after worker death")


class TestShmArena:
    def test_publish_attach_roundtrip(self):
        with ShmArena() as arena:
            descriptor, graph = publish(arena, "k0")
            shm = _attach_segment(descriptor.segment)
            try:
                views = _views(shm, descriptor)
                np.testing.assert_array_equal(
                    views["distances"], get_analysis(graph).distances
                )
                np.testing.assert_array_equal(
                    views["indptr"], get_analysis(graph).indptr
                )
                np.testing.assert_array_equal(
                    views["indices"], get_analysis(graph).indices
                )
            finally:
                del views
                shm.close()

    def test_publish_is_idempotent_and_counts_leases(self):
        with ShmArena() as arena:
            d1, _ = publish(arena, "k0")
            d2 = arena.publish("k0", {})  # racing publisher: lease only
            assert d2 is d1 or d2 == d1
            assert len(arena) == 1
            arena.release("k0")
            arena.release("k0")
            arena.release("k0")  # over-release clamps at zero, no raise
            assert len(arena) == 1  # released, not unlinked

    def test_close_unlinks_and_double_close_is_noop(self):
        arena = ShmArena()
        descriptor, _ = publish(arena, "k0")
        assert descriptor.segment in repro_shm_segments()
        arena.close()
        assert descriptor.segment not in repro_shm_segments()
        with pytest.raises(FileNotFoundError):
            _attach_segment(descriptor.segment)
        arena.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            arena.publish("k1", {"x": np.zeros(1)})

    def test_eviction_unlinks_only_idle_entries(self):
        arena = ShmArena(capacity=1)
        try:
            d0, _ = publish(arena, "k0", seed=1)
            arena.release("k0")  # idle -> evictable
            d1, _ = publish(arena, "k1", seed=2)
            # k0 was LRU + idle: evicted and unlinked
            assert d0.segment not in repro_shm_segments()
            assert d1.segment in repro_shm_segments()
            # k1 is leased: publishing k2 may not evict it
            d2, _ = publish(arena, "k2", seed=3)
            assert d1.segment in repro_shm_segments()
            assert len(arena) == 2  # over capacity beats corrupting a lease
        finally:
            arena.close()
        assert not set(repro_shm_segments()) & {
            d0.segment, d1.segment, d2.segment
        }

    def test_lease_returns_none_for_unknown_key(self):
        with ShmArena() as arena:
            assert arena.lease("never-published") is None

    def test_bytes_published_counter(self):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.value("repro_shm_bytes_published_total")
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            arena.publish("k0", {})  # re-lease: no new bytes
        delta = REGISTRY.value("repro_shm_bytes_published_total") - before
        assert delta == descriptor.nbytes > 0


@pytest.mark.parametrize("start_method", START_METHODS)
class TestShmWorkerPool:
    def test_pool_solve_matches_inline(self, start_method):
        graph = small_graph()
        inline = solve_labeling(graph, LpSpec(SPEC), engine=ENGINE)
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(2, start_method=start_method) as pool:
                pool.wait_ready()
                key, labels, span, engine, exact, seconds = pool.submit(
                    descriptor, ("k0", SPEC, ENGINE)
                ).result(timeout=60)
        assert key == "k0"
        assert span == inline.span
        assert labels == inline.labeling.labels
        assert engine == inline.engine and exact == inline.exact
        assert seconds >= 0

    def test_worker_views_are_zero_copy(self, start_method):
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(1, start_method=start_method) as pool:
                report = pool.probe(descriptor).result(timeout=60)
        assert report["pid"] != os.getpid()
        assert report["owns_data"] is False
        assert report["base_is_shm_buffer"] is True
        assert report["nbytes"] > 0

    def test_repeat_keys_stick_to_one_worker(self, start_method):
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(2, start_method=start_method) as pool:
                pool.wait_ready()
                for _ in range(6):
                    pool.submit(
                        descriptor, ("k0", SPEC, ENGINE)
                    ).result(timeout=60)
                counts = pool.dispatch_counts()
        # key affinity: every job for one canonical key on one worker
        assert sorted(counts) == [0, 6]

    def test_fresh_keys_spread_across_workers(self, start_method):
        with ShmArena() as arena:
            with ShmWorkerPool(2, start_method=start_method) as pool:
                pool.wait_ready()
                futures = []
                for i in range(4):
                    descriptor, _ = publish(arena, f"k{i}", seed=i)
                    futures.append(pool.probe(descriptor))
                pids = {f.result(timeout=60)["pid"] for f in futures}
                assert len(pids) == 2  # least-loaded routing used both
                assert pool.route_imbalance() == pytest.approx(1.0)

    def test_submit_after_shutdown_raises(self, start_method):
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
        pool = ShmWorkerPool(1, start_method=start_method)
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(ReproError, match="shut down"):
            pool.submit(descriptor, ("k0", SPEC, ENGINE))


class TestWorkerDeath:
    """Crash robustness (fork only: kill timing needs fast start-up)."""

    def test_killed_worker_fails_futures_and_respawns(self):
        from repro.obs.metrics import REGISTRY

        restarts_before = REGISTRY.value("repro_pool_worker_restarts_total")
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(2, start_method="fork") as pool:
                pool.wait_ready()
                futures = [
                    pool.submit(descriptor, ("k0", SPEC, ENGINE))
                    for _ in range(6)
                ]
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                outcomes = []
                for f in futures:
                    try:
                        outcomes.append(f.result(timeout=30))
                    except WorkerCrashedError:
                        outcomes.append("crashed")
                # every future resolved (none hung); at least the in-flight
                # solve on each killed worker crashed
                assert outcomes.count("crashed") >= 1
                assert pool.restart_count >= 1
                # the respawned workers serve again
                _, _, span, *_ = retry_crashed(
                    lambda: pool.submit(descriptor, ("k0", SPEC, ENGINE))
                )
                assert span >= 0
        delta = (
            REGISTRY.value("repro_pool_worker_restarts_total")
            - restarts_before
        )
        assert delta == pool.restart_count >= 1

    def test_crash_hammer_never_hangs_or_leaks(self):
        """Kill workers while submitting; every future must resolve."""
        deadline = time.monotonic() + 60
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(2, start_method="fork") as pool:
                pool.wait_ready()
                for round_no in range(3):
                    futures = [
                        pool.submit(descriptor, ("k0", SPEC, ENGINE))
                        for _ in range(4)
                    ]
                    os.kill(
                        pool.worker_pids()[round_no % 2], signal.SIGKILL
                    )
                    for f in futures:
                        assert time.monotonic() < deadline, "pool hung"
                        try:
                            f.result(timeout=30)
                        except WorkerCrashedError:
                            pass
                # segments stay attached-to and valid throughout
                report = retry_crashed(lambda: pool.probe(descriptor))
                assert report["base_is_shm_buffer"] is True
        assert descriptor.segment not in repro_shm_segments()

    def test_worker_death_does_not_unlink_parent_segments(self):
        with ShmArena() as arena:
            descriptor, _ = publish(arena, "k0")
            with ShmWorkerPool(1, start_method="fork") as pool:
                pool.wait_ready()
                # the worker attaches (and caches) the segment...
                pool.probe(descriptor).result(timeout=60)
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                pool.restart_count  # touch: death handled asynchronously
                time.sleep(0.2)
                # ...and its death must not tear the parent's segment down
                # (bpo-39959: a tracked attach would unlink it here)
                assert descriptor.segment in repro_shm_segments()
                report = retry_crashed(lambda: pool.probe(descriptor))
                assert report["base_is_shm_buffer"] is True
        assert descriptor.segment not in repro_shm_segments()


class TestServerIntegration:
    """The serving front end on the pool: correctness + lifecycle."""

    def test_offloaded_server_leaves_no_segments(self):
        from repro.service.server import ConcurrentLabelingService

        graph = small_graph()
        inline = solve_labeling(graph, LpSpec(SPEC), engine=ENGINE)
        with ConcurrentLabelingService(workers=2, offload=True) as server:
            server.prewarm()
            result = server.submit(graph, LpSpec(SPEC), engine=ENGINE).result(
                timeout=60
            )
            assert result.span == inline.span
        assert not [
            s for s in repro_shm_segments()
            if s.startswith(f"repro_shm_{os.getpid()}_")
        ]

    def test_offloaded_server_publishes_once_per_canonical_key(self):
        from repro.graphs.operations import relabel
        from repro.obs.metrics import REGISTRY
        from repro.service.server import ConcurrentLabelingService

        graph = small_graph()
        before = REGISTRY.value("repro_shm_bytes_published_total")
        with ConcurrentLabelingService(workers=2, offload=True) as server:
            server.prewarm()
            base = server.submit(graph, LpSpec(SPEC), engine=ENGINE).result(
                timeout=60
            )
            # isomorphic repeats: canonical key identical -> cache hits,
            # no new segment; a *forced* cold re-solve of a permuted copy
            # would also reuse the published segment via the arena lease
            permuted = relabel(graph, list(reversed(range(graph.n))))
            again = server.submit(
                permuted, LpSpec(SPEC), engine=ENGINE
            ).result(timeout=60)
            assert again.span == base.span
        published = REGISTRY.value("repro_shm_bytes_published_total") - before
        stats = server.stats.snapshot()
        assert stats["solved"] == 1 and stats["hits"] == 1
        # exactly one publish: the single cold solve's canonical buffers
        assert published > 0
