"""Structured families through the full pipeline: spans with known structure.

Each family has a provable property of its optimum (a closed form, a
complement-structure argument, or a tight lower bound); the pipeline must
land exactly there.  These are the 'realistic workload' analogues of the
closed-form unit tests.
"""

import pytest

from repro.graphs import generators as gen
from repro.graphs.families import paley_graph, turan_graph
from repro.labeling.spec import L21, LpSpec
from repro.partition.diameter2 import solve_lpq_diameter2, span_from_path_count
from repro.reduction.solver import solve_labeling


class TestTuranFamily:
    """T(n, r): complement = r disjoint near-equal cliques.

    For L(2,1) (p=2 > q=1) the partition route runs on the complement,
    where the optimal partition is forced: one path per clique, so
    s = r and λ = (n-1)·1 + (2-1)·(r-1) = n + r - 2.
    """

    @pytest.mark.parametrize("n,r", [(6, 2), (6, 3), (9, 3), (8, 4), (10, 5)])
    def test_l21_closed_form(self, n, r):
        g = turan_graph(n, r)
        expected = n + r - 2
        res = solve_lpq_diameter2(g, L21, method="exact")
        assert res.path_count == r
        assert res.span == expected
        assert solve_labeling(g, L21, engine="held_karp").span == expected

    @pytest.mark.parametrize("n,r", [(6, 3), (9, 3)])
    def test_l12_direct_route(self, n, r):
        """For L(1,2) (p<q) the partition runs on T(n,r) itself, which is
        Hamiltonian-connected enough to give s = 1: λ = n - 1."""
        g = turan_graph(n, r)
        res = solve_lpq_diameter2(g, LpSpec((1, 2)), method="exact")
        assert res.path_count == 1
        assert res.span == n - 1


class TestPaleyFamily:
    @pytest.mark.parametrize("q", [5, 13])
    def test_l21_span_lower_bound_met(self, q):
        """Paley graphs are diam-2 and self-complementary; both G and its
        complement are Hamiltonian (known for q >= 5), so s = 1 on the
        complement and λ = (q-1)·1 + (2-1)·0 = q - 1... plus the p-weight
        correction: with p=2>q=1, λ = (n-1)·1 + 1·(s-1) = n - 1."""
        g = paley_graph(q)
        res = solve_lpq_diameter2(g, L21, method="exact")
        assert res.path_count == 1
        assert res.span == q - 1
        assert solve_labeling(g, L21, engine="held_karp").span == q - 1

    def test_paley5_is_c5(self):
        assert paley_graph(5) == gen.cycle_graph(5)


class TestWheelFamily:
    @pytest.mark.parametrize("rim", [5, 6, 7, 8, 9])
    def test_wheel_formula_through_pipeline(self, rim):
        from repro.labeling.special import l21_span_wheel
        g = gen.wheel_graph(rim)
        assert solve_labeling(g, L21, engine="held_karp").span == \
            l21_span_wheel(rim)


class TestCographFamily:
    def test_connected_cographs_have_diameter_le_2(self):
        """Join-rooted cographs are diameter <= 2, so the pipeline always
        applies — the class the paper cites as polynomial is inside the
        framework's reach."""
        from repro.graphs.cotree import random_connected_cograph
        from repro.graphs.traversal import diameter
        for s in range(6):
            g = random_connected_cograph(9, seed=s)
            if g.n >= 2:
                assert diameter(g) <= 2
                r = solve_labeling(g, L21, engine="held_karp")
                from repro.labeling.exact import exact_span
                assert r.span == exact_span(g, L21)

    def test_cograph_modular_width_2_pipeline(self):
        from repro.graphs.cotree import random_connected_cograph
        from repro.partition.modular import modular_width
        g = random_connected_cograph(10, seed=1)
        assert modular_width(g) == 2
        res = solve_lpq_diameter2(g, L21, method="exact")
        p, q = L21.p
        assert res.span == span_from_path_count(g.n, p, q, res.path_count)
