"""Tests for structured families, TSPLIB interop and the annealing engine."""

import io

import pytest

from repro.errors import GraphError, ReproError
from repro.graphs import generators as gen
from repro.graphs.families import (
    barbell_graph,
    circulant_graph,
    kneser_graph,
    lollipop_graph,
    paley_graph,
    turan_graph,
)
from repro.graphs.operations import complement
from repro.graphs.traversal import diameter, is_connected
from repro.labeling.spec import L21
from repro.reduction.solver import solve_labeling
from repro.reduction.to_tsp import reduce_to_path_tsp
from repro.tsp.annealing import simulated_annealing_path
from repro.tsp.held_karp import held_karp_path
from repro.tsp.instance import TSPInstance
from repro.tsp.tsplib import read_tour, read_tsplib, write_tour, write_tsplib


class TestFamilies:
    def test_circulant_cycle(self):
        assert circulant_graph(6, [1]) == gen.cycle_graph(6)

    def test_circulant_complete(self):
        assert circulant_graph(5, [1, 2]).is_complete()

    def test_circulant_regular(self):
        g = circulant_graph(10, [1, 3])
        assert all(d == 4 for d in g.degrees())

    def test_circulant_bad_connection(self):
        with pytest.raises(GraphError):
            circulant_graph(4, [4, 8])

    @pytest.mark.parametrize("q", [5, 13, 17])
    def test_paley_properties(self, q):
        g = paley_graph(q)
        # self-complementary and (q-1)/2-regular with diameter 2
        assert all(d == (q - 1) // 2 for d in g.degrees())
        assert diameter(g) == 2
        assert g.m == complement(g).m

    def test_paley_rejects_bad_q(self):
        with pytest.raises(GraphError):
            paley_graph(7)   # 7 % 4 != 1
        with pytest.raises(GraphError):
            paley_graph(9)   # not prime

    def test_turan(self):
        g = turan_graph(10, 3)
        assert g.n == 10 and diameter(g) == 2
        # T(10,3) parts 4,3,3 -> m = 4*3 + 4*3 + 3*3
        assert g.m == 12 + 12 + 9

    def test_turan_complete_case(self):
        assert turan_graph(5, 5).is_complete()

    def test_kneser_petersen_isomorphic_stats(self):
        g = kneser_graph(5, 2)
        p = gen.petersen_graph()
        assert (g.n, g.m) == (p.n, p.m)
        assert sorted(g.degrees()) == sorted(p.degrees())
        assert diameter(g) == 2

    def test_kneser_domain(self):
        with pytest.raises(GraphError):
            kneser_graph(4, 3)

    def test_barbell_lollipop(self):
        b = barbell_graph(4, 2)
        assert b.n == 10 and is_connected(b)
        assert diameter(b) > 2  # negative control for the reduction
        lol = lollipop_graph(5, 3)
        assert lol.n == 8 and is_connected(lol)

    def test_paley_through_pipeline(self):
        g = paley_graph(13)
        r = solve_labeling(g, L21, engine="held_karp")
        assert r.labeling.is_feasible(g, L21)
        # diam-2, so all labels distinct: span >= n-1
        assert r.span >= 12

    def test_turan_through_partition_route(self):
        from repro.partition.diameter2 import solve_lpq_diameter2
        g = turan_graph(9, 3)
        r = solve_lpq_diameter2(g, L21, method="exact")
        assert r.path_count == 3  # complement = 3 disjoint triangles


class TestTsplib:
    def test_instance_roundtrip(self):
        g = gen.random_graph_with_diameter_at_most(9, 2, seed=0)
        inst = reduce_to_path_tsp(g, L21).instance
        buf = io.StringIO()
        write_tsplib(inst, buf)
        back = read_tsplib(io.StringIO(buf.getvalue()))
        assert (back.weights == inst.weights).all()

    def test_file_roundtrip(self, tmp_path):
        inst = reduce_to_path_tsp(gen.petersen_graph(), L21).instance
        p = tmp_path / "petersen.tsp"
        write_tsplib(inst, p)
        assert (read_tsplib(p).weights == inst.weights).all()

    def test_non_integral_rejected(self):
        inst = TSPInstance.random_metric(4, seed=0)
        with pytest.raises(ReproError):
            write_tsplib(inst, io.StringIO())

    def test_tour_roundtrip(self, tmp_path):
        order = [3, 0, 2, 1]
        p = tmp_path / "t.tour"
        write_tour(order, p)
        assert read_tour(p) == order

    def test_tour_missing_section(self):
        with pytest.raises(ReproError):
            read_tour(io.StringIO("NAME: x\nEOF\n"))

    def test_bad_tsplib_headers(self):
        with pytest.raises(ReproError):
            read_tsplib(io.StringIO("DIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\n"))
        with pytest.raises(ReproError):
            read_tsplib(io.StringIO(
                "DIMENSION: 2\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
                "EDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n0\nEOF\n"
            ))

    def test_external_solver_loop_simulated(self, tmp_path):
        """The full interop loop with our own engine standing in for LKH."""
        from repro.reduction.from_tour import labeling_from_order
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=1)
        red = reduce_to_path_tsp(g, L21)
        tsp_file = tmp_path / "inst.tsp"
        write_tsplib(red.instance, tsp_file)
        # "external" solver: read the file, solve, write a tour file
        ext_inst = read_tsplib(tsp_file)
        path = held_karp_path(ext_inst)
        tour_file = tmp_path / "out.tour"
        write_tour(path.order, tour_file)
        # back on our side: read the tour, rebuild the labeling
        order = read_tour(tour_file)
        lab = labeling_from_order(red, order)
        assert lab.is_feasible(g, L21)
        assert lab.span == solve_labeling(g, L21, engine="held_karp").span


class TestAnnealing:
    def test_valid_and_deterministic(self):
        inst = TSPInstance.random_metric(15, seed=0)
        a = simulated_annealing_path(inst, seed=7)
        b = simulated_annealing_path(inst, seed=7)
        assert a.order == b.order
        assert sorted(a.order) == list(range(15))

    def test_near_optimal_small(self):
        for seed in range(4):
            inst = TSPInstance.random_metric(10, seed=seed)
            sa = simulated_annealing_path(inst, seed=0)
            opt = held_karp_path(inst).length
            assert sa.length <= 1.15 * opt + 1e-9

    def test_tiny_instances(self):
        for n in (1, 2, 3):
            inst = TSPInstance.random_metric(n, seed=0)
            assert sorted(simulated_annealing_path(inst).order) == list(range(n))

    def test_registered_engine(self):
        from repro.tsp.portfolio import ENGINES
        assert "anneal" in ENGINES
        g = gen.random_graph_with_diameter_at_most(12, 2, seed=2)
        r = solve_labeling(g, L21, engine="anneal")
        assert r.labeling.is_feasible(g, L21)
