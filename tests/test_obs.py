"""Tests for the observability layer: registry, tracing, and wiring.

Covers the metric primitives and exposition formats (including a golden
Prometheus file), exact-total concurrency hammering, span propagation
across thread and process-offload boundaries, the legacy-counter
delegation (``apsp_run_count`` / ``full_apsp_refresh_count``), the atomic
:class:`ServerStats` snapshot, and the CLI/lint surface.

Global-registry assertions always use *deltas*: :data:`repro.obs.REGISTRY`
is process-wide and other tests run before these.
"""

import io
import json
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs import REGISTRY, SpanContext, Tracer, span
from repro.obs.catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM, catalog_entry
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry

GOLDEN = Path(__file__).parent / "data" / "metrics_golden.prom"


def golden_registry() -> MetricsRegistry:
    """The deterministic registry behind the golden exposition file.

    Uses registry-private names (not the catalogue) so the rendering is a
    pure function of this code — global instrumentation can never leak in.
    """
    reg = MetricsRegistry()
    ops = reg.counter("repro_test_ops_total", help="Operations, by kind.")
    ops.labels(kind="read").inc(3)
    ops.labels(kind="write").inc()
    reg.counter("repro_test_plain_total", help="An unlabelled counter.").inc(7)
    gauge = reg.gauge("repro_test_depth_current", help='Depth "now"\\here.')
    gauge.set(2.5)
    hist = reg.histogram(
        "repro_test_latency_seconds",
        help="Latency of the test op.",
        buckets=(0.1, 1.0, 5.0),
    )
    for v in (0.05, 0.05, 0.5, 2.0, 9.0):
        hist.observe(v)
    esc = reg.gauge("repro_test_escapes", help="Label escaping fixture.")
    esc.labels(path='a"b\\c\nd').set(1)
    return reg


class TestMetricPrimitives:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_t_a_total")
        c.inc()
        c.inc(4)
        assert reg.value("repro_t_a_total") == 5
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_gauge_set_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_t_depth")
        g.set(3)
        g.inc(-1)
        assert reg.value("repro_t_depth") == 2

    def test_gauge_callback_weakref(self):
        """A collected owner leaves the last sample, never a crash."""
        reg = MetricsRegistry()

        class Box:
            """Trivial gauge owner."""
            depth = 7

        box = Box()
        g = reg.gauge("repro_t_cb")
        g.set_function(lambda b: b.depth, owner=box)
        assert reg.value("repro_t_cb") == 7
        box.depth = 9
        assert reg.value("repro_t_cb") == 9
        del box
        assert reg.value("repro_t_cb") == 9  # falls back to last sample

    def test_histogram_percentiles(self):
        """Quantiles are monotone and bracket the observed data."""
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_lat_seconds")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms .. 100ms uniform
        s = reg.histogram_summary("repro_t_lat_seconds")
        assert s["count"] == 100
        assert abs(s["sum"] - sum(i / 1000.0 for i in range(1, 101))) < 1e-9
        assert 0.0 < s["p50"] <= s["p95"] <= s["p99"] <= 0.25
        assert 0.025 <= s["p50"] <= 0.1  # true median 50.5ms, bucketed

    def test_histogram_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.histogram("repro_t_bad_seconds", buckets=(1.0, 1.0))

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_x_total")
        with pytest.raises(ReproError):
            reg.gauge("repro_t_x_total")

    def test_catalogued_type_enforced(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.gauge("repro_apsp_runs_total")  # catalogued as a counter

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.counter("0bad name")


class TestRegistryExposition:
    def test_golden_prometheus_file(self):
        """The exposition is byte-identical to the committed golden file."""
        rendered = golden_registry().render_prom()
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_preregistered_catalogue_always_exposed(self):
        """Every catalogued family appears in the global exposition."""
        text = REGISTRY.render_prom()
        for name, (kind, _help) in CATALOG.items():
            assert f"# TYPE {name} {kind}\n" in text

    def test_catalog_entry_lookup(self):
        kind, help_text = catalog_entry("repro_apsp_runs_total")
        assert kind == COUNTER and help_text
        with pytest.raises(ReproError):
            catalog_entry("repro_nope_total")

    def test_catalog_kinds_valid(self):
        assert all(k in (COUNTER, GAUGE, HISTOGRAM)
                   for k, _ in CATALOG.values())

    def test_json_roundtrip(self, tmp_path):
        """save -> load -> render reproduces the exposition exactly."""
        reg = golden_registry()
        path = reg.save(tmp_path / "dump.json")
        loaded = MetricsRegistry.load(path)
        assert loaded.render_prom() == reg.render_prom()

    def test_load_rejects_bad_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "metrics": {}}))
        with pytest.raises(ReproError):
            MetricsRegistry.load(bad)

    def test_histogram_exposition_shape(self):
        """Cumulative buckets, +Inf == _count, and a _sum line."""
        text = golden_registry().render_prom()
        assert 'repro_test_latency_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_test_latency_seconds_bucket{le="1"} 3' in text
        assert 'repro_test_latency_seconds_bucket{le="5"} 4' in text
        assert 'repro_test_latency_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_test_latency_seconds_count 5" in text


class TestConcurrencyHammer:
    def test_counter_exact_totals(self):
        """N threads x M increments land exactly, no lost updates."""
        reg = MetricsRegistry()
        c = reg.counter("repro_t_hammer_total")
        threads, per = 8, 5000

        def work():
            """Hammer the shared counter."""
            child = c.labels()
            for _ in range(per):
                child.inc()

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.value("repro_t_hammer_total") == threads * per

    def test_histogram_exact_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_hammer_seconds")
        threads, per = 6, 2000

        def work(k):
            """Hammer the shared histogram."""
            for i in range(per):
                h.observe((k * per + i) % 13 / 10.0)

        ts = [threading.Thread(target=work, args=(k,)) for k in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.histogram_summary("repro_t_hammer_seconds")["count"] == (
            threads * per
        )


class TestTracer:
    def test_nesting_parents(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert outer.duration >= inner.duration >= 0.0

    def test_tags_recorded(self):
        tr = Tracer()
        with tr.span("op", engine="lk", n=12) as s:
            pass
        assert s.tags == {"engine": "lk", "n": 12}

    def test_thread_propagation(self):
        """activate() parents a worker thread's spans under the client."""
        tr = Tracer()
        seen = {}

        def worker(ctx):
            """Run one span under the propagated context."""
            with tr.activate(ctx):
                with tr.span("work") as s:
                    seen["span"] = s

        with tr.span("client") as root:
            t = threading.Thread(target=worker, args=(tr.current_context(),))
            t.start()
            t.join()
        assert seen["span"].trace_id == root.trace_id
        assert seen["span"].parent_id == root.span_id

    def test_activate_none_noop(self):
        tr = Tracer()
        with tr.activate(None):
            with tr.span("root") as s:
                pass
        assert s.parent_id is None

    def test_drain_ingest_roundtrip(self):
        """Spans survive the JSON row trip across a process boundary."""
        tr = Tracer()
        with tr.span("a", k=1):
            pass
        rows = [s.to_json() for s in tr.drain()]
        assert len(tr) == 0
        tr.ingest(rows)
        (back,) = tr.drain()
        assert back.name == "a" and back.tags == {"k": 1}

    def test_bounded_capacity(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        names = [s.name for s in tr.drain()]
        assert names == ["s6", "s7", "s8", "s9"]  # oldest evicted

    def test_dump_ndjson(self, tmp_path):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                pass
        path = tr.dump_ndjson(tmp_path / "trace.ndjson")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["name"] for r in rows} == {"root", "child"}
        assert len(tr) == 0  # dump drains


class TestServerIntegration:
    def _serve_one(self, offload):
        """One traced solve through a fresh server; returns drained spans."""
        from repro.graphs import generators as gen
        from repro.labeling.spec import L21
        from repro.obs import TRACER
        from repro.service.server import ConcurrentLabelingService

        TRACER.drain()  # isolate from earlier tests
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=5)
        server = ConcurrentLabelingService(workers=2, offload=offload)
        try:
            with span("client") as root:
                server.submit(g, L21, engine="lk").result(timeout=60)
        finally:
            server.shutdown(wait=True)
        return root, TRACER.drain()

    def test_span_propagation_across_worker_thread(self):
        root, spans = self._serve_one(offload=False)
        proc = next(s for s in spans if s.name == "server.process")
        assert proc.trace_id == root.trace_id
        assert proc.parent_id == root.span_id

    def test_span_propagation_across_process_offload(self):
        root, spans = self._serve_one(offload=True)
        proc = next(s for s in spans if s.name == "server.process")
        off = next(s for s in spans if s.name == "solve.offload")
        assert off.trace_id == root.trace_id
        assert off.parent_id == proc.span_id
        assert off.tags["pid"] != __import__("os").getpid()

    def test_request_histograms_populated(self):
        before = REGISTRY.histogram_summary("repro_request_seconds")["count"]
        self._serve_one(offload=False)
        after = REGISTRY.histogram_summary("repro_request_seconds")["count"]
        assert after == before + 1

    def test_worker_utilization_accounting(self):
        from repro.graphs import generators as gen
        from repro.labeling.spec import L21
        from repro.service.server import ConcurrentLabelingService

        g = gen.random_graph_with_diameter_at_most(10, 2, seed=6)
        server = ConcurrentLabelingService(workers=2, offload=False)
        try:
            server.submit(g, L21, engine="lk").result(timeout=60)
            server.drain()
        finally:
            server.shutdown(wait=True)
        util = server.worker_utilization()
        assert len(util) == 2
        assert sum(u["busy_seconds"] for u in util) > 0.0
        for u in util:
            assert 0.0 <= u["utilization"] <= 1.0


class TestLegacyCounterEquivalence:
    def test_apsp_run_count_delegates(self):
        """The legacy counter and the registry move in lockstep."""
        from repro.graphs import generators as gen
        from repro.graphs.traversal import all_pairs_distances, apsp_run_count

        g = gen.random_graph_with_diameter_at_most(8, 2, seed=1)
        legacy0 = apsp_run_count()  # after generation: it runs APSP too
        reg0 = REGISTRY.value("repro_apsp_runs_total")
        assert legacy0 == reg0
        all_pairs_distances(g.copy())  # copy: cold analysis, no memo hit
        assert apsp_run_count() == legacy0 + 1
        assert REGISTRY.value("repro_apsp_runs_total") == reg0 + 1

    def test_full_refresh_delegates(self):
        from repro.dynamic import full_apsp_refresh_count

        assert full_apsp_refresh_count() == REGISTRY.value(
            "repro_full_apsp_refresh_total"
        )

    def test_cache_counters_mirror_stats(self):
        from repro.service.cache import CachedSolve, ResultCache

        h0 = REGISTRY.value("repro_cache_hits_total", tier="single")
        m0 = REGISTRY.value("repro_cache_misses_total", tier="single")
        c = ResultCache(capacity=2)
        c.get("x")
        c.put("x", CachedSolve((0,), 0, "lk", False))
        c.get("x")
        assert REGISTRY.value("repro_cache_hits_total", tier="single") == h0 + 1
        assert REGISTRY.value("repro_cache_misses_total", tier="single") == m0 + 1
        assert (c.stats.hits, c.stats.misses) == (1, 1)

    def test_shard_contention_gauge_tracks_owner(self):
        from repro.service.cache import CachedSolve
        from repro.service.shard import ShardedResultCache

        cache = ShardedResultCache(capacity=64, shards=4)
        cache.put("k", CachedSolve((0,), 0, "lk", False))
        cache.get("k")
        assert REGISTRY.value("repro_shard_contention_rate") == (
            cache.contention_rate
        )


class TestServerStatsAtomic:
    def test_add_validates_fields(self):
        from repro.service.server import ServerStats

        stats = ServerStats()
        with pytest.raises(ReproError):
            stats.add(bogus=1)

    def test_snapshot_exact_under_hammer(self):
        """Concurrent add() calls never tear or lose an update."""
        from repro.service.server import ServerStats

        stats = ServerStats()
        threads, per = 8, 3000

        def work():
            """Hammer correlated fields the way the server does."""
            for _ in range(per):
                stats.add(submitted=1, hits=1, completed=1)

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        snap = stats.snapshot()
        total = threads * per
        assert snap["submitted"] == snap["hits"] == snap["completed"] == total
        assert snap["hit_rate"] == 1.0

    def test_snapshot_consistent_view(self):
        """hit_rate and to_json derive from one atomic read."""
        from repro.service.server import ServerStats

        stats = ServerStats()
        stats.add(submitted=4, hits=1, coalesced=1, solved=2, completed=4)
        snap = stats.to_json()
        assert snap["hit_rate"] == 0.5
        assert stats.hit_rate == 0.5


class TestProfilingSpanAttach:
    def test_hotspots_attached_to_active_span(self):
        from repro.profiling import profile_call

        with span("profiled") as s:
            _, rows = profile_call(lambda: sum(range(10000)), top=3)
        attached = s.tags["hotspots"]
        assert len(attached) == len(rows) <= 3
        assert attached[0]["function"] == rows[0].function
        assert {"function", "calls", "total_seconds",
                "cumulative_seconds"} <= set(attached[0])

    def test_no_span_no_crash(self):
        from repro.profiling import profile_call

        out, rows = profile_call(lambda: 42, top=2)
        assert out == 42 and rows


class TestCliSurface:
    def run_cli(self, argv, stdin_text=None):
        """Invoke repro.cli.main with captured stdout."""
        from repro.cli import main

        old_out, old_in = sys.stdout, sys.stdin
        sys.stdout = io.StringIO()
        if stdin_text is not None:
            sys.stdin = io.StringIO(stdin_text)
        try:
            code = main(argv)
            return code, sys.stdout.getvalue()
        finally:
            sys.stdout, sys.stdin = old_out, old_in

    def test_metrics_no_workload_prom(self):
        """A bare registry exposition lists every catalogued family."""
        code, out = self.run_cli(["metrics", "--no-workload", "--format", "prom"])
        assert code == 0
        for name, (kind, _help) in CATALOG.items():
            assert f"# TYPE {name} {kind}\n" in out

    def test_metrics_no_workload_passes_lint(self):
        sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            from metrics_lint import check_exposition
        finally:
            sys.path.pop(0)
        code, out = self.run_cli(["metrics", "--no-workload"])
        assert code == 0 and check_exposition(out) == []

    def test_metrics_json_format(self):
        code, out = self.run_cli(["metrics", "--no-workload", "--format", "json"])
        data = json.loads(out)
        assert code == 0 and set(CATALOG) <= set(data["metrics"])

    def test_metrics_from_dump(self, tmp_path):
        path = golden_registry().save(tmp_path / "dump.json")
        code, out = self.run_cli(["metrics", "--from", str(path)])
        assert code == 0
        assert "repro_test_ops_total" in out

    def test_metrics_from_missing_file(self, tmp_path):
        code, _out = self.run_cli(
            ["metrics", "--from", str(tmp_path / "nope.json")]
        )
        assert code == 2  # ReproError -> one-line error, not a traceback

    def test_solve_trace_writes_ndjson(self, tmp_path):
        code, out = self.run_cli(["generate", "diam2", "8", "--seed", "2"])
        assert code == 0
        g = tmp_path / "g.edges"
        g.write_text(out)
        trace = tmp_path / "trace.ndjson"
        code, _out = self.run_cli(["solve", str(g), "--trace", str(trace)])
        assert code == 0
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in rows}
        assert {"cli.solve", "solve"} <= names
        root = next(r for r in rows if r["name"] == "cli.solve")
        child = next(r for r in rows if r["name"] == "solve")
        assert child["parent_id"] == root["span_id"]
        assert child["tags"]["n"] == 8

    def test_batch_metrics_dump_roundtrip(self, tmp_path):
        code, out = self.run_cli(["generate", "diam2", "8", "--seed", "3"])
        assert code == 0
        src = tmp_path / "graphs"
        src.mkdir()
        (src / "g.edges").write_text(out)
        dump = tmp_path / "metrics.json"
        code, _out = self.run_cli(
            ["batch", str(src), "--metrics-dump", str(dump)]
        )
        assert code == 0 and dump.exists()
        code, out = self.run_cli(["metrics", "--from", str(dump)])
        assert code == 0 and "repro_apsp_runs_total" in out


class TestMetricsLintScan:
    def _scan(self, tmp_path, source):
        """Run the lint scanner over one synthetic source file."""
        sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            from metrics_lint import scan_sources
        finally:
            sys.path.pop(0)
        f = tmp_path / "mod.py"
        f.write_text(source)
        return scan_sources([str(f)])

    def test_flags_uncatalogued_names(self, tmp_path):
        hits = self._scan(tmp_path, 'X = "repro_rogue_counter_total"\n')
        assert len(hits) == 1 and "repro_rogue_counter_total" in hits[0]

    def test_accepts_catalogued_and_series_suffixes(self, tmp_path):
        hits = self._scan(
            tmp_path,
            'A = "repro_apsp_runs_total"\nB = "repro_request_seconds_bucket"\n',
        )
        assert hits == []

    def test_default_buckets_sane(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert all(b > 0 for b in DEFAULT_BUCKETS)
