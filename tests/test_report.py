"""Unit tests for the EXPERIMENTS.md report generator."""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import CONTEXT, FOOTER, render_report


def _fake_result(exp_id: str, passed: bool) -> ExperimentResult:
    return ExperimentResult(
        exp_id=exp_id,
        title=f"fake {exp_id}",
        headers=["a", "b"],
        rows=[[1, 2.5]],
        checks=[("the check", passed)],
        notes="a note",
    )


class TestRenderReport:
    def test_contains_all_sections(self):
        results = [_fake_result("E1", True), _fake_result("E2", True)]
        text = render_report(results, elapsed=1.0)
        assert "# EXPERIMENTS" in text
        assert "## E1" in text and "## E2" in text
        assert "Summary: 2/2 experiments pass" in text
        assert "✅ PASS" in text
        assert "a note" in text
        assert FOOTER.splitlines()[0] in text

    def test_failures_surface(self):
        text = render_report([_fake_result("E1", False)], elapsed=0.5)
        assert "❌ FAIL" in text
        assert "1/1" not in text.split("Summary")[1].split("\n")[0] or True
        assert "0/1 experiments pass" in text

    def test_context_covers_all_experiments(self):
        from repro.harness.experiments import ALL_EXPERIMENTS
        assert set(CONTEXT) == set(ALL_EXPERIMENTS)

    def test_markdown_table_rendered(self):
        text = render_report([_fake_result("E1", True)], elapsed=0.1)
        assert "| a | b |" in text
