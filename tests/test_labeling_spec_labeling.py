"""LpSpec and Labeling value-object tests."""

import pytest

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.labeling.labeling import Labeling
from repro.labeling.spec import L11, L21, LpSpec, all_ones


class TestSpec:
    def test_basic_properties(self):
        s = LpSpec((2, 1))
        assert s.k == 2 and s.pmin == 1 and s.pmax == 2
        assert str(s) == "L(2, 1)"

    def test_of_constructor(self):
        assert LpSpec.of(3, 2, 2) == LpSpec((3, 2, 2))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            LpSpec(())

    def test_all_zero_rejected(self):
        with pytest.raises(ReproError):
            LpSpec((0, 0))

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            LpSpec((2, -1))

    def test_non_int_rejected(self):
        with pytest.raises(ReproError):
            LpSpec((2.0, 1))  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "p,ok",
        [((2, 1), True), ((1, 1), True), ((2, 2), True), ((3, 1), False),
         ((2, 1, 1), True), ((4, 2, 2), True), ((5, 2, 2), False),
         ((1, 0), False)],  # pmin = 0 not allowed for the reduction
    )
    def test_reduction_applicable(self, p, ok):
        assert LpSpec(p).reduction_applicable is ok

    def test_requirement_lookup(self):
        s = LpSpec((3, 1))
        assert s.requirement(1) == 3
        assert s.requirement(2) == 1
        assert s.requirement(5) == 0  # beyond k: unconstrained

    def test_requirement_distance_positive(self):
        with pytest.raises(ReproError):
            L21.requirement(0)

    def test_scaled(self):
        assert L21.scaled(3) == LpSpec((6, 3))
        with pytest.raises(ReproError):
            L21.scaled(0)

    def test_all_ones(self):
        assert all_ones(3) == LpSpec((1, 1, 1))
        with pytest.raises(ReproError):
            all_ones(0)

    def test_constants(self):
        assert L21.p == (2, 1) and L11.p == (1, 1)


class TestLabeling:
    def test_span(self):
        assert Labeling((0, 4, 2)).span == 4
        assert Labeling(()).span == 0

    def test_negative_label_rejected(self):
        with pytest.raises(ReproError):
            Labeling((0, -1))

    def test_feasibility_path(self):
        g = gen.path_graph(3)
        assert Labeling((0, 2, 4)).is_feasible(g, L21)
        assert not Labeling((0, 1, 2)).is_feasible(g, L21)  # adjacent gap 1
        assert not Labeling((0, 2, 0)).is_feasible(g, L21)  # dist-2 equal

    def test_violations_details(self):
        g = gen.path_graph(3)
        v = Labeling((0, 1, 0)).violations(g, L21)
        assert (0, 1, 1, 2) in v           # edge (0,1), distance 1, needs 2
        assert (0, 2, 2, 1) in v           # pair (0,2), distance 2, needs 1

    def test_size_mismatch(self):
        g = gen.path_graph(3)
        with pytest.raises(ReproError):
            Labeling((0, 2)).violations(g, L21)
        assert not Labeling((0, 2)).is_feasible(g, L21)

    def test_require_feasible_message(self):
        g = gen.path_graph(2)
        with pytest.raises(ReproError, match="violations"):
            Labeling((0, 1)).require_feasible(g, L21)

    def test_zero_requirement_distance_free(self):
        g = gen.path_graph(3)
        spec = LpSpec((1, 0))
        assert Labeling((0, 1, 0)).is_feasible(g, spec)

    def test_normalized(self):
        assert Labeling((3, 5, 4)).normalized().labels == (0, 2, 1)
        assert Labeling(()).normalized().labels == ()

    def test_beyond_k_unconstrained(self):
        g = gen.path_graph(4)  # 0 and 3 at distance 3
        lab = Labeling((0, 2, 4, 0))
        assert lab.is_feasible(g, L21)
