"""Exact / greedy labelers and closed-form spans."""

import pytest

from repro.errors import InfeasibleInstanceError, ReproError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.labeling.bounds import lower_bound, trivial_upper_bound
from repro.labeling.exact import exact_labeling, exact_span, exact_span_or_fail
from repro.labeling.greedy import best_greedy_labeling, greedy_labeling
from repro.labeling.spec import L11, L21, LpSpec
from repro.labeling.special import (
    l21_span_complete,
    l21_span_complete_bipartite,
    l21_span_cycle,
    l21_span_path,
    l21_span_star,
    l21_span_wheel,
)


class TestExact:
    def test_trivial_sizes(self):
        assert exact_span(Graph(0), L21) == 0
        assert exact_span(Graph(1), L21) == 0

    def test_edge(self):
        assert exact_span(gen.path_graph(2), L21) == 2

    def test_optimal_labeling_feasible(self, random_connected_graphs):
        for g in random_connected_graphs[:8]:
            lab = exact_labeling(g, L21)
            assert lab.is_feasible(g, L21)

    def test_bounds_sandwich(self, random_connected_graphs):
        for g in random_connected_graphs[:8]:
            s = exact_span(g, L21)
            assert lower_bound(g, L21) <= s <= trivial_upper_bound(g, L21)

    def test_size_cap(self):
        with pytest.raises(ReproError):
            exact_span(gen.complete_graph(13), L21)

    def test_l11_equals_coloring_of_square_minus_one(self):
        # independent way to state L(1,1): chromatic number of G^2 minus 1
        from repro.graphs.operations import graph_power
        from repro.partition.coloring import chromatic_number_exact
        for g in [gen.cycle_graph(5), gen.path_graph(6), gen.star_graph(4)]:
            chi, _ = chromatic_number_exact(graph_power(g, 2))
            assert exact_span(g, L11) == chi - 1

    def test_decision_version(self):
        g = gen.path_graph(3)  # lambda = 3
        lab = exact_span_or_fail(g, L21, 3)
        assert lab.is_feasible(g, L21) and lab.span <= 3
        with pytest.raises(InfeasibleInstanceError):
            exact_span_or_fail(g, L21, 2)

    def test_mirror_symmetry_breaking_still_optimal(self):
        # regression: first-vertex cap at lam//2 must not lose solutions
        for n in range(2, 8):
            g = gen.cycle_graph(n) if n >= 3 else gen.path_graph(n)
            lab = exact_labeling(g, L21)
            assert lab.span == exact_span(g, L21)


class TestGreedy:
    def test_always_feasible(self, random_connected_graphs):
        for g in random_connected_graphs:
            for order in ("degree", "bfs", "id"):
                lab = greedy_labeling(g, L21, order=order)
                assert lab.is_feasible(g, L21)

    def test_random_order_seeded(self):
        g = gen.petersen_graph()
        a = greedy_labeling(g, L21, order="random", seed=5)
        b = greedy_labeling(g, L21, order="random", seed=5)
        assert a.labels == b.labels

    def test_explicit_order(self):
        g = gen.path_graph(4)
        lab = greedy_labeling(g, L21, order=[3, 2, 1, 0])
        assert lab.is_feasible(g, L21)

    def test_bad_explicit_order(self):
        with pytest.raises(ReproError):
            greedy_labeling(gen.path_graph(3), L21, order=[0, 0, 1])

    def test_unknown_strategy(self):
        with pytest.raises(ReproError):
            greedy_labeling(gen.path_graph(3), L21, order="magic")  # type: ignore

    def test_greedy_at_least_exact(self, random_connected_graphs):
        for g in random_connected_graphs[:8]:
            assert greedy_labeling(g, L21).span >= exact_span(g, L21)

    def test_best_greedy_beats_single(self):
        g = gen.petersen_graph()
        assert (
            best_greedy_labeling(g, L21, restarts=10).span
            <= greedy_labeling(g, L21).span
        )

    def test_multi_k_spec(self):
        g = gen.path_graph(6)
        spec = LpSpec((2, 1, 1))
        lab = greedy_labeling(g, spec)
        assert lab.is_feasible(g, spec)


class TestClosedForms:
    def test_path_values(self):
        assert [l21_span_path(n) for n in (1, 2, 3, 4, 5, 9)] == [0, 2, 3, 3, 4, 4]

    def test_cycle_constant(self):
        assert all(l21_span_cycle(n) == 4 for n in range(3, 10))

    def test_complete(self):
        assert l21_span_complete(5) == 8

    def test_star(self):
        assert l21_span_star(6) == 7

    def test_wheel(self):
        assert l21_span_wheel(3) == 6
        assert l21_span_wheel(4) == 6
        assert l21_span_wheel(7) == 8

    def test_complete_bipartite(self):
        assert l21_span_complete_bipartite(3, 4) == 7

    @pytest.mark.parametrize(
        "fn,arg",
        [(l21_span_path, 0), (l21_span_cycle, 2), (l21_span_complete, 0),
         (l21_span_star, 0), (l21_span_wheel, 2),
         (lambda a: l21_span_complete_bipartite(a, 0), 1)],
    )
    def test_domain_errors(self, fn, arg):
        with pytest.raises(ReproError):
            fn(arg)

    def test_all_against_exact_solver(self):
        checks = [
            (gen.path_graph(5), l21_span_path(5)),
            (gen.cycle_graph(7), l21_span_cycle(7)),
            (gen.complete_graph(5), l21_span_complete(5)),
            (gen.star_graph(6), l21_span_star(6)),
            (gen.wheel_graph(4), l21_span_wheel(4)),
            (gen.wheel_graph(6), l21_span_wheel(6)),
            (gen.complete_bipartite_graph(3, 4), l21_span_complete_bipartite(3, 4)),
        ]
        for g, expected in checks:
            assert exact_span(g, L21) == expected


class TestBounds:
    def test_lower_bound_zero_cases(self):
        assert lower_bound(Graph(1), L21) == 0
        assert lower_bound(Graph(0), L21) == 0

    def test_small_diameter_all_pairs_bound(self):
        g = gen.complete_graph(5)  # diam 1 <= k: (n-1) * pmin = 4
        assert lower_bound(g, L21) >= 4

    def test_star_bound(self):
        g = gen.star_graph(6)
        assert lower_bound(g, L21) >= 6  # (delta-1)*1 + 2 = 7 actually
        assert lower_bound(g, L21) <= exact_span(g, L21)

    def test_upper_bound_is_feasible_span(self, random_connected_graphs):
        for g in random_connected_graphs[:6]:
            assert exact_span(g, L21) <= trivial_upper_bound(g, L21)
