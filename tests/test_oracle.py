"""Blocked lazy distance oracle: bit-identity, LRU residency, promotion.

The oracle's contract — row blocks materialized on demand over the CSR
adjacency, bit-identical to the per-source BFS reference, held under a byte
budget, ``int16`` until a level overflows — is exercised here with
hypothesis over random/disconnected/mutated graphs plus deterministic LRU
and dtype-boundary cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.graphs.analysis as analysis_mod
from repro.graphs import generators as gen
from repro.graphs.analysis import GraphAnalysis, LazyDistanceOracle, get_analysis
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    UNREACHABLE,
    all_pairs_distances_reference,
    apsp_run_count,
    distance_rows_csr,
)
from repro.obs import REGISTRY

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_n=1, max_n=20):
    """Random graphs, connectedness NOT enforced (the oracle must not care)."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph(n, (p for p, keep in zip(pairs, mask) if keep))


def blocked_analysis(g: Graph, mp, **knobs) -> GraphAnalysis:
    """A fresh analysis forced onto the blocked path (dense limit -> 0)."""
    mp.setattr(analysis_mod, "DENSE_MATERIALIZE_LIMIT", 0)
    a = GraphAnalysis(g)
    if knobs:
        a.configure_oracle(**knobs)
    return a


# ---------------------------------------------------------------------------
# bit-identity properties
# ---------------------------------------------------------------------------
@settings(**SETTINGS)
@given(graphs())
def test_blocked_assembly_matches_reference(g):
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp, block_rows=3)
        ref = all_pairs_distances_reference(g)
        assert np.array_equal(np.asarray(a.distances), ref)


@settings(**SETTINGS)
@given(graphs(min_n=2))
def test_blocked_rows_match_reference_rowwise(g):
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp, block_rows=4, budget_bytes=8 * g.n)
        ref = all_pairs_distances_reference(g)
        for v in range(g.n):
            assert np.array_equal(np.asarray(a.row(v)), ref[v]), v
        # arbitrary multi-block slices agree too
        assert np.array_equal(np.asarray(a.rows(1, g.n)), ref[1:])


@settings(**SETTINGS)
@given(graphs(min_n=2), st.data())
def test_blocked_matches_reference_after_mutation(g, data):
    u = data.draw(st.integers(0, g.n - 1))
    v = data.draw(st.integers(0, g.n - 1))
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(analysis_mod, "DENSE_MATERIALIZE_LIMIT", 0)
        get_analysis(g).distances  # warm the pre-mutation snapshot
        if u != v:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
        fresh = get_analysis(g)
        fresh.configure_oracle(block_rows=3)
        assert np.array_equal(
            np.asarray(fresh.distances), all_pairs_distances_reference(g)
        )


def test_blocked_assembly_runs_no_dense_kernel():
    g = gen.path_graph(40)
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(analysis_mod, "DENSE_MATERIALIZE_LIMIT", 0)
        before = apsp_run_count()
        get_analysis(g).distances
        assert apsp_run_count() == before


# ---------------------------------------------------------------------------
# LRU residency: budget, eviction, re-materialization
# ---------------------------------------------------------------------------
def test_lru_eviction_and_rematerialization():
    g = gen.path_graph(32)
    ref = all_pairs_distances_reference(g)
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp)
        block_bytes = 4 * 32 * 2  # 4 rows x n of int16
        oracle = a.configure_oracle(block_rows=4, budget_bytes=2 * block_bytes)
        for v in range(g.n):  # full sweep: 8 blocks through a 2-block budget
            assert np.array_equal(np.asarray(a.row(v)), ref[v])
            assert oracle.resident_bytes <= oracle.budget_bytes
        stats = oracle.stats()
        assert stats["evictions"] >= 6
        assert stats["resident_blocks"] == 2
        assert stats["peak_bytes"] == 2 * block_bytes
        # the evicted first block re-materializes bit-identically (a miss)
        misses = oracle.misses
        assert np.array_equal(np.asarray(a.row(0)), ref[0])
        assert oracle.misses == misses + 1


def test_single_block_larger_than_budget_is_still_served():
    g = gen.path_graph(16)
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp)
        oracle = a.configure_oracle(block_rows=8, budget_bytes=1)
        row = a.row(3)
        assert int(row[0]) == 3
        assert oracle.resident_bytes == 8 * 16 * 2  # the one oversized block
        assert not row.flags.writeable


def test_lru_keeps_recently_used_block():
    g = gen.path_graph(16)
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp)
        block_bytes = 4 * 16 * 2
        oracle = a.configure_oracle(block_rows=4, budget_bytes=2 * block_bytes)
        a.row(0)  # block 0
        a.row(4)  # block 1
        a.row(0)  # touch block 0: block 1 is now least recent
        a.row(8)  # block 2 evicts block 1, not block 0
        hits = oracle.hits
        a.row(1)
        assert oracle.hits == hits + 1  # block 0 still resident


def test_peak_bytes_is_a_high_water_mark():
    g = gen.path_graph(24)
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp)
        oracle = a.configure_oracle(block_rows=4, budget_bytes=10**9)
        for v in range(g.n):
            a.row(v)
        assert oracle.peak_bytes == oracle.resident_bytes == 6 * 4 * 24 * 2
        assert float(REGISTRY.value("repro_oracle_peak_bytes")) >= oracle.peak_bytes


# ---------------------------------------------------------------------------
# dtype promotion on level overflow
# ---------------------------------------------------------------------------
def test_int8_block_promotes_and_matches_reference():
    g = gen.path_graph(200)  # diameter 199 > int8 max
    indptr, indices = g.csr_arrays()
    before = REGISTRY.value("repro_oracle_promotions_total")
    rows = distance_rows_csr(
        indptr, indices, np.array([0]), g.n, dtype=np.int8
    )
    assert rows.dtype == np.int16
    assert REGISTRY.value("repro_oracle_promotions_total") == before + 1
    assert rows[0].tolist() == list(range(200))


def test_int16_boundary_promotes_to_int32():
    n = 32771  # path diameter 32770 crosses the int16 max of 32767
    g = gen.path_graph(n)
    indptr, indices = g.csr_arrays()
    rows = distance_rows_csr(indptr, indices, np.array([0]), n)
    assert rows.dtype == np.int32
    assert int(rows[0, -1]) == n - 1
    assert int(rows[0, 32767]) == 32767


def test_unreachable_pairs_hold_sentinel():
    g = Graph(6, [(0, 1), (2, 3)])  # three components, one isolated pair
    with pytest.MonkeyPatch.context() as mp:
        a = blocked_analysis(g, mp, block_rows=2)
        assert int(a.row(0)[5]) == UNREACHABLE
        assert int(a.row(4)[4]) == 0


# ---------------------------------------------------------------------------
# consumer equivalence: blocked vs dense give identical labelings
# ---------------------------------------------------------------------------
def test_greedy_labeling_identical_blocked_vs_dense():
    from repro.labeling.greedy import greedy_labeling
    from repro.labeling.spec import L21

    g = gen.random_graph_with_diameter_at_most(40, 2, seed=3)
    dense = greedy_labeling(g.copy(), L21)
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(analysis_mod, "DENSE_MATERIALIZE_LIMIT", 0)
        h = g.copy()
        blocked = greedy_labeling(h, L21)
        assert get_analysis(h)._distances is None  # never went dense
    assert blocked.labels == dense.labels


def test_oracle_stats_shape_without_any_access():
    a = get_analysis(gen.path_graph(5))
    stats = a.oracle_stats()
    assert stats["hits"] == stats["misses"] == stats["evictions"] == 0
    assert stats["hit_rate"] == 0.0
