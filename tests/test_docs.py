"""Executable-documentation gate (the CI ``docs`` job).

Two guarantees:

1. **Every fenced ``python`` snippet in ``README.md`` and ``docs/*.md``
   runs.**  Snippets in one file share a namespace in document order (a
   reader following the page top to bottom sees working code); doctest
   blocks (``>>>``) additionally check their printed output.  Fences
   tagged ``console``/``bash``/``text`` are prose, not code, and are not
   executed.
2. **``docs/cli.md`` matches the live argparse tree** — it is the
   committed output of :func:`repro.cli.render_reference` (``make docs``
   regenerates it), so the CLI reference cannot drift from the parser.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Documents whose python snippets must execute.
DOCUMENTS = sorted(
    p.relative_to(ROOT)
    for p in [ROOT / "README.md", *(ROOT / "docs").glob("*.md")]
    if p.exists()
)

_FENCE = re.compile(r"```python[^\n]*\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    """Every fenced ``python`` block of one markdown file, in order."""
    return [m.group(1) for m in _FENCE.finditer(path.read_text(encoding="utf-8"))]


def test_documents_exist():
    """The docs suite the README promises is actually on disk."""
    names = {str(d) for d in DOCUMENTS}
    assert "README.md" in names
    for required in ("docs/guide.md", "docs/cli.md", "docs/perf.md"):
        assert required in names, f"{required} is missing"


@pytest.mark.parametrize("document", DOCUMENTS, ids=str)
def test_snippets_execute(document):
    """Run the file's snippets top to bottom in one shared namespace."""
    blocks = python_blocks(ROOT / document)
    globs: dict = {"__name__": f"doc:{document}"}
    runner = doctest.DocTestRunner(verbose=False)
    parser = doctest.DocTestParser()
    for idx, block in enumerate(blocks):
        name = f"{document}[{idx}]"
        if ">>>" in block:
            test = parser.get_doctest(block, globs, name, str(document), idx)
            runner.run(test, clear_globs=False)
            assert runner.failures == 0, f"doctest failure in {name}"
            globs = test.globs  # carry state into the next block
        else:
            exec(compile(block, name, "exec"), globs)


def test_cli_reference_is_current():
    """docs/cli.md must be render_reference()'s exact output."""
    from repro.cli import render_reference

    committed = (ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    assert committed == render_reference(), (
        "docs/cli.md is stale; regenerate it with `make docs`"
    )


def test_architecture_covers_new_layers():
    """The layer map documents the shard/server serving subsystem."""
    text = (ROOT / "ARCHITECTURE.md").read_text(encoding="utf-8")
    for needle in ("shard.py", "server.py", "Concurrency model"):
        assert needle in text, f"ARCHITECTURE.md lost its {needle!r} coverage"
