"""Shared fixtures: small graph corpora, RNG helpers, shm-leak gate."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs import generators as gen
from repro.parallel.shm_pool import live_segment_names as repro_shm_segments


@pytest.fixture(scope="session", autouse=True)
def no_shm_leaks():
    """Session gate: every shared-memory segment must be unlinked by exit.

    The shm pool's acceptance criterion is *zero* leaked segments across
    the whole suite — including the crash tests, which SIGKILL workers
    mid-solve.  Pre-existing segments (a concurrently running suite) are
    tolerated but new ones are not.
    """
    before = set(repro_shm_segments())
    yield
    leaked = [name for name in repro_shm_segments() if name not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def all_graphs(n: int):
    """Every labelled simple graph on n vertices (use only for n <= 5)."""
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        yield Graph(n, (pairs[i] for i in range(len(pairs)) if mask >> i & 1))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_graph_zoo() -> list[Graph]:
    """A fixed menagerie of named small graphs used across test modules."""
    zoo = [
        gen.path_graph(1),
        gen.path_graph(2),
        gen.path_graph(5),
        gen.cycle_graph(3),
        gen.cycle_graph(5),
        gen.cycle_graph(6),
        gen.complete_graph(4),
        gen.complete_graph(6),
        gen.star_graph(5),
        gen.wheel_graph(5),
        gen.wheel_graph(6),
        gen.complete_bipartite_graph(2, 3),
        gen.complete_bipartite_graph(3, 3),
        gen.grid_graph(2, 3),
        gen.grid_graph(3, 3),
        gen.petersen_graph(),
        gen.hypercube_graph(3),
        gen.complete_multipartite_graph([2, 2, 2]),
        gen.cluster_graph([3, 2, 1]),
    ]
    return zoo


@pytest.fixture(scope="session")
def random_connected_graphs(rng) -> list[Graph]:
    """20 random connected graphs, 5-9 vertices, varied density."""
    out = []
    for i in range(20):
        n = int(rng.integers(5, 10))
        p = float(rng.uniform(0.3, 0.8))
        out.append(gen.random_connected_gnp(n, p, seed=rng))
    return out


@pytest.fixture(scope="session")
def diam2_graphs(rng) -> list[Graph]:
    """12 random connected graphs with diameter at most 2 (6-9 vertices)."""
    out = []
    for i in range(12):
        n = int(rng.integers(6, 10))
        out.append(gen.random_graph_with_diameter_at_most(n, 2, seed=rng))
    return out
