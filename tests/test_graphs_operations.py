"""Operations tests: complement, powers, joins, gadget moves."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.operations import (
    add_false_twin,
    add_leaf,
    add_universal_vertex,
    complement,
    degree_histogram,
    disjoint_union,
    edge_subdivision,
    graph_power,
    induced_subgraph,
    is_clique,
    is_independent_set,
    join,
    relabel,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges())
    return h


class TestComplement:
    def test_complement_counts(self):
        g = gen.path_graph(4)
        c = complement(g)
        assert g.m + c.m == 4 * 3 // 2

    def test_double_complement_identity(self, small_graph_zoo):
        for g in small_graph_zoo:
            assert complement(complement(g)) == g

    def test_complement_of_complete_is_empty(self):
        assert complement(gen.complete_graph(5)).m == 0


class TestPower:
    def test_path_square(self):
        g2 = graph_power(gen.path_graph(5), 2)
        assert g2.has_edge(0, 2) and not g2.has_edge(0, 3)

    def test_power_at_least_one(self):
        with pytest.raises(GraphError):
            graph_power(gen.path_graph(3), 0)

    def test_power_matches_networkx(self, random_connected_graphs):
        for g in random_connected_graphs[:8]:
            for k in (2, 3):
                mine = graph_power(g, k)
                oracle = nx.power(to_nx(g), k)
                assert set(mine.edges()) == {tuple(sorted(e)) for e in oracle.edges()}

    def test_power_of_diameter2_is_complete(self, diam2_graphs):
        for g in diam2_graphs:
            assert graph_power(g, 2).is_complete()

    def test_power_keeps_components_separate(self):
        g = Graph(4, [(0, 1), (2, 3)])
        g2 = graph_power(g, 3)
        assert not g2.has_edge(0, 2)


class TestUnionJoin:
    def test_disjoint_union(self):
        g = disjoint_union(gen.path_graph(2), gen.path_graph(3))
        assert (g.n, g.m) == (5, 3)
        assert g.has_edge(0, 1) and g.has_edge(2, 3) and not g.has_edge(1, 2)

    def test_join_edge_count(self):
        g = join(gen.path_graph(2), gen.path_graph(3))
        assert g.m == 1 + 2 + 2 * 3

    def test_join_diameter_at_most_two(self):
        g = join(gen.empty_graph(3), gen.empty_graph(4))
        from repro.graphs.traversal import diameter
        assert diameter(g) == 2


class TestSubgraphRelabel:
    def test_induced_subgraph(self):
        g = gen.cycle_graph(5)
        h = induced_subgraph(g, [0, 1, 2])
        assert (h.n, h.m) == (3, 2)

    def test_induced_subgraph_duplicates_rejected(self):
        with pytest.raises(GraphError):
            induced_subgraph(gen.path_graph(3), [0, 0])

    def test_relabel_roundtrip(self):
        g = gen.path_graph(4)
        perm = [3, 1, 0, 2]
        inv = [perm.index(i) for i in range(4)]
        assert relabel(relabel(g, perm), inv) == g

    def test_relabel_requires_permutation(self):
        with pytest.raises(GraphError):
            relabel(gen.path_graph(3), [0, 0, 1])


class TestGadgetMoves:
    def test_universal_vertex(self):
        g, x = add_universal_vertex(gen.path_graph(3))
        assert g.degree(x) == 3
        from repro.graphs.traversal import diameter
        assert diameter(g) <= 2

    def test_false_twin_neighborhoods_match(self):
        g = gen.cycle_graph(5)
        g2, twin = add_false_twin(g, 0)
        assert g2.neighbors(twin) == g.neighbors(0)
        assert not g2.has_edge(0, twin)

    def test_add_leaf(self):
        g, w = add_leaf(gen.complete_graph(3), 1)
        assert g.degree(w) == 1 and g.has_edge(1, w)

    def test_edge_subdivision(self):
        g = edge_subdivision(gen.path_graph(2), 0, 1)
        assert (g.n, g.m) == (3, 2)
        assert not g.has_edge(0, 1)

    def test_edge_subdivision_missing_edge(self):
        with pytest.raises(GraphError):
            edge_subdivision(gen.path_graph(3), 0, 2)


class TestPredicatesHistogram:
    def test_is_clique(self):
        g = gen.complete_graph(4)
        assert is_clique(g, [0, 1, 2])
        g2 = gen.path_graph(3)
        assert not is_clique(g2, [0, 1, 2])

    def test_is_independent_set(self):
        g = gen.star_graph(3)
        assert is_independent_set(g, [1, 2, 3])
        assert not is_independent_set(g, [0, 1])

    def test_degree_histogram(self):
        h = degree_histogram(gen.star_graph(4))
        assert h.tolist() == [0, 4, 0, 0, 1]
