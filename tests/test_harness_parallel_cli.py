"""Harness, parallel layer and CLI tests."""

import io
import sys

import pytest

from repro.errors import ReproError
from repro.graphs import generators as gen
from repro.harness.runner import EngineRun, run_engines, time_call
from repro.harness.tables import render_markdown, render_table
from repro.harness.workloads import WORKLOADS, make_workload, sweep
from repro.labeling.spec import L21
from repro.parallel.pool import chunked, default_workers, parallel_map
from repro.parallel.portfolio import portfolio_solve, sequential_portfolio


class TestWorkloads:
    def test_all_families_instantiate(self):
        for family in WORKLOADS:
            wl = make_workload(family, 8, seed=1)
            assert wl.graph.n >= 2
            assert family in wl.label

    def test_deterministic(self):
        a = make_workload("diam2", 10, seed=3)
        b = make_workload("diam2", 10, seed=3)
        assert a.graph == b.graph

    def test_unknown_family(self):
        with pytest.raises(ReproError):
            make_workload("quantum", 5)

    def test_sweep_cross_product(self):
        wls = sweep("diam2", [6, 8], [0, 1, 2])
        assert len(wls) == 6


class TestRunner:
    def test_time_call(self):
        out, secs = time_call(lambda: 42)
        assert out == 42 and secs >= 0

    def test_run_engines_ratios(self):
        wls = [make_workload("diam2", 8, seed=s) for s in range(2)]
        runs = run_engines(wls, L21, ["held_karp", "nearest_neighbor"])
        assert len(runs) == 4
        by_wl: dict[str, list[EngineRun]] = {}
        for r in runs:
            by_wl.setdefault(r.workload, []).append(r)
        for rows in by_wl.values():
            exact = next(r for r in rows if r.engine == "held_karp")
            assert exact.ratio == 1.0
            for r in rows:
                assert r.ratio >= 1.0


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_render_markdown(self):
        out = render_markdown(["x"], [[1]])
        assert out.splitlines()[1] == "|---|"

    def test_float_formatting(self):
        out = render_table(["v"], [[0.00000012], [1234567.0], [0.0]])
        assert "e" in out  # scientific for extremes
        assert "0" in out

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestParallelPool:
    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_parallel_map_order(self):
        assert parallel_map(str, [3, 1, 2], workers=1) == ["3", "1", "2"]

    def test_parallel_map_processes(self):
        # len is picklable and cheap; use 2 workers to exercise the pool
        out = parallel_map(len, [[1], [1, 2], []], workers=2)
        assert out == [1, 2, 0]


class TestPortfolio:
    def test_parallel_matches_sequential(self):
        g = gen.random_graph_with_diameter_at_most(20, 2, seed=5)
        engines = ["two_opt", "nearest_neighbor"]
        seq = sequential_portfolio(g, L21, engines)
        par = portfolio_solve(g, L21, engines, workers=2)
        assert par.span == seq.span
        assert par.labeling.is_feasible(g, L21)


class TestCli:
    def run_cli(self, argv, stdin_text=None):
        from repro.cli import main
        old_out, old_in = sys.stdout, sys.stdin
        sys.stdout = io.StringIO()
        if stdin_text is not None:
            sys.stdin = io.StringIO(stdin_text)
        try:
            code = main(argv)
            return code, sys.stdout.getvalue()
        finally:
            sys.stdout, sys.stdin = old_out, old_in

    def test_engines_listing(self):
        code, out = self.run_cli(["engines"])
        assert code == 0 and "held_karp" in out

    def test_generate_and_solve_roundtrip(self, tmp_path):
        code, out = self.run_cli(["generate", "diam2", "8", "--seed", "2"])
        assert code == 0
        p = tmp_path / "g.edges"
        p.write_text(out)
        code, out = self.run_cli(
            ["solve", str(p), "-p", "2,1", "--engine", "held_karp", "--labels"]
        )
        assert code == 0 and "span:" in out and "exact: True" in out

    def test_solve_from_stdin(self):
        code, out = self.run_cli(
            ["solve", "-", "-p", "2,1"], stdin_text="3 3\n0 1\n1 2\n0 2\n"
        )
        assert code == 0 and "span: 4" in out  # K3 -> 2(n-1) = 4

    def test_reduce_prints_matrix(self):
        code, out = self.run_cli(
            ["reduce", "-", "-p", "2,1"], stdin_text="3 2\n0 1\n1 2\n"
        )
        assert code == 0
        rows = [line.split() for line in out.strip().splitlines()]
        assert rows[0] == ["0", "2", "1"]

    def test_solve_json_record(self):
        import json
        code, out = self.run_cli(
            ["solve", "-", "-p", "2,1", "--json", "--labels"],
            stdin_text="3 3\n0 1\n1 2\n0 2\n",
        )
        assert code == 0
        record = json.loads(out)
        assert record["span"] == 4 and record["exact"] is True
        assert record["n"] == 3 and record["p"] == [2, 1]
        assert len(record["labels"]) == 3

    def test_batch_from_stdin_stream(self, capfd):
        import json
        block = "3 3\n0 1\n1 2\n0 2\n"
        code, out = self.run_cli(
            ["batch", "-", "-p", "2,1", "--workers", "1"],
            stdin_text=block * 3,
        )
        assert code == 0
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["span"] for r in records] == [4, 4, 4]
        assert [r["cached"] for r in records] == [False, True, True]
        summary = json.loads(capfd.readouterr().err.strip().splitlines()[-1])
        assert summary["report"]["total"] == 3
        assert summary["report"]["solved"] == 1

    def test_batch_from_directory_with_cache(self, tmp_path, capfd):
        import json
        from repro.graphs import io as gio
        gdir = tmp_path / "graphs"
        gdir.mkdir()
        for seed in (0, 1):
            g = gen.random_graph_with_diameter_at_most(8, 2, seed=seed)
            gio.write_edge_list(g, gdir / f"g{seed}.edges")
        cache = tmp_path / "cache.json"
        code, _ = self.run_cli(["batch", str(gdir), "--cache", str(cache),
                                "--workers", "1", "--engine", "held_karp"])
        assert code == 0 and cache.exists()
        capfd.readouterr()
        # second run over the same directory is served entirely from disk
        code, out = self.run_cli(["batch", str(gdir), "--cache", str(cache),
                                  "--workers", "1", "--engine", "held_karp"])
        assert code == 0
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert all(r["cached"] for r in records)
        assert sorted(r["tag"] for r in records) == ["g0.edges", "g1.edges"]

    def test_batch_stream_serving_mode(self, capfd):
        import json
        block = "3 3\n0 1\n1 2\n0 2\n"
        code, out = self.run_cli(
            ["batch", "-", "-p", "2,1", "--stream", "--workers", "2",
             "--engine", "held_karp"],
            stdin_text=block * 3,
        )
        assert code == 0
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 3
        assert all(r["span"] == 4 for r in records)
        assert sorted(r["tag"] for r in records) == [
            "stdin[0]", "stdin[1]", "stdin[2]"
        ]
        summary = json.loads(capfd.readouterr().err.strip().splitlines()[-1])
        assert summary["server"]["submitted"] == 3
        # identical blocks: exactly one engine run, rest hit or coalesce
        assert summary["server"]["solved"] == 1
        assert "shard_lock_wait" in summary

    def test_batch_stream_requires_stdin_source(self, tmp_path):
        code, _ = self.run_cli(["batch", str(tmp_path), "--stream"])
        assert code == 2  # ReproError -> one-line error, exit 2

    def test_batch_rejects_bad_source(self):
        with pytest.raises(SystemExit):
            self.run_cli(["batch", "/definitely/not/a/dir"])

    def test_unknown_experiment_id(self):
        code, out = self.run_cli(["experiment", "E99"])
        assert code == 2

    def test_experiment_run(self):
        code, out = self.run_cli(["experiment", "E2"])
        assert code == 0 and "PASS" in out
