"""Dynamic labeling session tests."""

import pytest

from repro.errors import ReductionNotApplicableError
from repro.graphs import generators as gen
from repro.labeling.spec import L21
from repro.session import LabelingSession, session_for_radio_network


class TestSessionBasics:
    def test_initial_solve(self):
        s = LabelingSession(gen.complete_graph(4), L21, engine="held_karp")
        assert s.span == 6
        assert len(s.history) == 1
        assert s.labeling.is_feasible(s.graph, L21)

    def test_add_vertex_grows_clique(self):
        s = LabelingSession(gen.complete_graph(3), L21, engine="held_karp")
        v = s.add_vertex(connect_to=[0, 1, 2])
        assert v == 3
        assert s.span == 6  # K4
        assert s.span_trajectory() == [4, 6]

    def test_add_edge_delta(self):
        # C5 (span 4) + a chord stays diameter 2
        s = LabelingSession(gen.cycle_graph(5), L21, engine="held_karp")
        delta = s.add_edge(0, 2)
        assert delta.span_before == 4
        assert delta.span_after >= 4
        assert s.labeling.is_feasible(s.graph, L21)

    def test_remove_edge_can_reject(self):
        # removing a spoke from a star disconnects the leaf
        s = LabelingSession(gen.star_graph(3), L21, engine="held_karp")
        with pytest.raises(ReductionNotApplicableError):
            s.remove_edge(0, 1)
        # rollback: session still consistent
        assert s.graph.has_edge(0, 1)
        assert s.labeling.is_feasible(s.graph, L21)

    def test_bad_mutation_rolls_back(self):
        # P4 has diameter 3 -> adding a path tail to C5 would break diam<=2
        s = LabelingSession(gen.cycle_graph(5), L21, engine="held_karp")
        with pytest.raises(ReductionNotApplicableError):
            s.add_vertex(connect_to=[0])  # pendant makes diameter 3
        assert s.graph.n == 5
        assert len(s.history) == 1

    def test_graph_copies_are_isolated(self):
        s = LabelingSession(gen.complete_graph(3), L21)
        g = s.graph
        g.add_vertex()
        assert s.graph.n == 3  # session unaffected

    def test_relabeled_vertices_reported(self):
        s = LabelingSession(gen.cycle_graph(5), L21, engine="held_karp")
        delta = s.add_edge(1, 3)
        assert delta.span_change == delta.span_after - delta.span_before
        # any vertex whose label moved is reported
        old = s.history[-2].labeling.labels
        new = s.history[-1].labeling.labels
        expected = tuple(v for v in range(5) if old[v] != new[v])
        assert delta.relabeled == expected
        assert delta.added == ()   # no growth: nothing reported as added

    def test_added_vertex_not_in_relabeled(self):
        s = LabelingSession(gen.complete_graph(3), L21, engine="held_karp")
        trial = s.graph
        v = trial.add_vertex()
        for u in (0, 1, 2):
            trial.add_edge(u, v)
        delta = s._commit(trial)
        assert delta.added == (v,)
        assert all(u < v for u in delta.relabeled)


class TestRadioNetworkFactory:
    def test_dense_deployment_works(self):
        session, pos = session_for_radio_network(
            12, radius=0.8, spec=L21, seed=1, engine="lk"
        )
        assert session.span >= 11   # diam-2: all-distinct labels
        assert pos.shape == (12, 2)

    def test_sparse_deployment_rejected(self):
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            # tiny radius: diameter way beyond 2
            session_for_radio_network(25, radius=0.18, spec=L21, seed=3)
