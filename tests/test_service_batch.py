"""Batch solver + LabelingService: dedup, correctness, sharding, sessions."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.operations import relabel
from repro.labeling.spec import L11, L21
from repro.reduction.solver import solve_labeling
from repro.service.api import LabelingService, solve_record
from repro.service.batch import BatchSolver, SolveRequest
from repro.service.cache import ResultCache
from repro.session import LabelingSession, _diff_labels


def random_relabel(graph, seed):
    perm = np.random.default_rng(seed).permutation(graph.n).tolist()
    return relabel(graph, perm)


def duplicate_stream(uniques, copies, engine="held_karp"):
    """Each unique graph plus ``copies`` relabeled twins, interleaved."""
    reqs = []
    for i, g in enumerate(uniques):
        reqs.append(SolveRequest(g, L21, engine=engine, tag=f"u{i}"))
        for c in range(copies):
            reqs.append(
                SolveRequest(
                    random_relabel(g, 31 * i + c), L21, engine=engine,
                    tag=f"u{i}c{c}",
                )
            )
    return reqs


class TestBatchSolver:
    def test_results_in_request_order_and_feasible(self):
        uniques = [
            gen.random_graph_with_diameter_at_most(10, 2, seed=s)
            for s in range(3)
        ]
        reqs = duplicate_stream(uniques, copies=2)
        solver = BatchSolver(cache=ResultCache(), workers=1)
        results, report = solver.solve_batch(reqs)
        assert [r.tag for r in results] == [r.tag for r in reqs]
        for req, res in zip(reqs, results):
            assert res.labeling.require_feasible(req.graph, req.spec)

    def test_duplicates_share_span_with_direct_solve(self):
        g = gen.random_graph_with_diameter_at_most(11, 2, seed=4)
        direct = solve_labeling(g, L21, engine="held_karp").span
        reqs = duplicate_stream([g], copies=4)
        results, _ = BatchSolver(cache=ResultCache(), workers=1).solve_batch(reqs)
        assert all(r.span == direct for r in results)
        assert sum(not r.cached for r in results) == 1

    def test_report_accounting(self):
        uniques = [
            gen.random_graph_with_diameter_at_most(9, 2, seed=s)
            for s in range(2)
        ]
        reqs = duplicate_stream(uniques, copies=3)   # 2 unique, 8 total
        solver = BatchSolver(cache=ResultCache(), workers=1)
        results, report = solver.solve_batch(reqs)
        assert report.total == 8
        assert report.unique == 2
        assert report.solved == 2
        assert report.deduped == 6
        assert report.cache_hits == 0
        assert report.hit_rate == pytest.approx(0.75)
        assert report.throughput > 0
        assert "held_karp" in report.engine_seconds

    def test_second_batch_hits_warm_cache(self):
        cache = ResultCache()
        solver = BatchSolver(cache=cache, workers=1)
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=1)
        solver.solve_batch([SolveRequest(g, L21, engine="held_karp")])
        results, report = solver.solve_batch(
            [SolveRequest(random_relabel(g, 9), L21, engine="held_karp")]
        )
        assert results[0].cached
        assert report.cache_hits == 1 and report.solved == 0

    def test_engine_is_part_of_the_key(self):
        cache = ResultCache()
        solver = BatchSolver(cache=cache, workers=1)
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=2)
        solver.solve_batch([SolveRequest(g, L21, engine="held_karp")])
        results, report = solver.solve_batch(
            [SolveRequest(g, L21, engine="two_opt")]
        )
        assert not results[0].cached          # different engine, fresh solve
        assert results[0].engine == "two_opt"

    def test_spec_is_part_of_the_key(self):
        solver = BatchSolver(cache=ResultCache(), workers=1)
        g = gen.cycle_graph(5)
        _, first = solver.solve_batch([SolveRequest(g, L21)])
        _, second = solver.solve_batch([SolveRequest(g, L11)])
        assert first.solved == 1 and second.solved == 1

    def test_no_cache_baseline_solves_owners_only_once(self):
        # cache=None disables memoization across batches but duplicates
        # within a batch still collapse onto their owner's solve
        solver = BatchSolver(cache=None, workers=1)
        g = gen.random_graph_with_diameter_at_most(9, 2, seed=3)
        reqs = duplicate_stream([g], copies=2)
        results, report = solver.solve_batch(reqs)
        assert report.solved == 1
        for req, res in zip(reqs, results):
            assert res.labeling.is_feasible(req.graph, L21)
        # and a second identical batch re-solves (nothing was remembered)
        _, again = solver.solve_batch(reqs)
        assert again.solved == 1 and again.cache_hits == 0

    def test_small_large_sharding_both_paths(self):
        # small_n=10 forces the 12-vertex graph onto the one-per-worker path
        solver = BatchSolver(cache=ResultCache(), workers=2, small_n=10)
        reqs = [
            SolveRequest(
                gen.random_graph_with_diameter_at_most(8, 2, seed=1),
                L21, engine="held_karp",
            ),
            SolveRequest(
                gen.random_graph_with_diameter_at_most(12, 2, seed=2),
                L21, engine="held_karp",
            ),
        ]
        results, report = solver.solve_batch(reqs)
        assert report.solved == 2
        for req, res in zip(reqs, results):
            assert res.labeling.is_feasible(req.graph, L21)

    def test_empty_batch(self):
        results, report = BatchSolver(cache=ResultCache()).solve_batch([])
        assert results == [] and report.total == 0
        assert report.hit_rate == 0.0


class TestLabelingService:
    def test_submit_and_stats(self):
        svc = LabelingService(workers=1)
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=6)
        first = svc.submit(g, L21, engine="held_karp")
        second = svc.submit(random_relabel(g, 1), L21, engine="held_karp")
        assert not first.cached and second.cached
        assert first.span == second.span
        stats = svc.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_cache_persistence_across_services(self, tmp_path):
        path = tmp_path / "service-cache.json"
        g = gen.random_graph_with_diameter_at_most(10, 2, seed=8)
        warm = LabelingService(cache_path=path, workers=1)
        warm.submit(g, L21, engine="held_karp")
        warm.save_cache()
        cold = LabelingService(cache_path=path, workers=1)
        assert cold.submit(random_relabel(g, 2), L21, engine="held_karp").cached

    def test_solve_record_shapes_match(self):
        g = gen.cycle_graph(5)
        direct = solve_labeling(g, L21, engine="held_karp")
        service = LabelingService(workers=1).submit(g, L21, engine="held_karp")
        a = solve_record(direct, graph=g, spec=L21, include_labels=True)
        b = solve_record(service, graph=g, spec=L21, include_labels=True)
        assert set(a) == set(b)
        assert a["span"] == b["span"] == 4
        assert a["cached"] is False
        assert sorted(a["labels"]) == sorted(b["labels"])


class TestSessionServiceIntegration:
    def test_session_routes_through_shared_service(self):
        svc = LabelingService(workers=1)
        g = gen.cycle_graph(5)
        s = LabelingSession(g, L21, engine="held_karp", service=svc)
        assert s.span == 4
        assert svc.stats().misses == 1
        # a second session on an isomorphic graph is a pure cache hit
        s2 = LabelingSession(
            random_relabel(g, 5), L21, engine="held_karp", service=svc
        )
        assert s2.span == 4
        assert svc.stats().hits == 1
        assert s2.current.cached

    def test_mutate_and_revert_gets_warm_hit(self):
        svc = LabelingService(workers=1)
        s = LabelingSession(gen.cycle_graph(5), L21, engine="held_karp",
                            service=svc)
        s.add_edge(0, 2)
        delta = s.remove_edge(0, 2)      # back to C5: warm hit
        assert s.current.cached
        assert delta.span_after == 4
        assert s.labeling.is_feasible(s.graph, L21)

    def test_session_history_spans_consistent(self):
        svc = LabelingService(workers=1)
        s = LabelingSession(gen.complete_graph(3), L21, engine="held_karp",
                            service=svc)
        v = s.add_vertex(connect_to=[0, 1, 2])
        assert v == 3
        assert s.span_trajectory() == [4, 6]


class TestDiffLabels:
    def test_pure_relabeling(self):
        assert _diff_labels((0, 2, 4), (0, 3, 4)) == ((1,), ())

    def test_added_vertices_not_reported_as_relabeled(self):
        relabeled, added = _diff_labels((0, 2, 4), (0, 2, 4, 6, 8))
        assert relabeled == ()
        assert added == (3, 4)

    def test_mixed_change_and_growth(self):
        relabeled, added = _diff_labels((0, 2, 4), (1, 2, 4, 6))
        assert relabeled == (0,)
        assert added == (3,)

    def test_empty_histories(self):
        assert _diff_labels((), ()) == ((), ())
        assert _diff_labels((), (0, 1)) == ((), (0, 1))

    def test_session_delta_reports_added_separately(self):
        s = LabelingSession(gen.complete_graph(3), L21, engine="held_karp")
        trial = s.graph
        trial.add_vertex()
        for u in (0, 1, 2):
            trial.add_edge(u, 3)
        delta = s._commit(trial)
        assert delta.added == (3,)
        assert 3 not in delta.relabeled
