"""Generator invariants: sizes, degrees, connectivity, diameter bounds."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.traversal import diameter, is_connected


class TestDeterministicFamilies:
    def test_path(self):
        g = gen.path_graph(6)
        assert (g.n, g.m) == (6, 5)
        assert g.degrees() == [1, 2, 2, 2, 2, 1]

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert all(d == 2 for d in g.degrees())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.m == 15 and g.is_complete()

    def test_star(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 7
        assert sorted(g.degrees()) == [1] * 7 + [7]

    def test_wheel(self):
        g = gen.wheel_graph(6)
        assert (g.n, g.m) == (7, 12)
        assert g.degree(0) == 6
        assert diameter(g) == 2

    def test_wheel_too_small(self):
        with pytest.raises(GraphError):
            gen.wheel_graph(2)

    def test_complete_bipartite(self):
        g = gen.complete_bipartite_graph(3, 4)
        assert (g.n, g.m) == (7, 12)
        assert diameter(g) == 2

    def test_complete_multipartite(self):
        g = gen.complete_multipartite_graph([2, 3, 4])
        assert g.n == 9
        assert g.m == 2 * 3 + 2 * 4 + 3 * 4

    def test_cluster_graph(self):
        g = gen.cluster_graph([3, 2])
        assert (g.n, g.m) == (5, 4)
        assert not is_connected(g)

    def test_grid(self):
        g = gen.grid_graph(3, 4)
        assert (g.n, g.m) == (12, 3 * 3 + 4 * 2)
        assert diameter(g) == 5

    def test_hypercube(self):
        g = gen.hypercube_graph(4)
        assert (g.n, g.m) == (16, 32)
        assert all(d == 4 for d in g.degrees())

    def test_petersen(self):
        g = gen.petersen_graph()
        assert (g.n, g.m) == (10, 15)
        assert all(d == 3 for d in g.degrees())
        assert diameter(g) == 2

    def test_caterpillar(self):
        g = gen.caterpillar_graph(4, 2)
        assert g.n == 4 + 8
        assert g.m == g.n - 1 and is_connected(g)


class TestRandomFamilies:
    def test_gnp_reproducible(self):
        a = gen.random_gnp(12, 0.5, seed=3)
        b = gen.random_gnp(12, 0.5, seed=3)
        assert a == b

    def test_gnp_extremes(self):
        assert gen.random_gnp(8, 0.0, seed=0).m == 0
        assert gen.random_gnp(8, 1.0, seed=0).is_complete()

    def test_gnp_bad_probability(self):
        with pytest.raises(GraphError):
            gen.random_gnp(5, 1.5)

    def test_connected_gnp_is_connected(self):
        for s in range(5):
            assert is_connected(gen.random_connected_gnp(15, 0.15, seed=s))

    def test_random_tree(self):
        for s in range(5):
            t = gen.random_tree(10, seed=s)
            assert t.m == 9 and is_connected(t)

    def test_tree_from_prufer_known(self):
        # Prufer (3, 3, 3, 4) -> star-ish tree on 6 vertices
        t = gen.tree_from_prufer([3, 3, 3, 4])
        assert t.m == 5
        assert t.degree(3) == 4

    def test_tree_from_prufer_invalid_symbol(self):
        with pytest.raises(GraphError):
            gen.tree_from_prufer([7])

    def test_diameter_bounded(self):
        for s in range(6):
            g = gen.random_graph_with_diameter_at_most(14, 2, seed=s)
            assert is_connected(g) and diameter(g) <= 2
        g3 = gen.random_graph_with_diameter_at_most(14, 3, seed=0)
        assert diameter(g3) <= 3

    def test_diameter_bound_one_gives_complete(self):
        assert gen.random_graph_with_diameter_at_most(6, 1, seed=0).is_complete()

    def test_geometric(self):
        g, pos = gen.random_geometric_graph(20, 0.5, seed=1)
        assert g.n == 20 and pos.shape == (20, 2)
        assert is_connected(g)
        # edges respect the radius
        for u, v in g.edges():
            assert np.sum((pos[u] - pos[v]) ** 2) <= 0.25 + 1e-12

    def test_split_graph_structure(self):
        g = gen.random_split_graph(4, 5, p=0.5, seed=2)
        from repro.graphs.operations import is_clique, is_independent_set
        assert is_clique(g, range(4))
        assert is_independent_set(g, range(4, 9))

    def test_regularish(self):
        g = gen.random_regular_ish_graph(12, 4, seed=0)
        assert max(g.degrees()) <= 4 + 1  # config-model slack

    def test_paper_figures(self):
        assert diameter(gen.paper_figure1_graph()) == 3
        g2 = gen.paper_figure2_graph()
        assert diameter(g2) == 2
        # the four forbidden inter-run pairs are non-edges
        for u, v in [(2, 3), (3, 4), (5, 6), (7, 8)]:
            assert not g2.has_edge(u, v)
        # the run edges exist
        for u, v in [(0, 1), (1, 2), (4, 5), (6, 7)]:
            assert g2.has_edge(u, v)
