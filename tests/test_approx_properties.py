"""Property-based tests (hypothesis) for the degraded approx tier.

The approximate solver trades optimality for one-pass speed, but three
things it may never trade away, and each is a property here:

- **feasibility** — every labeling it returns satisfies the spec on the
  graph it was asked about, connected or not, mutated mid-stream or not;
- **certificate soundness** — its reported gap really brackets the
  optimum: ``lower_bound <= optimum <= span`` (checked against the
  brute-force optimum where that is computable), so ``gap = span - lb``
  is a true upper bound on the distance to optimal;
- **determinism** — a fixed ``(graph, spec, seed)`` reproduces the exact
  same labels bit for bit; the degraded tier must be replayable.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.approx import approx_labeling
from repro.graphs.graph import Graph
from repro.labeling.bounds import lower_bound
from repro.labeling.exact import exact_labeling
from repro.labeling.spec import L21, LpSpec

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def sparse_graphs(draw, min_n=1, max_n=14):
    """Arbitrary graphs, disconnected ones very much included."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph(n, (p for p, keep in zip(pairs, mask) if keep))


@st.composite
def specs(draw):
    """Constraint vectors of length 1-3 with values 1-4 (no reduction regime
    assumed — the approx tier must hold its properties on any LpSpec)."""
    k = draw(st.integers(1, 3))
    return LpSpec(tuple(draw(st.integers(1, 4)) for _ in range(k)))


@st.composite
def mutations(draw, n):
    """A short toggle stream over vertex pairs of an n-vertex graph."""
    if n < 2:
        return []
    steps = draw(st.integers(1, 6))
    out = []
    for _ in range(steps):
        u = draw(st.integers(0, n - 2))
        v = draw(st.integers(u + 1, n - 1))
        out.append((u, v))
    return out


# ---------------------------------------------------------------------------
# feasibility — on anything the generators can produce
# ---------------------------------------------------------------------------
@settings(**SETTINGS)
@given(sparse_graphs(), specs())
def test_approx_always_feasible(g, spec):
    res = approx_labeling(g, spec)
    assert res.labeling.is_feasible(g, spec)
    assert res.span == res.labeling.span


@settings(**SETTINGS)
@given(st.data())
def test_approx_feasible_after_mutations(data):
    """Toggling edges between solves never breaks the next solve."""
    g = data.draw(sparse_graphs(min_n=2, max_n=10))
    for u, v in data.draw(mutations(g.n)):
        if g.has_edge(u, v):
            g.remove_edge(u, v)
        else:
            g.add_edge(u, v)
        res = approx_labeling(g, L21)
        assert res.labeling.is_feasible(g, L21)


# ---------------------------------------------------------------------------
# certificate soundness
# ---------------------------------------------------------------------------
@settings(**SETTINGS)
@given(sparse_graphs(), specs())
def test_lower_bound_never_exceeds_approx_span(g, spec):
    res = approx_labeling(g, spec)
    assert res.lower_bound == lower_bound(g, spec)
    assert res.lower_bound <= res.span
    assert res.gap == res.span - res.lower_bound
    assert res.gap >= 0


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sparse_graphs(max_n=8), specs())
def test_gap_certificate_brackets_the_optimum(g, spec):
    """``span - gap <= optimum <= span``: the certificate is honest."""
    res = approx_labeling(g, spec)
    opt = exact_labeling(g, spec, max_n=8).span
    assert res.lower_bound <= opt <= res.span
    # equivalently, in certificate terms:
    assert res.span - res.gap <= opt


@settings(**SETTINGS)
@given(sparse_graphs(), specs())
def test_ratio_matches_certificate(g, spec):
    res = approx_labeling(g, spec)
    if res.lower_bound > 0:
        assert res.ratio == res.span / res.lower_bound
    else:
        assert res.ratio == 1.0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
@settings(**SETTINGS)
@given(sparse_graphs(), specs(), st.integers(0, 2**31 - 1))
def test_bit_identical_for_fixed_seed(g, spec, seed):
    a = approx_labeling(g, spec, seed=seed)
    b = approx_labeling(g.copy(), spec, seed=seed)  # cold analysis too
    assert a.labeling.labels == b.labeling.labels
    assert (a.span, a.lower_bound, a.gap, a.ratio) == (
        b.span, b.lower_bound, b.gap, b.ratio
    )


def test_empty_graph_short_circuit():
    res = approx_labeling(Graph(0, []), L21)
    assert res.labeling.labels == ()
    assert res.span == 0 and res.gap == 0 and res.ratio == 1.0
