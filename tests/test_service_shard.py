"""Tests for the sharded result cache (`repro.service.shard`)."""

import threading

import pytest

from repro.errors import ReproError
from repro.service.cache import CachedSolve, ResultCache
from repro.service.shard import ShardedResultCache, _ContentionLock


def entry(span: int = 2) -> CachedSolve:
    return CachedSolve(labels=(0, span), span=span, engine="lk", exact=False)


def test_basic_get_put_contains_len():
    c = ShardedResultCache(capacity=64, shards=4)
    keys = [f"key-{i:03d}" for i in range(20)]
    for i, k in enumerate(keys):
        c.put(k, entry(i))
    assert len(c) == 20
    for i, k in enumerate(keys):
        assert k in c
        assert c.get(k).span == i
    assert c.get("absent") is None
    assert "absent" not in c
    assert c.peek(keys[0]).span == 0


def test_routing_is_deterministic_and_spread():
    c = ShardedResultCache(capacity=256, shards=8)
    keys = [f"{i:x}" * 4 for i in range(200)]
    for k in keys:
        assert c._shard_for(k) is c._shard_for(k)
    occupied = set()
    for k in keys:
        c.put(k, entry())
    for i, s in enumerate(c.shard_stats()):
        if s.puts:
            occupied.add(i)
    assert len(occupied) >= 6, "200 keys should land on nearly every shard"


def test_stats_aggregate_over_shards():
    c = ShardedResultCache(capacity=64, shards=4)
    for i in range(12):
        c.put(f"k{i}", entry())
    hits = sum(c.get(f"k{i}") is not None for i in range(12))
    misses = sum(c.get(f"m{i}") is None for i in range(5))
    agg = c.stats
    assert (agg.hits, agg.misses, agg.puts) == (hits, misses, 12)
    assert agg.lookups == agg.hits + agg.misses
    per_shard = c.shard_stats()
    assert sum(s.hits for s in per_shard) == agg.hits
    assert sum(s.misses for s in per_shard) == agg.misses
    assert sum(s.puts for s in per_shard) == agg.puts
    for s in per_shard:
        assert s.hits + s.misses == s.lookups


def test_eviction_is_per_shard():
    c = ShardedResultCache(capacity=4, shards=2)
    for i in range(40):
        c.put(f"key-{i}", entry(i))
    # per-shard capacity is 2, so at most 4 entries survive in total
    assert len(c) <= 4
    assert c.stats.evictions == 40 - len(c)


def test_shards_capped_by_capacity_and_validation():
    assert ShardedResultCache(capacity=2, shards=16).shards == 2
    with pytest.raises(ReproError):
        ShardedResultCache(capacity=0)
    with pytest.raises(ReproError):
        ShardedResultCache(shards=0)


def test_clear_keeps_lifetime_stats():
    c = ShardedResultCache(capacity=16, shards=2)
    c.put("a", entry())
    assert c.get("a") is not None
    c.clear()
    assert len(c) == 0
    assert c.get("a") is None
    assert c.stats.puts == 1 and c.stats.hits == 1 and c.stats.misses == 1


def test_persistence_interop_with_single_lock_cache(tmp_path):
    # single-lock -> sharded
    plain = ResultCache(capacity=32, path=tmp_path / "plain.json")
    for i in range(10):
        plain.put(f"k{i}", entry(i))
    plain.save()
    sharded = ShardedResultCache(
        capacity=32, shards=4, path=tmp_path / "plain.json"
    )
    assert len(sharded) == 10
    assert sharded.peek("k3").span == 3
    # sharded -> single-lock
    out = sharded.save(tmp_path / "sharded.json")
    warm = ResultCache(capacity=32, path=out)
    assert len(warm) == 10
    assert warm.peek("k7").span == 7


def test_save_requires_path():
    with pytest.raises(ReproError):
        ShardedResultCache().save()


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ReproError):
        ShardedResultCache(capacity=8).load(bad)
    stale = tmp_path / "stale.json"
    stale.write_text('{"version": 999, "entries": {}}')
    assert ShardedResultCache(capacity=8).load(stale) == 0


def test_contention_lock_counts_contended_acquisitions():
    lock = _ContentionLock()
    with lock:
        assert lock.contended == 0
    in_first, release = threading.Event(), threading.Event()

    def holder():
        with lock:
            in_first.set()
            release.wait(timeout=5)

    t = threading.Thread(target=holder)
    t.start()
    assert in_first.wait(timeout=5)

    def contender():
        with lock:
            pass

    t2 = threading.Thread(target=contender)
    t2.start()
    while not lock.locked():  # pragma: no cover - immediate in practice
        pass
    release.set()
    t.join()
    t2.join()
    assert lock.contended == 1
    assert ShardedResultCache(capacity=8).lock_contentions == 0


def test_contention_rate_bounds():
    c = ShardedResultCache(capacity=16, shards=2)
    assert c.contention_rate == 0.0
    c.put("a", entry())
    c.get("a")
    assert 0.0 <= c.contention_rate <= 1.0
