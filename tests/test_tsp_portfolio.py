"""Engine registry tests: every engine valid, exact ones exact, names stable."""

import pytest

from repro.errors import ReproError
from repro.tsp.held_karp import held_karp_path
from repro.tsp.instance import TSPInstance
from repro.tsp.portfolio import (
    ENGINES,
    EXACT_ENGINES,
    GUARANTEED_ENGINES,
    get_engine,
    solve_path,
)


class TestRegistry:
    def test_all_engines_return_valid_paths(self):
        inst = TSPInstance.random_metric(9, seed=0)
        for name, engine in ENGINES.items():
            p = engine(inst)
            assert sorted(p.order) == list(range(9)), name
            assert p.length == pytest.approx(inst.path_length(p.order)), name

    def test_exact_engines_agree(self):
        for seed in range(3):
            inst = TSPInstance.random_metric(10, seed=seed)
            lengths = {e: ENGINES[e](inst).length for e in EXACT_ENGINES}
            vals = list(lengths.values())
            assert all(v == pytest.approx(vals[0]) for v in vals)

    def test_guaranteed_engines_respect_ratio(self):
        for seed in range(4):
            inst = TSPInstance.random_metric(10, seed=seed)
            opt = held_karp_path(inst).length
            for name, ratio in GUARANTEED_ENGINES.items():
                got = ENGINES[name](inst).length
                assert got <= ratio * opt + 1e-9, name

    def test_get_engine_unknown(self):
        with pytest.raises(ReproError, match="unknown engine"):
            get_engine("simulated_annealing")

    def test_solve_path_auto_small_is_exact(self):
        inst = TSPInstance.random_metric(8, seed=1)
        assert solve_path(inst, "auto").length == pytest.approx(
            held_karp_path(inst).length
        )

    def test_solve_path_auto_large_uses_heuristic(self):
        inst = TSPInstance.random_metric(30, seed=1)
        p = solve_path(inst, "auto")
        assert sorted(p.order) == list(range(30))

    def test_engine_name_stability(self):
        # the harness, CLI and docs reference these names
        for name in [
            "held_karp", "branch_bound", "hoogeveen", "christofides_path",
            "double_tree", "lk", "lk_long", "three_opt", "or_opt", "two_opt",
            "greedy_edge", "farthest_insertion", "nearest_neighbor",
            "best_nearest_neighbor",
        ]:
            assert name in ENGINES
