"""Run the doctest examples embedded in the library's docstrings.

Keeps every usage example in the API documentation executable and correct.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.graphs.graph",
    "repro.graphs.traversal",
    "repro.graphs.operations",
    "repro.graphs.bipartite",
    "repro.graphs.families",
    "repro.labeling.spec",
    "repro.labeling.greedy",
    "repro.labeling.trees",
    "repro.labeling.layer_dp",
    "repro.tsp.held_karp",
    "repro.tsp.mst",
    "repro.tsp.christofides",
    "repro.tsp.hoogeveen",
    "repro.tsp.lin_kernighan",
    "repro.tsp.annealing",
    "repro.tsp.lower_bounds",
    "repro.reduction.to_tsp",
    "repro.reduction.from_tour",
    "repro.reduction.solver",
    "repro.partition.paths_partition",
    "repro.partition.diameter2",
    "repro.partition.modular",
    "repro.partition.neighborhood_diversity",
    "repro.partition.coloring",
    "repro.partition.l1_labeling",
    "repro.service.canonical",
    "repro.service.cache",
    "repro.service.shard",
    "repro.service.server",
    "repro.service.api",
    "repro.session",
    "repro.dynamic.engine",
    "repro.graphs.analysis",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _tried = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, None
    assert failures == 0, f"doctest failures in {module_name}"
