"""Tests for the extension modules: trees, layer DP, 1-tree bound, stats,
bipartite matching.
"""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError, ReproError
from repro.graphs import generators as gen
from repro.graphs.bipartite import has_perfect_left_matching, hopcroft_karp
from repro.graphs.graph import Graph
from repro.harness.stats import (
    bootstrap_mean_ci,
    fit_power_law,
    growth_factor_per_step,
    summarize,
)
from repro.labeling.exact import exact_span
from repro.labeling.layer_dp import l21_layer_dp_span
from repro.labeling.spec import L21
from repro.labeling.trees import is_tree, l21_tree_labeling, l21_tree_span
from repro.tsp.held_karp import held_karp_cycle, held_karp_path
from repro.tsp.instance import TSPInstance
from repro.tsp.lower_bounds import certified_gap, one_tree_bound
from repro.tsp.mst import mst_weight


class TestBipartiteMatching:
    def test_simple_perfect(self):
        size, match = hopcroft_karp(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert size == 2
        assert sorted(match) == [0, 1]

    def test_no_edges(self):
        size, match = hopcroft_karp(3, 3, [])
        assert size == 0 and match == [-1, -1, -1]

    def test_matches_networkx(self, rng):
        for _ in range(10):
            nl, nr = int(rng.integers(2, 7)), int(rng.integers(2, 7))
            edges = [
                (u, v)
                for u in range(nl)
                for v in range(nr)
                if rng.random() < 0.4
            ]
            size, match = hopcroft_karp(nl, nr, edges)
            g = nx.Graph()
            g.add_nodes_from(f"L{u}" for u in range(nl))
            g.add_nodes_from(f"R{v}" for v in range(nr))
            g.add_edges_from((f"L{u}", f"R{v}") for u, v in edges)
            oracle = len(nx.max_weight_matching(g, maxcardinality=True))
            assert size == oracle
            # match consistency
            used_right = [v for v in match if v != -1]
            assert len(used_right) == len(set(used_right)) == size

    def test_hall_violation(self):
        # two left vertices forced onto one right vertex
        assert not has_perfect_left_matching(2, 1, [(0, 0), (1, 0)])
        assert has_perfect_left_matching(1, 2, [(0, 1)])


class TestTrees:
    def test_is_tree(self):
        assert is_tree(gen.path_graph(5))
        assert is_tree(gen.star_graph(4))
        assert not is_tree(gen.cycle_graph(4))
        assert not is_tree(Graph(3, [(0, 1)]))  # disconnected

    def test_non_tree_rejected(self):
        with pytest.raises(GraphError):
            l21_tree_span(gen.cycle_graph(4))

    def test_known_values(self):
        assert l21_tree_span(Graph(1)) == 0
        assert l21_tree_span(gen.path_graph(2)) == 2
        assert l21_tree_span(gen.path_graph(5)) == 4      # Δ=2 -> Δ+2
        assert l21_tree_span(gen.star_graph(6)) == 7      # Δ+1
        assert l21_tree_span(gen.caterpillar_graph(2, 2)) == 4

    def test_matches_exact_on_random_trees(self, rng):
        for _ in range(15):
            t = gen.random_tree(int(rng.integers(2, 11)), seed=rng)
            assert l21_tree_span(t) == exact_span(t, L21)

    def test_span_in_chang_kuo_band(self, rng):
        for _ in range(10):
            t = gen.random_tree(int(rng.integers(2, 30)), seed=rng)
            d = t.max_degree()
            assert l21_tree_span(t) in (d + 1, d + 2)

    def test_labeling_certificate(self, rng):
        for _ in range(8):
            t = gen.random_tree(int(rng.integers(2, 20)), seed=rng)
            lab = l21_tree_labeling(t)
            assert lab.is_feasible(t, L21)
            assert lab.span == l21_tree_span(t)

    def test_single_vertex_labeling(self):
        assert l21_tree_labeling(Graph(1)).labels == (0,)

    def test_agrees_with_tsp_route_when_applicable(self):
        # stars have diameter 2, so both routes apply
        from repro.reduction.solver import solve_labeling
        for leaves in range(2, 8):
            t = gen.star_graph(leaves)
            assert l21_tree_span(t) == solve_labeling(t, L21).span


class TestLayerDP:
    def test_matches_exact(self, rng):
        for _ in range(12):
            n = int(rng.integers(3, 9))
            g = gen.random_connected_gnp(n, float(rng.uniform(0.3, 0.7)), seed=rng)
            assert l21_layer_dp_span(g) == exact_span(g, L21)

    def test_known_families(self):
        assert l21_layer_dp_span(gen.cycle_graph(5)) == 4
        assert l21_layer_dp_span(gen.complete_graph(4)) == 6
        assert l21_layer_dp_span(gen.star_graph(4)) == 5
        assert l21_layer_dp_span(gen.path_graph(2)) == 2

    def test_trivial(self):
        assert l21_layer_dp_span(Graph(1)) == 0
        assert l21_layer_dp_span(Graph(0)) == 0

    def test_size_cap(self):
        with pytest.raises(ReproError):
            l21_layer_dp_span(gen.empty_graph(20))

    def test_disconnected_graphs_supported(self):
        # unlike the TSP route, the layer DP handles any graph
        g = Graph(4, [(0, 1), (2, 3)])
        assert l21_layer_dp_span(g) == exact_span(g, L21)


class TestOneTreeBound:
    def test_lower_bounds_cycle(self):
        for seed in range(6):
            inst = TSPInstance.random_metric(9, seed=seed)
            opt = held_karp_cycle(inst).length
            lb = one_tree_bound(inst)
            assert lb <= opt + 1e-9

    def test_tighter_than_mst(self):
        tighter = 0
        for seed in range(6):
            inst = TSPInstance.random_metric(10, seed=seed)
            if one_tree_bound(inst) >= mst_weight(inst) - 1e-9:
                tighter += 1
        assert tighter == 6  # 1-tree with ascent should never lose to MST

    def test_trivial_sizes(self):
        inst = TSPInstance(np.zeros((2, 2)))
        assert one_tree_bound(inst) == 0.0

    def test_certified_gap(self):
        from repro.tsp.lin_kernighan import lk_style_path
        inst = TSPInstance.random_metric(12, seed=0)
        path = lk_style_path(inst, kicks=10, seed=0)
        gap = certified_gap(inst, path.length)
        assert gap >= 1.0
        # LK on small Euclidean instances: certificate should be modest
        assert gap <= 2.0


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0 and s.minimum == 1.0 and s.maximum == 3.0
        assert s.median == 2.0 and s.n == 3

    def test_summarize_empty(self):
        assert np.isnan(summarize([]).mean)

    def test_growth_factor(self):
        assert growth_factor_per_step([10, 12, 14], [1.0, 4.0, 16.0]) == \
            pytest.approx(4.0)
        assert np.isnan(growth_factor_per_step([1], [1.0]))

    def test_fit_power_law(self):
        ns = [10, 20, 40, 80]
        times = [n**3 * 1e-6 for n in ns]
        assert fit_power_law(ns, times) == pytest.approx(3.0, abs=1e-6)

    def test_bootstrap_ci_contains_mean(self):
        data = list(np.random.default_rng(0).normal(5.0, 1.0, size=100))
        lo, hi = bootstrap_mean_ci(data)
        assert lo <= float(np.mean(data)) <= hi
