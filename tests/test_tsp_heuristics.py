"""Construction heuristics and local search: validity + quality ordering."""

import numpy as np
import pytest

from repro.tsp.construction import (
    best_nearest_neighbor_path,
    cheapest_insertion_cycle,
    cycle_to_path,
    farthest_insertion_cycle,
    greedy_edge_path,
    nearest_neighbor_path,
)
from repro.tsp.held_karp import held_karp_path
from repro.tsp.instance import TSPInstance
from repro.tsp.lin_kernighan import lk_style_path, _double_bridge
from repro.tsp.local_search import or_opt_path, three_opt_path, two_opt_path
from repro.tsp.tour import HamPath


def _valid(path, n):
    return sorted(path.order) == list(range(n))


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 5, 10, 20])
    def test_nearest_neighbor_valid(self, n):
        inst = TSPInstance.random_metric(n, seed=0)
        assert _valid(nearest_neighbor_path(inst, 0), n)

    def test_nn_start_respected(self):
        inst = TSPInstance.random_metric(6, seed=1)
        assert nearest_neighbor_path(inst, 3).order[0] == 3

    def test_best_nn_at_least_single_nn(self):
        inst = TSPInstance.random_metric(10, seed=2)
        assert (
            best_nearest_neighbor_path(inst).length
            <= nearest_neighbor_path(inst, 0).length + 1e-12
        )

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 15])
    def test_greedy_edge_valid(self, n):
        inst = TSPInstance.random_metric(n, seed=3)
        assert _valid(greedy_edge_path(inst), n)

    def test_insertions_valid(self):
        inst = TSPInstance.random_metric(12, seed=4)
        for builder in (cheapest_insertion_cycle, farthest_insertion_cycle):
            tour = builder(inst)
            assert sorted(tour.order) == list(range(12))
            path = cycle_to_path(inst, tour)
            assert _valid(path, 12)
            assert path.length <= tour.length + 1e-12


class TestLocalSearch:
    def test_two_opt_never_worsens(self):
        for seed in range(5):
            inst = TSPInstance.random_metric(12, seed=seed)
            start = nearest_neighbor_path(inst, 0)
            out = two_opt_path(inst, start)
            assert out.length <= start.length + 1e-12 and _valid(out, 12)

    def test_or_opt_never_worsens(self):
        for seed in range(5):
            inst = TSPInstance.random_metric(12, seed=seed)
            start = nearest_neighbor_path(inst, 0)
            out = or_opt_path(inst, start)
            assert out.length <= start.length + 1e-12 and _valid(out, 12)

    def test_three_opt_dominates_both(self):
        inst = TSPInstance.random_metric(14, seed=6)
        start = nearest_neighbor_path(inst, 0)
        t3 = three_opt_path(inst, start)
        assert t3.length <= two_opt_path(inst, start).length + 1e-12
        assert t3.length <= or_opt_path(inst, start).length + 1e-12

    def test_two_opt_fixes_crossing(self):
        # a path with an obvious crossing that one reversal repairs
        pts = np.array([[0, 0], [1, 0], [2, 0], [3, 0]], dtype=float)
        w = np.sqrt(((pts[:, None] - pts[None]) ** 2).sum(-1))
        inst = TSPInstance(w)
        bad = HamPath.from_order(inst, [0, 2, 1, 3])
        fixed = two_opt_path(inst, bad)
        assert fixed.length == pytest.approx(3.0)

    def test_small_instances_pass_through(self):
        inst = TSPInstance.random_metric(2, seed=0)
        p = HamPath.from_order(inst, [0, 1])
        assert two_opt_path(inst, p).order == (0, 1)
        assert or_opt_path(inst, p).order == (0, 1)


class TestLKStyle:
    def test_optimal_on_small(self):
        for seed in range(6):
            inst = TSPInstance.random_metric(9, seed=seed)
            lk = lk_style_path(inst, kicks=15, seed=0)
            assert lk.length == pytest.approx(held_karp_path(inst).length)

    def test_deterministic_given_seed(self):
        inst = TSPInstance.random_metric(15, seed=7)
        a = lk_style_path(inst, kicks=10, seed=42)
        b = lk_style_path(inst, kicks=10, seed=42)
        assert a.order == b.order

    def test_kicks_zero_is_descent(self):
        inst = TSPInstance.random_metric(12, seed=8)
        p = lk_style_path(inst, kicks=0, seed=0)
        assert _valid(p, 12)

    def test_more_kicks_never_hurt(self):
        inst = TSPInstance.random_metric(16, seed=9)
        few = lk_style_path(inst, kicks=2, seed=1)
        many = lk_style_path(inst, kicks=30, seed=1)
        assert many.length <= few.length + 1e-12

    def test_double_bridge_is_permutation(self):
        inst = TSPInstance.random_metric(12, seed=10)
        p = nearest_neighbor_path(inst, 0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            kicked = _double_bridge(inst, p, rng)
            assert _valid(kicked, 12)

    def test_tiny_instances(self):
        for n in (1, 2, 3):
            inst = TSPInstance.random_metric(n, seed=0)
            assert _valid(lk_style_path(inst, kicks=3, seed=0), n)
