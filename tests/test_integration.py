"""End-to-end integration tests spanning multiple subsystems.

These tie the whole pipeline together the way the experiments do:
graph generator -> reduction -> several engines -> labeling -> verification
-> cross-checks against independent oracles.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.traversal import diameter
from repro.labeling.exact import exact_span
from repro.labeling.greedy import best_greedy_labeling
from repro.labeling.spec import L21, LpSpec
from repro.labeling.special import (
    l21_span_complete,
    l21_span_complete_bipartite,
    l21_span_cycle,
    l21_span_star,
    l21_span_wheel,
)
from repro.partition.diameter2 import solve_lpq_diameter2
from repro.reduction.solver import solve_labeling
from repro.tsp.portfolio import ENGINES, GUARANTEED_ENGINES


class TestThreeWayAgreement:
    """TSP route == partition route == direct search, across families."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_diam2(self, seed):
        g = gen.random_graph_with_diameter_at_most(8, 2, seed=seed)
        spans = {
            "tsp": solve_labeling(g, L21, engine="held_karp").span,
            "bnb": solve_labeling(g, L21, engine="branch_bound").span,
            "pip": solve_lpq_diameter2(g, L21, method="exact").span,
            "direct": exact_span(g, L21),
        }
        assert len(set(spans.values())) == 1, spans

    def test_closed_form_families_full_pipeline(self):
        cases = [
            (gen.cycle_graph(5), l21_span_cycle(5)),  # C5: the largest diam-2 cycle
            (gen.complete_graph(7), l21_span_complete(7)),
            (gen.star_graph(7), l21_span_star(7)),
            (gen.wheel_graph(7), l21_span_wheel(7)),
            (gen.complete_bipartite_graph(4, 4), l21_span_complete_bipartite(4, 4)),
        ]
        for g, expected in cases:
            assert solve_labeling(g, L21, engine="held_karp").span == expected


class TestGuaranteesEndToEnd:
    def test_approximation_engines_within_bounds_on_labeling(self):
        for seed in range(5):
            g = gen.random_graph_with_diameter_at_most(11, 2, seed=seed)
            opt = solve_labeling(g, L21, engine="held_karp").span
            for engine, ratio in GUARANTEED_ENGINES.items():
                r = solve_labeling(g, L21, engine=engine)
                assert r.span <= ratio * opt + 1e-9, engine
                assert r.labeling.is_feasible(g, L21)

    def test_heuristics_bounded_by_greedy_baseline(self):
        """The TSP heuristics should beat plain greedy labeling comfortably."""
        worse = 0
        for seed in range(5):
            g = gen.random_graph_with_diameter_at_most(12, 2, seed=seed)
            lk = solve_labeling(g, L21, engine="lk").span
            greedy = best_greedy_labeling(g, L21, restarts=5).span
            if lk > greedy:
                worse += 1
        assert worse == 0


class TestLargerInstances:
    def test_heuristic_pipeline_scales(self):
        g = gen.random_graph_with_diameter_at_most(60, 2, seed=3)
        r = solve_labeling(g, L21, engine="lk")
        assert r.labeling.is_feasible(g, L21)
        # diam-2, n=60: span at least (n-1)*pmin
        assert r.span >= 59

    def test_diam3_spec3(self):
        g = gen.random_graph_with_diameter_at_most(40, 3, seed=1)
        spec = LpSpec((2, 2, 1))
        if diameter(g) <= 3:
            r = solve_labeling(g, spec, engine="or_opt")
            assert r.labeling.is_feasible(g, spec)

    def test_geometric_radio_network(self):
        g, _pos = gen.random_geometric_graph(30, 0.6, seed=2)
        if diameter(g) <= 2:
            r = solve_labeling(g, L21, engine="lk")
            assert r.labeling.is_feasible(g, L21)


class TestEngineMatrixOnFamilies:
    """Every engine x several families: outputs always feasible and ordered."""

    FAMILIES = [
        lambda: gen.complete_graph(9),
        lambda: gen.petersen_graph(),
        lambda: gen.wheel_graph(8),
        lambda: gen.complete_bipartite_graph(4, 5),
        lambda: gen.random_graph_with_diameter_at_most(10, 2, seed=9),
    ]

    @pytest.mark.parametrize("family_idx", range(5))
    def test_all_engines(self, family_idx):
        g = self.FAMILIES[family_idx]()
        opt = solve_labeling(g, L21, engine="held_karp").span
        for engine in ENGINES:
            r = solve_labeling(g, L21, engine=engine)
            assert r.labeling.is_feasible(g, L21), engine
            assert r.span >= opt, engine


class TestExperimentSuiteSmoke:
    """Each experiment runs and passes at reduced scale."""

    def test_e1(self):
        from repro.harness.experiments import e1_figure1_reduction
        assert e1_figure1_reduction().passed

    def test_e2(self):
        from repro.harness.experiments import e2_figure2_partition
        assert e2_figure2_partition().passed

    def test_e3_small(self):
        from repro.harness.experiments import e3_reduction_scaling
        assert e3_reduction_scaling(sizes=(30, 60), seeds=1).passed

    def test_e4_small(self):
        from repro.harness.experiments import e4_held_karp_growth
        assert e4_held_karp_growth(sizes=(8, 10, 12), seeds=1).passed

    def test_e5_small(self):
        from repro.harness.experiments import e5_approximation_ratio
        assert e5_approximation_ratio(n=10, trials=6).passed

    def test_e6_small(self):
        from repro.harness.experiments import e6_partition_paths
        assert e6_partition_paths(n=10, trials=4).passed

    def test_e7_small(self):
        from repro.harness.experiments import e7_heuristic_engines
        assert e7_heuristic_engines(n=10, trials=3).passed

    def test_e8_small(self):
        from repro.harness.experiments import e8_l1_coloring
        assert e8_l1_coloring(trials=4).passed

    def test_e9_small(self):
        from repro.harness.experiments import e9_hardness_gadgets
        assert e9_hardness_gadgets(n=4).passed

    def test_e10_small(self):
        from repro.harness.experiments import e10_parallel_portfolio
        assert e10_parallel_portfolio(n=30, engines_used=2).passed
